#!/usr/bin/env python3
"""Quickstart: clean a small SQL query log.

Reproduces the paper's running example (Tables 1–3): a user session with
one "find the ids" query followed by per-id lookups.  The framework
detects the DW-Stifle and the CTH candidate and rewrites the stifle into
a single IN-list query.

Run:  python examples/quickstart.py
"""

from repro import CleaningPipeline, PipelineConfig, QueryLog
from repro.antipatterns import DetectionContext

STATEMENTS = [
    "SELECT E.Id FROM Employees E WHERE E.department = 'sales'",
    "SELECT E.name, E.surname FROM Employees E WHERE E.id = 12",
    "SELECT E.name, E.surname FROM Employees E WHERE E.id = 15",
    "SELECT E.name, E.surname FROM Employees E WHERE E.id = 16",
    "SELECT count(orders) FROM Orders O WHERE O.empId = 12",
]


def main() -> None:
    # A log needs statements and timestamps; users/IPs are optional.
    log = QueryLog.from_statements(STATEMENTS, spacing=1.0, user="alice")

    # Tell the Stifle detector which attributes are keys (Definition 11).
    config = PipelineConfig(
        detection=DetectionContext(key_columns=frozenset({"id", "empid"}))
    )
    result = CleaningPipeline(config).run(log)

    print("— detected antipatterns —")
    for instance in result.antipatterns:
        rows = ", ".join(str(seq) for seq in instance.record_seqs())
        solvable = "solvable" if instance.solvable else "detect-only"
        print(f"  {instance.label:<15} rows [{rows}]  ({solvable})")

    print("\n— clean query log —")
    for record in result.clean_log:
        print(f"  {record.seq}: {record.sql}")

    print("\n— run statistics —")
    print(result.overview().format())


if __name__ == "__main__":
    main()
