#!/usr/bin/env python3
"""The SkyServer case study, miniature edition (paper Section 6).

Generates a synthetic SkyServer-shaped log (spatial-search bots, stifle
bots on photoprimary.objid, treasure hunts, sliding-window crawlers,
humans, reload duplicates, noise), runs the full cleaning pipeline, and
prints the paper's headline artifacts: the Table 5 overview, the Table 6
top antipatterns and the Table 7 top patterns after cleaning.

Run:  python examples/skyserver_case_study.py [scale]
"""

import sys

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog


def main(scale: float = 0.3) -> None:
    print(f"generating synthetic SkyServer log (scale={scale}) …")
    workload = generate(WorkloadConfig(seed=2018, scale=scale))
    log = workload.log
    print(f"  {len(log):,} queries from {log.distinct_users()} users\n")

    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    result = CleaningPipeline(config).run(log)

    print("=== Results overview (Table 5) ===")
    print(result.overview().format())

    print("\n=== Most popular antipatterns (Table 6) ===")
    antipatterns = [
        s
        for s in result.registry.ranked(antipatterns=True)
        if s.antipattern_types - {"SWS"}
    ][:5]
    for rank, stats in enumerate(antipatterns, start=1):
        kinds = "/".join(sorted(stats.antipattern_types))
        print(
            f"{rank}. freq={stats.frequency:,} ips={stats.distinct_ips} "
            f"[{kinds}]\n   {stats.skeletons[0][:90]}"
        )

    print("\n=== Most popular patterns after cleaning (Table 7) ===")
    second = CleaningPipeline(config).run(result.clean_log)
    log_size = len(second.parse_stage.parsed_log)
    for rank, stats in enumerate(second.registry.top(5, antipatterns=False), 1):
        coverage = 100.0 * stats.coverage(log_size)
        print(
            f"{rank}. freq={stats.frequency:,} coverage={coverage:.2f}% "
            f"ips={stats.distinct_ips}\n   {stats.skeletons[0][:90]}"
        )

    if result.sws_report:
        print(
            f"\nSWS patterns: {len(result.sws_report.patterns)} "
            f"covering {result.sws_report.coverage:.1%} of the parsed log"
        )

    print(
        f"\ncleaning removed {len(log) - len(result.clean_log):,} statements "
        f"({100 * (1 - len(result.clean_log) / len(log)):.1f}% of the log; "
        "paper: 27.5%)"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.3)
