#!/usr/bin/env python3
"""The paper's future work, executed: cleaning vs query recommendation.

Section 7 of the paper proposes to (1) check whether sliding-window-search
robots pollute recommender training sets and (2) compare the rate of
recommended antipattern queries for recommenders trained on the original
vs the cleaned log.  This example runs both studies with the
template-transition recommender of ``repro.recommend``.

Run:  python examples/recommendation_study.py [scale]
"""

import sys

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.recommend import compare_raw_vs_clean
from repro.workload import WorkloadConfig, generate, skyserver_catalog


def main(scale: float = 0.25) -> None:
    workload = generate(WorkloadConfig(seed=77, scale=scale))
    print(f"log: {len(workload.log):,} queries")

    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )
    raw_result = CleaningPipeline(config).run(workload.log)
    clean_result = CleaningPipeline(config).run(raw_result.clean_log)

    reports = compare_raw_vs_clean(raw_result, clean_result, k=3)

    print(f"\n{'training log':<14} {'hit@3':>7} {'antipattern rate':>18} "
          f"{'SWS rate':>10} {'pairs':>7}")
    for name, report in reports.items():
        print(
            f"{name:<14} {report.hit_rate:>7.3f} "
            f"{report.antipattern_rate:>18.3f} {report.sws_rate:>10.3f} "
            f"{report.evaluated_pairs:>7}"
        )

    raw, clean = reports["raw"], reports["clean"]
    factor = (
        raw.antipattern_rate / clean.antipattern_rate
        if clean.antipattern_rate
        else float("inf")
    )
    print(
        f"\ntraining on the cleaned log cuts the antipattern-recommendation "
        f"rate by {factor:.0f}x — the paper's hypothesis holds on this log"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
