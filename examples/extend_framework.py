#!/usr/bin/env python3
"""Extending the framework with a new antipattern (paper Section 5.4).

The paper's recipe: (1) formalise the antipattern, (2) add a detection
rule, (3) add a solving rule if one exists, (4) plug both into the
pipeline.  This example adds **SELECT-star-with-TOP-less ORDER BY**
("unbounded ordered star"): ``SELECT * FROM t ORDER BY c`` — a query that
orders an entire table only to ship it, a classic accidental full-sort.
The solving rule bounds it with ``TOP 1000``.

(The SNC antipattern of the paper is already built in — see
``repro.antipatterns.snc`` for the reference implementation.)

Run:  python examples/extend_framework.py
"""

from typing import List, Sequence

from repro import CleaningPipeline, PipelineConfig, QueryLog
from repro.antipatterns import DetectionContext, default_detectors
from repro.antipatterns.types import AntipatternInstance
from repro.patterns.models import Block, ParsedQuery
from repro.rewrite import REWRITE_RULES
from repro.rewrite.solver import solve
from repro.sqlparser import ast


# -- step 1+2: the detection rule ---------------------------------------


class UnboundedOrderedStarDetector:
    """Flags ``SELECT * FROM t ORDER BY …`` without TOP."""

    label = "UO-Star"

    def detect(
        self, blocks: Sequence[Block], context: DetectionContext
    ) -> List[AntipatternInstance]:
        instances = []
        for block in blocks:
            for query in block.queries:
                select = query.select
                is_star = any(
                    isinstance(item.expr, ast.Star) for item in select.items
                )
                if is_star and select.order_by and select.top is None:
                    instances.append(
                        AntipatternInstance(
                            label=self.label, queries=(query,), solvable=True
                        )
                    )
        return instances


# -- step 3: the solving rule -------------------------------------------


def rewrite_unbounded_star(queries: Sequence[ParsedQuery]) -> ast.Statement:
    select = queries[0].select
    return ast.SelectStatement(
        items=select.items,
        from_sources=select.from_sources,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        distinct=select.distinct,
        top=ast.TopClause(count=ast.Literal("1000", "number")),
    )


def main() -> None:
    log = QueryLog.from_statements(
        [
            "SELECT * FROM photoprimary ORDER BY r",
            "SELECT objid FROM photoprimary WHERE objid = 5",
            "SELECT * FROM specobjall ORDER BY z DESC",
        ]
    )

    # step 4: plug the detector into the pipeline's detector set …
    config = PipelineConfig(
        detectors=default_detectors() + [UnboundedOrderedStarDetector()]
    )
    result = CleaningPipeline(config).run(log)
    print("detected:", sorted({a.label for a in result.antipatterns}))

    # … and the rewrite into the solver's rule table.
    rules = dict(REWRITE_RULES)
    rules["UO-Star"] = rewrite_unbounded_star
    solved = solve(result.parse_stage.parsed_log, result.antipatterns, rules)

    print("\nclean log:")
    for record in solved.log:
        print(" ", record.sql)
    print("\nsolved counts:", solved.solved_counts())


if __name__ == "__main__":
    main()
