#!/usr/bin/env python3
"""The Section 6.3 runtime experiment: stifles vs their rewrites.

Builds a synthetic SkyServer database, generates a log whose constants
come from the database (so every query is executable), cleans it, and
executes both the original stifle statements and their rewrites on the
in-memory engine — reporting the statement reduction and the modelled
speedup (paper: 10 222 → 254 statements, 29.3× faster), plus an
engine-backed equivalence check of each rewrite.

Run:  python examples/runtime_experiment.py
"""

import time

from repro.antipatterns import DetectionContext
from repro.engine import CostModel, compare_workloads
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.rewrite.validation import validate_all
from repro.workload import WorkloadConfig, build_database, generate, skyserver_catalog


def main() -> None:
    print("building synthetic SkyServer database …")
    database = build_database(object_count=2000, seed=99)

    print("generating executable workload …")
    workload = generate(WorkloadConfig(seed=99, scale=0.15), database=database)
    print(f"  {len(workload.log):,} queries")

    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        )
    )
    result = CleaningPipeline(config).run(workload.log)

    originals, rewrites = [], []
    for solved in result.solve_result.solved:
        if "Stifle" in solved.instance.label:
            originals.extend(q.record.sql for q in solved.instance.queries)
            rewrites.append(solved.replacement_sql)
    print(f"\nstifle statements: {len(originals):,} → {len(rewrites):,} rewrites")

    started = time.perf_counter()
    _, original_stats = database.execute_many(originals)
    original_wall = time.perf_counter() - started
    started = time.perf_counter()
    _, rewritten_stats = database.execute_many(rewrites)
    rewritten_wall = time.perf_counter() - started

    comparison = compare_workloads(original_stats, rewritten_stats, CostModel())
    print(
        f"statement reduction: {comparison.statement_reduction:.1f}x "
        "(paper: ~40x)"
    )
    print(f"modelled speedup:    {comparison.speedup:.1f}x (paper: 29.3x)")
    print(
        f"engine wall clock:   {original_wall:.3f}s -> {rewritten_wall:.3f}s "
        "(no per-statement overhead — the modelled cost charges it)"
    )

    print("\nvalidating rewrites against the database …")
    reports = validate_all(database, result.solve_result.solved[:100])
    comparable = [r for r in reports if r.comparable]
    equivalent = [r for r in comparable if r.equivalent]
    print(
        f"  {len(equivalent)}/{len(comparable)} comparable rewrites return "
        "exactly the original information"
    )


if __name__ == "__main__":
    main()
