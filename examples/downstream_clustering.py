#!/usr/bin/env python3
"""Downstream analysis: how cleaning changes query clustering (Sec. 6.9).

Reproduces the paper's combined experiment: cluster the raw, cleaned and
removal variants of a log by data-space overlap and compare cluster
counts, average sizes and runtimes (Fig. 3), plus the DS-cluster
shrinkage of Fig. 4(c).

Run:  python examples/downstream_clustering.py [scale]
"""

import sys

from repro.analysis import ds_cluster_sizes, run_downstream_experiment
from repro.antipatterns import DetectionContext
from repro.pipeline import PipelineConfig
from repro.workload import WorkloadConfig, generate, skyserver_catalog

THRESHOLDS = (0.1, 0.5, 0.9)


def main(scale: float = 0.12) -> None:
    workload = generate(WorkloadConfig(seed=7, scale=scale))
    print(f"log: {len(workload.log):,} queries")

    config = PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        )
    )
    report = run_downstream_experiment(
        workload.log, thresholds=THRESHOLDS, config=config
    )

    print(f"\nvariant sizes: {report.variant_sizes}")
    header = f"{'threshold':>9} | " + " | ".join(
        f"{v:^22}" for v in ("raw", "clean", "removal")
    )
    print("\n" + header)
    print("-" * len(header))
    for threshold in THRESHOLDS:
        cells = []
        for variant in ("raw", "clean", "removal"):
            result = report.result(variant, threshold)
            cells.append(
                f"{result.cluster_count:>5} cl  avg {result.average_size:>6.1f}"
            )
        print(f"{threshold:>9.1f} | " + " | ".join(f"{c:^22}" for c in cells))

    print("\nDS-cluster sizes at threshold 0.9 (cleaned vs raw, Fig. 4c):")
    for rank, (clean, raw) in enumerate(
        ds_cluster_sizes(report, threshold=0.9, top=10), start=1
    ):
        print(f"  #{rank:<2} cleaned {clean:>5}   raw {raw if raw else '—':>5}")

    raw_count = report.result("raw", 0.9).cluster_count
    removal_count = report.result("removal", 0.9).cluster_count
    print(
        f"\nat threshold 0.9 the raw log has {raw_count} clusters, the "
        f"removal log {removal_count} — the paper's 'too numerous to "
        "analyze' vs 'analyzable' contrast"
    )

    # the meaning-recovery step: which sky regions are users interested in?
    from repro.analysis.interests import extract_hotspots, match_hotspots
    from repro.workload.schema import SKY_CLUSTERS

    hotspots = extract_hotspots(report.result("clean", 0.5))
    planted = [(ra, dec) for ra, dec, _, _ in SKY_CLUSTERS]
    match = match_hotspots(hotspots, planted, tolerance_degrees=6.0)
    print("\ntop user-interest hotspots recovered from the clean log:")
    for rank, spot in enumerate(hotspots[:5], start=1):
        print(
            f"  #{rank} ra={spot.ra:6.1f} dec={spot.dec:6.1f} "
            f"({spot.query_count} queries)"
        )
    print(
        f"planted sky clusters recovered: {match.recovered}/{match.total}"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.12)
