"""E18 — Section 6.5's extension: distinguishing humans and bots.

The paper: the traffic-report recommendations "only consider the duration
of user sessions, not the shape of queries.  An extension taking SWS
patterns into account could distinguish humans and 'bots' with more
accuracy."

This bench classifies every user of the benchmark workload twice —
duration/volume features only (the baseline) vs. additionally using the
antipattern/SWS shape features — and scores both against the generator's
planted user kinds.  Expected shape: the shape-aware classifier is at
least as accurate, with strictly better bot recall.
"""

from conftest import print_table

from repro.analysis.behavior import (
    BehaviorConfig,
    classify_users,
    score_classification,
)


def test_bot_classification(benchmark, bench_result, bench_workload):
    truth = {}
    for user in bench_workload.truth.user_profiles:
        verdict = bench_workload.truth.is_bot(user)
        if verdict is not None:
            truth[user] = verdict

    def run_both():
        baseline = classify_users(
            bench_result, BehaviorConfig(use_shape_features=False)
        )
        shape_aware = classify_users(
            bench_result, BehaviorConfig(use_shape_features=True)
        )
        return (
            score_classification(baseline, truth),
            score_classification(shape_aware, truth),
        )

    baseline, shape_aware = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        "Section 6.5 extension — human/bot classification",
        ["classifier", "accuracy", "bot recall", "human recall", "users"],
        [
            (
                "duration/volume only (baseline)",
                f"{baseline.accuracy:.3f}",
                f"{baseline.bot_recall:.3f}",
                f"{baseline.human_recall:.3f}",
                baseline.total,
            ),
            (
                "+ antipattern/SWS shape features",
                f"{shape_aware.accuracy:.3f}",
                f"{shape_aware.bot_recall:.3f}",
                f"{shape_aware.human_recall:.3f}",
                shape_aware.total,
            ),
        ],
    )

    assert shape_aware.total > 30
    # both are usable classifiers …
    assert baseline.accuracy > 0.7
    # … but shape features never hurt and improve bot recall
    assert shape_aware.accuracy >= baseline.accuracy
    assert shape_aware.bot_recall >= baseline.bot_recall
    assert shape_aware.human_recall >= 0.9
