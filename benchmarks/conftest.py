"""Shared fixtures for the benchmark harness.

Each benchmark reproduces one table or figure of the paper (see
DESIGN.md's per-experiment index).  The synthetic log is generated once
per session; its size scales with the ``REPRO_BENCH_SCALE`` environment
variable (default 0.3 ≈ 5–6k queries — large enough for stable shapes,
small enough to run in seconds; the paper's absolute numbers came from a
42M-query log and are quoted for shape comparison only).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import pytest

from repro.antipatterns import DetectionContext
from repro.patterns import SwsConfig
from repro.pipeline import CleaningPipeline, PipelineConfig
from repro.workload import (
    WorkloadConfig,
    build_database,
    generate,
    skyserver_catalog,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2018"))


@pytest.fixture(scope="session")
def bench_database():
    return build_database(object_count=1500, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_workload(bench_database):
    return generate(
        WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE),
        database=bench_database,
    )


@pytest.fixture(scope="session")
def bench_config():
    return PipelineConfig(
        detection=DetectionContext(
            key_columns=frozenset(skyserver_catalog().key_column_names())
        ),
        sws=SwsConfig(),
    )


@pytest.fixture(scope="session")
def bench_result(bench_workload, bench_config):
    """One shared pipeline run over the benchmark log."""
    return CleaningPipeline(bench_config).run(bench_workload.log)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Uniform table printer for all harness outputs."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
