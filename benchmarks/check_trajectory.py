"""Consolidated benchmark-trajectory gate.

Each perf PR in this repo lands with its own benchmark (E22 fast path,
E25 zero-copy data plane, E26 parse engine v2, E27 parse engine v3,
E28 parse engine v4) and each benchmark asserts its own acceptance
bars when it runs.  This script is the belt to those braces: it
re-reads the ``BENCH_*.json`` reports the benchmarks just wrote and
re-asserts every bar in one place, so a regression in an *older*
experiment fails the build with a single consolidated summary instead
of being spread across step logs — and so a report that silently
stopped being written, truncated mid-write or left in a stale schema
is itself a counted failure, never an abort that masks the rest of
the sweep.

Bars are scale-aware, mirroring the in-test logic: speed bars relax at
smoke scale exactly as the benchmarks relax them, hardware-gated bars
(E25's multicore speedup) stay dormant where the cores are missing, and
the correctness bars — byte identity, equal comparable ledgers, zero
conservation violations — hold at every scale.

Usage: ``python benchmarks/check_trajectory.py [--allow-missing]``
(exit 0 = every bar holds, 1 = regression or missing report).
"""

import argparse
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent

CHECKS = []


def experiment(name):
    def register(fn):
        CHECKS.append((name, fn))
        return fn

    return register


def _clean_run_bars(runs, identical_key, metrics_key):
    for run in runs:
        if not run.get(identical_key):
            yield f"{run['mode']}: clean log diverged from the reference"
        if not run.get(metrics_key):
            yield f"{run['mode']}: comparable ledger diverged"
        if run.get("conservation_violations"):
            yield f"{run['mode']}: {run['conservation_violations']}"


@experiment("E22 parse fast path — BENCH_parse_fastpath.json")
def check_fastpath(report):
    stage = report["parse_stage"]
    if stage["warm_speedup"] < 3.0:
        yield f"warm-cache speedup {stage['warm_speedup']:.2f}x < 3.0x"
    if stage["warm_hit_rate"] <= 0.95:
        yield f"warm hit rate {stage['warm_hit_rate']:.2%} <= 95%"
    if report["streaming_vs_batch_parse_ratio"] > 1.5:
        yield (
            "streaming parse "
            f"{report['streaming_vs_batch_parse_ratio']:.2f}x batch > 1.5x"
        )
    yield from _clean_run_bars(
        report["clean_runs"], "identical_to_reference", "metrics_match_reference"
    )


@experiment("E25 zero-copy data plane — BENCH_parallel.json")
def check_zerocopy(report):
    section = report.get("zerocopy")
    if section is None:
        yield "report carries no zerocopy section (E25 did not run)"
        return
    runs = section["runs"]
    for run in runs:
        if not run.get("identical_to_batch"):
            yield f"{run['mode']} (workers={run['workers']}): not byte-identical"
        if not run.get("metrics_match_batch"):
            yield f"{run['mode']} (workers={run['workers']}): ledger diverged"
    inline = [r for r in runs if "overhead_vs_batch" in r]
    if not inline:
        yield "no parallel-1 inline run recorded"
    elif inline[0]["overhead_vs_batch"] > 1.2:
        yield f"parallel-1 costs {inline[0]['overhead_vs_batch']:.2f}x batch > 1.2x"
    if section["visible_cpus"] >= 4:
        best = max(
            r["speedup_vs_batch"] for r in runs if r.get("workers") == 4
        )
        if best < 3.0:
            yield (
                f"parallel-4 only {best:.2f}x vs batch on "
                f"{section['visible_cpus']} CPUs (bar 3.0x)"
            )


@experiment("E26 parse engine v2 — BENCH_parse_v2.json")
def check_parse_v2(report):
    bar = 3.0 if report["scale"] >= report["full_scale"] else 1.3
    speedup = report["warm_parse"]["lazy_speedup"]
    if speedup < bar:
        yield (
            f"lazy warm-parse speedup {speedup:.2f}x < {bar}x "
            f"at scale {report['scale']}"
        )
    for run in report["clean_runs"]:
        if run["lazy_hits"] + run["eager"] != run["records_out"]:
            yield f"{run['mode']}: lazy/eager split does not cover the output"
    yield from _clean_run_bars(
        report["clean_runs"], "identical_to_reference", "metrics_match_reference"
    )


@experiment("E27 parse engine v3 — BENCH_parse_v3.json")
def check_parse_v3(report):
    cold = report["cold_parse"]
    bar = 2.0 if report["scale"] >= report["full_scale"] else 1.5
    if cold["speedup"] < bar:
        yield (
            f"cold-parse speedup {cold['speedup']:.2f}x < {bar}x "
            f"at scale {report['scale']}"
        )
    if cold["mismatches"]:
        yield f"{cold['mismatches']} cold-parse output mismatches vs the v2 flow"
    warm = report["template_dict"]
    if warm["preload_hit_rate"] < 0.9:
        yield (
            f"only {warm['preloaded']}/{warm['witnesses']} dictionary "
            f"witnesses preloaded ({warm['preload_hit_rate']:.0%} < 90%)"
        )
    if warm["cold_second_run"] != warm["cold_first_run"] - warm["preloaded"]:
        yield "warm run's cold count is not cold_first − preloaded"
    for run in report["clean_runs"]:
        if run["dict_preloaded"] <= 0:
            yield f"{run['mode']}: executor ignored the template dictionary"
    yield from _clean_run_bars(
        report["clean_runs"], "identical_to_reference", "metrics_match_reference"
    )


@experiment("E28 parse engine v4 — BENCH_parse_v4.json")
def check_parse_v4(report):
    cold = report["cold_parse"]
    full = report["scale"] >= report["full_scale"]
    bar = 1.5 if full else 1.2
    if cold["speedup"] < bar:
        yield (
            f"cold-parse speedup {cold['speedup']:.2f}x < {bar}x "
            f"at scale {report['scale']}"
        )
    if cold["mismatches"]:
        yield f"{cold['mismatches']} cold-parse output mismatches vs the v3 flow"
    pre = report["preload"]
    bar = 2.0 if full else 1.5
    if pre["speedup"] < bar:
        yield (
            f"batched-preload speedup {pre['speedup']:.2f}x < {bar}x "
            f"at scale {report['scale']}"
        )
    if pre["loaded_v4"] != pre["witnesses"]:
        yield (
            f"batched preload admitted {pre['loaded_v4']}/{pre['witnesses']} "
            "witnesses"
        )
    if pre["loaded_v3"] != pre["loaded_v4"]:
        yield (
            f"batched preload admitted {pre['loaded_v4']} witnesses but the "
            f"per-witness flow admitted {pre['loaded_v3']}"
        )
    if not pre["identical_hit_behavior"]:
        yield "post-preload fetch behavior diverged from the per-witness flow"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="skip absent reports instead of failing (local spot checks)",
    )
    options = parser.parse_args(argv)

    # Every report is loaded and every check runs before the verdict:
    # a gate that stops at the first bad report hides how many
    # experiments actually regressed, and an unreadable or
    # wrong-format report (a truncated write, a stale pre-rename
    # schema) used to abort the whole gate with a traceback instead of
    # being counted as the failure it is.
    failures = 0
    for name, check in CHECKS:
        path = HERE / name.rsplit("— ", 1)[1]
        if not path.exists():
            if options.allow_missing:
                print(f"SKIP  {name}: no report")
                continue
            print(f"FAIL  {name}: report missing")
            failures += 1
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            print(f"FAIL  {name}: unreadable report ({error})")
            failures += 1
            continue
        try:
            problems = list(check(report))
        except Exception as error:  # noqa: BLE001 - a bad report is a failure
            print(f"FAIL  {name}: malformed report ({error!r})")
            failures += 1
            continue
        if problems:
            failures += 1
            print(f"FAIL  {name}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"OK    {name} (scale {report.get('scale', '?')})")
    if failures:
        print(f"\n{failures} of {len(CHECKS)} experiments failed the gate")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
