"""E2 — Table 5: results overview of the full cleaning run.

Paper (42M-query SkyServer log): ≈95.9 % SELECTs, 91.7 % after dedup,
72.5 % final size, 176k patterns, DW ≫ DS ≫ DF query coverage
(6.3M / 1.3M / 0.2M), 50 CTH candidates of which 28 real.

Shape to reproduce: high SELECT share, a significant final-size
reduction, DW-Stifle dominating the solvable antipatterns, and a
CTH-candidate set in which the oracle confirms a subset.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline


def test_table5_overview(benchmark, bench_workload, bench_config):
    result = benchmark.pedantic(
        lambda: CleaningPipeline(bench_config).run(bench_workload.log),
        rounds=1,
        iterations=1,
    )
    overview = result.overview()
    print_table(
        "Table 5 — results overview",
        ["property", "value"],
        overview.rows(),
    )

    assert overview.select_count / overview.original_size > 0.90
    assert overview.after_dedup < overview.original_size
    # significant cleaning effect (paper: 72.5 % of the original remains)
    assert 0.4 < overview.final_size / overview.original_size < 0.95

    census = overview.antipatterns
    dw = census.get("DW-Stifle")
    ds = census.get("DS-Stifle")
    df = census.get("DF-Stifle")
    assert dw and ds and df
    # DW covers the most queries, DF the least — the paper's ordering
    assert dw.queries > ds.queries > df.queries

    cth = census.get("CTH-candidate")
    assert cth is not None and cth.distinct > 0
    assert 0 < overview.cth_candidates_real <= cth.distinct
