"""E3 — Table 6: the most popular antipatterns.

Paper (top 5): three DW-Stifles fetching per-band pixel coordinates
(``rowc_g/colc_g``, ``rowc_r/colc_r``, ``rowc_i/colc_i``) from
``photoprimary`` by ``objid``, then two DS-Stifles alternating between the
band column sets — each backed by only 1–3 distinct IPs.

Shape to reproduce: DW-Stifles on photoprimary.objid lead the ranking,
DS-Stifles follow, and every top antipattern has very few distinct IPs.
"""

from conftest import print_table


def test_table6_top_antipatterns(benchmark, bench_result):
    ranked = benchmark.pedantic(
        lambda: bench_result.registry.ranked(antipatterns=True),
        rounds=1,
        iterations=1,
    )
    top = [s for s in ranked if s.antipattern_types - {"SWS"}][:5]

    print_table(
        "Table 6 — most popular antipatterns",
        ["#", "frequency", "type", "first skeleton", "distinct IPs"],
        [
            (
                rank,
                f"{stats.frequency:,}",
                "/".join(sorted(stats.antipattern_types)),
                stats.skeletons[0][:70],
                stats.distinct_ips,
            )
            for rank, stats in enumerate(top, start=1)
        ],
    )

    assert len(top) >= 3
    # DW-Stifle leads the antipattern ranking, as in the paper
    assert "DW-Stifle" in top[0].antipattern_types
    # the dominant antipatterns filter photoprimary by objid
    assert "photoprimary" in top[0].skeletons[0]
    assert "objid = <num>" in top[0].skeletons[0]
    # few distinct IPs per antipattern (paper: 1–3)
    assert all(stats.distinct_ips <= 5 for stats in top)
    # both DW and DS classes appear among the top antipatterns
    labels = set().union(*(stats.antipattern_types for stats in top))
    assert {"DW-Stifle", "DS-Stifle"} <= labels
