"""E16 — Future work (Section 7): query recommendation on raw vs clean.

The paper's outlook: *"queries suggested by a recommender system must not
contain antipatterns.  We would like to study the rate of recommended
queries containing antipatterns if the recommender is trained on the
original log … then … with the cleaned log.  If the rate now is much
smaller, then our approach obviously is more useful."*

This bench runs exactly that study with the template-transition
recommender of :mod:`repro.recommend`: both models are evaluated on the
*raw* log's held-out future (what users actually issued next), and each
suggestion is tagged with the raw run's antipattern/SWS classification.
Expected shape: the clean-trained model recommends antipattern templates
at a much smaller rate, without giving up (much) hit rate on
non-antipattern traffic.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline
from repro.recommend import compare_raw_vs_clean


def test_futurework_recommendation(benchmark, bench_result, bench_config):
    def run():
        clean_result = CleaningPipeline(bench_config).run(bench_result.clean_log)
        return compare_raw_vs_clean(bench_result, clean_result, k=3)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Future work — recommender trained on raw vs clean log",
        ["training log", "hit rate@3", "antipattern rate", "SWS rate", "pairs"],
        [
            (
                name,
                f"{report.hit_rate:.3f}",
                f"{report.antipattern_rate:.3f}",
                f"{report.sws_rate:.3f}",
                report.evaluated_pairs,
            )
            for name, report in reports.items()
        ],
    )

    raw, clean = reports["raw"], reports["clean"]
    assert raw.evaluated_pairs > 50
    # the raw-trained recommender suggests antipattern queries noticeably
    assert raw.antipattern_rate > 0.05
    # training on the clean log shrinks the antipattern rate drastically
    assert clean.antipattern_rate < raw.antipattern_rate * 0.5
    # both recommenders remain useful on ordinary traffic
    assert raw.hit_rate > 0.3
    assert clean.hit_rate > 0.15
