"""E11 — Fig. 3: downstream clustering of raw / clean / removal logs.

Paper (1.3M-query sample, thresholds 0.1–0.9): the raw log yields far
more clusters (1 393 at 0.9) than the cleaned and removal variants
(removal: 51 at 0.9), removal clusters are bigger on average, and the
removal log clusters fastest.

Shape to reproduce: cluster count raw > clean ≳ removal at every
threshold; average size raw < removal; runtime raw > removal.
"""

from conftest import print_table

from repro.analysis import run_downstream_experiment

THRESHOLDS = (0.1, 0.3, 0.5, 0.7, 0.9)


def test_fig3_clustering_comparison(benchmark, bench_workload, bench_config):
    report = benchmark.pedantic(
        lambda: run_downstream_experiment(
            bench_workload.log, thresholds=THRESHOLDS, config=bench_config
        ),
        rounds=1,
        iterations=1,
    )

    for metric, extract in (
        ("clusters' count", lambda r: r.cluster_count),
        ("average cluster size", lambda r: f"{r.average_size:.2f}"),
        ("runtime (s)", lambda r: f"{r.runtime_seconds:.3f}"),
    ):
        print_table(
            f"Fig. 3 — {metric}",
            ["threshold", "raw", "clean", "removal"],
            [
                (
                    threshold,
                    extract(report.result("raw", threshold)),
                    extract(report.result("clean", threshold)),
                    extract(report.result("removal", threshold)),
                )
                for threshold in THRESHOLDS
            ],
        )

    for threshold in THRESHOLDS:
        raw = report.result("raw", threshold)
        clean = report.result("clean", threshold)
        removal = report.result("removal", threshold)
        # raw clusters are the most numerous (paper: "too numerous")
        assert raw.cluster_count > clean.cluster_count
        assert raw.cluster_count > removal.cluster_count
        # removal clusters are at least as big on average as raw's
        assert removal.average_size >= raw.average_size * 0.9

    # total clustering work: the smallest (removal) log is fastest overall
    total_raw = sum(report.result("raw", t).runtime_seconds for t in THRESHOLDS)
    total_removal = sum(
        report.result("removal", t).runtime_seconds for t in THRESHOLDS
    )
    assert total_removal <= total_raw * 1.1
