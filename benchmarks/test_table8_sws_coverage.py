"""E5 — Table 8: SWS coverage vs (frequency, userPopularity) thresholds.

Paper grid (coverage of the log classified as SWS):

    freq→        10 %   1 %    0.1 %  0.01 %
    pop 1        8.7%   18.7%  31.2%  35.4%
    pop 2        8.7%   18.7%  36.0%  40.9%
    pop 4        8.7%   18.7%  40.3%  45.6%
    pop 8        8.7%   18.7%  40.7%  46.1%
    pop 16       8.7%   18.7%  41.0%  46.3%

Shape to reproduce: coverage grows monotonically when the frequency
threshold drops and when the popularity cap rises.
"""

from conftest import print_table

from repro.patterns import coverage_grid

FREQ_SHARES = (0.10, 0.01, 0.001, 0.0001)
POPULARITIES = (1, 2, 4, 8, 16)


def test_table8_sws_coverage_grid(benchmark, bench_result):
    grid = benchmark.pedantic(
        lambda: coverage_grid(
            bench_result.registry,
            bench_result.mining.instances,
            frequency_shares=FREQ_SHARES,
            popularities=POPULARITIES,
        ),
        rounds=1,
        iterations=1,
    )

    print_table(
        "Table 8 — SWS coverage vs thresholds",
        ["popularity \\ freq"] + [f"{share:.2%}" for share in FREQ_SHARES],
        [
            (pop, *(f"{cell:.1%}" for cell in row))
            for pop, row in zip(POPULARITIES, grid)
        ],
    )

    # monotone along both axes
    for row in grid:
        assert all(row[i] <= row[i + 1] + 1e-12 for i in range(len(row) - 1))
    for col in range(len(FREQ_SHARES)):
        column = [row[col] for row in grid]
        assert all(column[i] <= column[i + 1] + 1e-12 for i in range(len(column) - 1))

    # the loosest corner classifies a nontrivial share of the log as SWS
    assert grid[-1][-1] > 0.05
    # the strictest corner is no larger than the loosest
    assert grid[0][0] <= grid[-1][-1]
