"""E25 — zero-copy parallel data plane: columnar shards + warm pools.

E21 showed the paper-scale parallel run *losing* to batch because each
shard pickled full record objects into the workers.  This experiment
measures the rebuilt data plane on the same ~100k-query log
(``REPRO_ZEROCOPY_BENCH_SCALE``, default 5.8):

* **batch** — the reference for output bytes, ledger and wall time;
* **parallel-1** — the inline degenerate fan-out, which must cost at
  most 1.2× batch (it runs the same shared stages minus the global
  artifacts, so the data plane may not add measurable overhead);
* **parallel-4 × transfer ∈ {pickle, shm}** — the real fan-out, cold
  pool, recording bytes shipped per shard under both transfer modes;
* **parallel-4 shm, warm** — the same run again over the reused warm
  pool (same executor generation — no refork).

Always asserted: every run byte-identical to batch with an equal
``comparable()`` ledger and zero conservation violations, and the
per-shard transfer accounting consistent with the run totals.  The ≥3×
speedup bar for parallel-4 over batch is gated on ≥4 visible CPUs,
exactly like E21's scaling assertion — a 1-core runner still records
the honest ratio in the JSON.

Results land in the ``"zerocopy"`` section of ``BENCH_parallel.json``
(E21 owns the top level; both writers merge rather than clobber).

This file avoids the pytest-benchmark fixture so the CI smoke step can
run it with plain pytest at a reduced scale.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_table

from repro.obs import Recorder
from repro.pipeline import (
    CleaningPipeline,
    ExecutionConfig,
    ParallelCleaner,
)
from repro.pipeline.parallel import get_worker_pool, shutdown_worker_pools
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale; 5.8 ≈ 99k queries (the E21 log).
BENCH_SCALE = float(os.environ.get("REPRO_ZEROCOPY_BENCH_SCALE", "5.8"))
BENCH_SEED = int(os.environ.get("REPRO_ZEROCOPY_BENCH_SEED", "2018"))
OUTPUT_PATH = Path(__file__).parent / "BENCH_parallel.json"

#: parallel-1 runs the shared stages inline; the data plane must not
#: make it measurably slower than batch.
INLINE_OVERHEAD_BAR = 1.2
#: the CPU-gated multicore bar: parallel-4 at least this much faster
#: than batch.
SPEEDUP_BAR = 3.0


def _visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _parallel_run(log, config, reference, **execution_knobs):
    """One timed parallel clean, checked against the batch reference."""
    run_config = replace(
        config,
        execution=ExecutionConfig(mode="parallel", **execution_knobs),
    )
    cleaner = ParallelCleaner(run_config)
    started = time.perf_counter()
    cleaned = cleaner.run(log)
    seconds = time.perf_counter() - started
    stats = cleaner.stats
    assert cleaned.records() == reference["records"], execution_knobs
    assert stats.metrics.comparable() == reference["ledger"], execution_knobs
    assert stats.metrics.conservation_violations() == []
    # per-shard accounting must add up to the run totals
    assert sum(s.bytes_shipped for s in stats.shards) == stats.bytes_shipped
    return {
        "mode": "parallel",
        "workers": stats.workers,
        "transfer": run_config.execution.transfer,
        "shards": stats.shard_count,
        "seconds": seconds,
        "throughput": len(log) / seconds,
        "bytes_shipped": stats.bytes_shipped,
        "shm_segments": stats.shm_segments,
        "shards_retried": stats.shards_retried,
        "per_shard": [
            {
                "shard": s.shard,
                "transfer": s.transfer,
                "records_in": s.records_in,
                "bytes": s.bytes_shipped,
            }
            for s in sorted(stats.shards, key=lambda s: s.shard)
        ],
        "identical_to_batch": True,
        "metrics_match_batch": True,
    }


def test_parallel_zerocopy(bench_config):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    # SWS / registry are global batch-only stages; drop SWS so the batch
    # reference runs the same shared-stage work the workers do.
    shared_config = replace(bench_config, sws=None)
    shutdown_worker_pools()  # cold start: no warm pool from earlier tests

    report = {
        "experiment": "E25",
        "queries": len(log),
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "visible_cpus": _visible_cpus(),
        "runs": [],
    }

    recorder = Recorder()
    started = time.perf_counter()
    batch = CleaningPipeline(shared_config).run(log, recorder=recorder)
    batch_seconds = time.perf_counter() - started
    reference = {
        "records": batch.clean_log.records(),
        "ledger": batch.metrics.comparable(),
    }
    report["runs"].append(
        {
            "mode": "batch",
            "workers": 1,
            "transfer": "-",
            "seconds": batch_seconds,
            "throughput": len(log) / batch_seconds,
            "identical_to_batch": True,
            "metrics_match_batch": True,
        }
    )

    # parallel-1: the inline path; best-of-2 to damp timer noise on
    # shared runners (the bar is about overhead, not scheduling luck).
    inline = _parallel_run(log, shared_config, reference, workers=1)
    if inline["seconds"] > INLINE_OVERHEAD_BAR * batch_seconds:
        retry = _parallel_run(log, shared_config, reference, workers=1)
        if retry["seconds"] < inline["seconds"]:
            inline = retry
    inline["overhead_vs_batch"] = inline["seconds"] / batch_seconds
    report["runs"].append(inline)

    # parallel-4 under both transfer modes, cold pool each time.
    four = {}
    for transfer in ("pickle", "shm"):
        shutdown_worker_pools()
        run = _parallel_run(
            log, shared_config, reference, workers=4, transfer=transfer
        )
        run["pool_generation"] = get_worker_pool(4).generation
        run["speedup_vs_batch"] = batch_seconds / run["seconds"]
        report["runs"].append(run)
        four[transfer] = run

    # the warm repeat: same pool object, same executor generation.
    generation_before = get_worker_pool(4).generation
    warm = _parallel_run(
        log, shared_config, reference, workers=4, transfer="shm"
    )
    warm["warm_pool"] = True
    warm["pool_generation"] = get_worker_pool(4).generation
    warm["speedup_vs_batch"] = batch_seconds / warm["seconds"]
    report["runs"].append(warm)
    assert warm["pool_generation"] == generation_before, (
        "the warm repeat re-provisioned the pool"
    )
    shutdown_worker_pools()

    # both transfer modes ship the identical payload bytes; segments
    # only exist under shm, one per shard.
    assert four["pickle"]["bytes_shipped"] == four["shm"]["bytes_shipped"]
    assert four["pickle"]["shm_segments"] == 0
    assert four["shm"]["shm_segments"] == four["shm"]["shards"]
    assert all(
        entry["bytes"] > 0
        for run in four.values()
        for entry in run["per_shard"]
    )

    merged = {}
    if OUTPUT_PATH.exists():
        try:
            merged = json.loads(OUTPUT_PATH.read_text())
        except ValueError:
            merged = {}
    merged["zerocopy"] = report
    OUTPUT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    print_table(
        f"Zero-copy parallel data plane — {report['queries']:,} queries, "
        f"{report['visible_cpus']} visible CPU(s)",
        [
            "mode",
            "workers",
            "transfer",
            "shards",
            "seconds",
            "records/s",
            "KiB shipped",
            "vs batch",
        ],
        [
            (
                run["mode"] + (" (warm)" if run.get("warm_pool") else ""),
                run["workers"],
                run["transfer"],
                run.get("shards", "-"),
                f"{run['seconds']:.2f}",
                f"{run['throughput']:,.0f}",
                (
                    f"{run['bytes_shipped'] / 1024:,.0f}"
                    if "bytes_shipped" in run
                    else "-"
                ),
                (
                    f"{run['speedup_vs_batch']:.2f}x"
                    if "speedup_vs_batch" in run
                    else f"{run.get('overhead_vs_batch', 1.0):.2f}x cost"
                ),
            )
            for run in report["runs"]
        ],
    )

    assert all(run["identical_to_batch"] for run in report["runs"])
    assert all(run["metrics_match_batch"] for run in report["runs"])
    # the inline bar holds everywhere — there is no hardware excuse for
    # the data plane taxing a single-worker run.
    assert inline["overhead_vs_batch"] <= INLINE_OVERHEAD_BAR, (
        f"parallel-1 costs {inline['overhead_vs_batch']:.2f}x batch"
    )
    # the multicore bar only where the cores exist; the JSON records the
    # honest ratio either way.
    if report["visible_cpus"] >= 4:
        best = max(
            run["speedup_vs_batch"]
            for run in report["runs"]
            if run.get("workers") == 4
        )
        assert best >= SPEEDUP_BAR, (
            f"parallel-4 only {best:.2f}x vs batch on "
            f"{report['visible_cpus']} CPUs"
        )
