"""E23 — post-parse hot path: interned ids and allocation-free kernels.

After the parse fast path (E22) the pipeline's wall time moves to the
post-parse stages: blocking, periodic segmentation and the pattern
registry all compared 16-hex fingerprint *strings* and allocated a tuple
per period probe.  This benchmark measures the rewritten path — queries
carry run-scoped dense ints from :class:`~repro.skeleton.TemplateInterner`,
``_best_period`` compares window elements in place, and the registry
keys its rows on int tuples with running aggregates — against verbatim
copies of the pre-rewrite kernels embedded below as the *legacy*
reference.

The legacy copies are the authoritative "before": they reproduce the old
``build_blocks`` / ``_best_period`` / ``segment_block`` / ``mine`` and
the old string-keyed registry exactly, so the benchmark both times the
gap and asserts the outputs are identical (blocks, runs, instances and
every ranked registry row).  A cross-executor matrix then re-cleans the
log end to end on batch / streaming / parallel(1, 2, 4), asserting
byte-identical clean logs, equal comparable ledgers and zero
conservation violations — interning must be invisible in every output.

Acceptance bar asserted here: combined mine+registry speedup ≥2× at the
full benchmark scale (~100k queries; a relaxed bar applies at the CI
smoke scale, where per-run noise dominates).  Results land in
``BENCH_postparse.json`` next to this file.  This file deliberately
avoids the pytest-benchmark fixture so the CI benchmark-smoke step can
run it with plain pytest.
"""

import json
import os
import time
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from conftest import print_table

import repro
from repro.obs import Recorder
from repro.pipeline import ExecutionConfig
from repro.pipeline.framework import parse_log
from repro.patterns import MinerConfig, PatternRegistry
from repro.patterns.miner import mine
from repro.patterns.models import Block, ParsedQuery, PatternInstance, PeriodicRun
from repro.patterns.registry import PatternStats
from repro.skeleton.cache import TemplateCache
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale with the default mixture; 6.0 ≈ 100k.
BENCH_SCALE = float(os.environ.get("REPRO_POSTPARSE_BENCH_SCALE", "6.0"))
BENCH_SEED = int(os.environ.get("REPRO_POSTPARSE_BENCH_SEED", "2018"))
#: Timing repetitions; the minimum is reported (best-of-N tames noise).
BENCH_REPEATS = int(os.environ.get("REPRO_POSTPARSE_BENCH_REPEATS", "3"))
OUTPUT_PATH = os.path.join(os.path.dirname(__file__), "BENCH_postparse.json")

#: The executor matrix for the end-to-end differential.
EXECUTIONS = (
    ("batch", "batch"),
    ("streaming", "streaming"),
    ("parallel-1", ExecutionConfig(mode="parallel", workers=1, chunk_size=2048)),
    ("parallel-2", ExecutionConfig(mode="parallel", workers=2, chunk_size=2048)),
    ("parallel-4", ExecutionConfig(mode="parallel", workers=4, chunk_size=2048)),
)


# ----------------------------------------------------------------------
# Legacy kernels — verbatim copies of the pre-interning implementation
# (string fingerprints everywhere, a tuple allocation per period probe,
# sum-based registry totals).  Kept here, not in the library: they exist
# only as the benchmark's "before" reference and equivalence oracle.


def _legacy_build_blocks(
    queries: Iterable[ParsedQuery], config: MinerConfig
) -> List[Block]:
    per_user: dict = {}
    order: List[str] = []
    for query in queries:
        key = query.user
        if key not in per_user:
            per_user[key] = []
            order.append(key)
        per_user[key].append(query)

    blocks: List[Block] = []
    for user in order:
        stream = per_user[user]
        start = 0
        for index in range(1, len(stream)):
            gap = stream[index].timestamp - stream[index - 1].timestamp
            if gap > config.block_gap:
                blocks.append(Block(user=user, queries=tuple(stream[start:index])))
                start = index
        blocks.append(Block(user=user, queries=tuple(stream[start:])))
    return blocks


def _legacy_best_period(
    template_ids: Sequence[str], start: int, max_period: int
) -> Tuple[int, int]:
    best_period, best_repeats, best_cover = 1, 1, 1
    remaining = len(template_ids) - start
    for period in range(1, min(max_period, remaining // 2) + 1):
        unit = tuple(template_ids[start : start + period])
        repeats = 1
        position = start + period
        while (
            position + period <= len(template_ids)
            and tuple(template_ids[position : position + period]) == unit
        ):
            repeats += 1
            position += period
        cover = period * repeats
        if repeats >= 2 and cover > best_cover:
            best_period, best_repeats, best_cover = period, repeats, cover
    return best_period, best_repeats


def _legacy_template_ids(block: Block) -> Tuple[str, ...]:
    # The old Block.template_ids() rebuilt the tuple on every call; the
    # new one memoises.  Rebuild here so the legacy path pays the old
    # cost and the comparison stays honest.
    return tuple(query.template_id for query in block.queries)


def _legacy_segment_block(block: Block, config: MinerConfig) -> List[PeriodicRun]:
    template_ids = _legacy_template_ids(block)
    runs: List[PeriodicRun] = []
    position = 0
    while position < len(template_ids):
        period, repeats = _legacy_best_period(
            template_ids, position, config.max_period
        )
        if repeats == 1:
            period = 1
        unit = tuple(template_ids[position : position + period])
        queries = block.slice(position, position + period * repeats)
        runs.append(PeriodicRun(unit=unit, queries=queries, repeats=repeats))
        position += period * repeats
    return runs


class _LegacyMiningResult:
    # The old MiningResult carried an eagerly-built instance list; the
    # new one derives instances from the runs lazily, so the legacy
    # reference keeps its own plain container.
    __slots__ = ("blocks", "instances", "runs")

    def __init__(self):
        self.blocks: List[Block] = []
        self.instances: List[PatternInstance] = []
        self.runs: List[PeriodicRun] = []


def _legacy_mine(
    queries: Iterable[ParsedQuery], config: MinerConfig
) -> _LegacyMiningResult:
    result = _LegacyMiningResult()
    result.blocks = _legacy_build_blocks(queries, config)
    for block in result.blocks:
        for run in _legacy_segment_block(block, config):
            result.runs.append(run)
            for cycle in run.cycles():
                result.instances.append(
                    PatternInstance(unit=run.unit, queries=cycle)
                )
    return result


class _LegacyRegistry:
    """The pre-rewrite registry: string-tuple keys, sum-based totals."""

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, ...], PatternStats] = {}

    def add_instance(self, instance: PatternInstance) -> PatternStats:
        stats = self._stats.get(instance.unit)
        if stats is None:
            stats = PatternStats(
                unit=instance.unit,
                skeletons=tuple(
                    query.template.skeleton_sql for query in instance.queries
                ),
            )
            self._stats[instance.unit] = stats
        stats.frequency += 1
        stats.query_count += len(instance.queries)
        stats.users.add(instance.user)
        for query in instance.queries:
            if query.record.ip:
                stats.ips.add(query.record.ip)
        return stats

    def ranked(self) -> List[PatternStats]:
        rows = list(self._stats.values())
        rows.sort(key=lambda s: (-s.frequency, s.unit))
        return rows

    def total_instances(self) -> int:
        return sum(stats.frequency for stats in self._stats.values())

    def total_queries(self) -> int:
        return sum(stats.query_count for stats in self._stats.values())

    def max_frequency(self) -> int:
        return max(
            (stats.frequency for stats in self._stats.values()), default=0
        )


# ----------------------------------------------------------------------
# Harness


def _best_of(repeats, runner):
    """Run ``runner`` ``repeats`` times; return (best_seconds, result)."""
    best_seconds: Optional[float] = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = runner()
        seconds = time.perf_counter() - started
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, result


def _row_key(stats: PatternStats):
    return (
        stats.unit,
        stats.skeletons,
        stats.frequency,
        frozenset(stats.users),
        frozenset(stats.ips),
        stats.query_count,
    )


def test_postparse_hotpath(bench_config):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    records = log.records()
    shared_config = replace(bench_config, sws=None)
    miner_config = MinerConfig()

    # Parse once through the fast path; parse_log interns as it goes, so
    # the parsed stream is exactly what the executors feed the miner.
    parsed = parse_log(records, cache=TemplateCache())
    queries = parsed.queries

    # ------------------------------------------------------------------
    # Mining microbenchmark: legacy string kernels vs interned kernels.
    # Each side runs exactly what its pipeline executed: the legacy mine
    # materialises one PatternInstance per cycle (its registry consumed
    # instances), the new mine stops at blocks + runs (its registry
    # aggregates runs; the instance view is derived lazily only when a
    # consumer like SWS asks).  One throwaway run per side warms the
    # allocator and caches before the best-of-N timing (a fresh
    # process's first mine runs ~3x slower).
    warm_slice = queries[: min(len(queries), 5000)]
    _legacy_mine(warm_slice, miner_config)
    mine(warm_slice, miner_config)

    legacy_seconds, legacy_mined = _best_of(
        BENCH_REPEATS, lambda: _legacy_mine(queries, miner_config)
    )
    # The legacy path must not warm the new path's per-block id caches:
    # _legacy_segment_block builds its own string tuples, and the blocks
    # timed below are freshly constructed by the new build_blocks.
    new_seconds, mined = _best_of(
        BENCH_REPEATS, lambda: mine(queries, miner_config)
    )

    # Identical outputs, element by element (dataclass equality ignores
    # the run-scoped unit_ids / interned_id bookkeeping fields).
    assert mined.blocks == legacy_mined.blocks
    assert mined.runs == legacy_mined.runs
    assert mined.instances == legacy_mined.instances

    # ------------------------------------------------------------------
    # Registry microbenchmark: the old pipeline aggregated instance by
    # instance on string-tuple keys with sum-based totals; the new one
    # aggregates run by run on int-tuple keys with running aggregates
    # (registry_stage calls from_runs).  Rows must come out identical.
    def _build_legacy_registry():
        registry = _LegacyRegistry()
        add = registry.add_instance
        for instance in legacy_mined.instances:
            add(instance)
        return registry

    _build_legacy_registry()
    PatternRegistry.from_runs(mined.runs)
    legacy_registry_seconds, legacy_registry = _best_of(
        BENCH_REPEATS, _build_legacy_registry
    )
    registry_seconds, registry = _best_of(
        BENCH_REPEATS, lambda: PatternRegistry.from_runs(mined.runs)
    )
    # from_instances must stay row-identical to from_runs (the public
    # builder shares add_instance with incremental callers).
    instance_registry = PatternRegistry.from_instances(mined.instances)
    assert [_row_key(row) for row in instance_registry.ranked()] == [
        _row_key(row) for row in registry.ranked()
    ]

    legacy_rows = legacy_registry.ranked()
    new_rows = registry.ranked()
    assert len(new_rows) == len(legacy_rows)
    for legacy_row, new_row in zip(legacy_rows, new_rows):
        assert _row_key(new_row) == _row_key(legacy_row)
    assert registry.total_instances() == legacy_registry.total_instances()
    assert registry.total_queries() == legacy_registry.total_queries()
    assert registry.max_frequency() == legacy_registry.max_frequency()

    legacy_combined = legacy_seconds + legacy_registry_seconds
    new_combined = new_seconds + registry_seconds
    combined_speedup = legacy_combined / new_combined

    report = {
        "queries": len(queries),
        "records": len(records),
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "repeats": BENCH_REPEATS,
        "mine": {
            "legacy_seconds": legacy_seconds,
            "interned_seconds": new_seconds,
            "speedup": legacy_seconds / new_seconds,
            "blocks": len(mined.blocks),
            "runs": len(mined.runs),
            "instances": len(mined.instances),
        },
        "registry": {
            "legacy_seconds": legacy_registry_seconds,
            "interned_seconds": registry_seconds,
            "speedup": legacy_registry_seconds / registry_seconds,
            "patterns": len(new_rows),
        },
        "combined": {
            "legacy_seconds": legacy_combined,
            "interned_seconds": new_combined,
            "speedup": combined_speedup,
        },
    }

    # ------------------------------------------------------------------
    # End-to-end differential: every executor against the batch
    # reference — interning must be invisible in every output.
    reference = repro.clean(log, shared_config)
    assert reference.metrics.conservation_violations() == []
    reference_records = reference.clean_log.records()
    reference_view = reference.metrics.comparable()
    report["stage_seconds"] = {
        name: reference.metrics.stages[name].wall_seconds
        for name in ("parse", "mine", "detect", "solve", "registry")
        if name in reference.metrics.stages
    }

    runs = []
    for name, execution in EXECUTIONS:
        recorder = Recorder()
        started = time.perf_counter()
        result = repro.clean(
            log, shared_config, execution=execution, recorder=recorder
        )
        seconds = time.perf_counter() - started
        parse_counters = result.metrics.stages["parse"].counters
        interner_size = parse_counters.get("interner_size", 0)
        if name.startswith("parallel"):
            merge = result.metrics.stages.get("merge")
            if merge is not None:
                interner_size = merge.counters.get(
                    "interner_size", interner_size
                )
        runs.append(
            {
                "mode": name,
                "seconds": seconds,
                "mine_seconds": result.metrics.stages["mine"].wall_seconds,
                "interner_size": interner_size,
                "identical_to_reference": result.clean_log.records()
                == reference_records,
                "metrics_match_reference": result.metrics.comparable()
                == reference_view,
                "conservation_violations": result.metrics.conservation_violations(),
            }
        )
    report["clean_runs"] = runs

    with open(OUTPUT_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print_table(
        f"Post-parse hot path — {report['queries']:,} queries, "
        f"best of {BENCH_REPEATS} "
        f"(combined speedup {combined_speedup:.2f}x)",
        ["kernel", "legacy s", "interned s", "speedup"],
        [
            (
                label,
                f"{report[key]['legacy_seconds']:.3f}",
                f"{report[key]['interned_seconds']:.3f}",
                f"{report[key]['speedup']:.2f}x",
            )
            for label, key in (
                ("mine stage", "mine"),
                ("registry stage", "registry"),
                ("combined", "combined"),
            )
        ],
    )
    print_table(
        "End-to-end, interned executors vs batch reference",
        ["mode", "seconds", "mine s", "interner", "identical", "metrics"],
        [
            (
                run["mode"],
                f"{run['seconds']:.2f}",
                f"{run['mine_seconds']:.2f}",
                f"{run['interner_size']:,}",
                "yes" if run["identical_to_reference"] else "NO",
                "match" if run["metrics_match_reference"] else "DIVERGED",
            )
            for run in runs
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.  The ≥2x bar is the full-scale contract; the CI
    # smoke run (scale ≤1) keeps a relaxed floor because sub-second
    # timings on shared runners are noisy.
    speedup_bar = 2.0 if BENCH_SCALE >= 2.0 else 1.2
    assert combined_speedup >= speedup_bar, (
        f"combined mine+registry speedup {combined_speedup:.2f}x below "
        f"{speedup_bar}x (legacy {legacy_combined:.3f}s, "
        f"interned {new_combined:.3f}s)"
    )
    assert all(run["identical_to_reference"] for run in runs)
    assert all(run["metrics_match_reference"] for run in runs)
    assert all(run["conservation_violations"] == [] for run in runs)
    # Every executor interned the same distinct-template dictionary.
    batch_size = next(
        run["interner_size"] for run in runs if run["mode"] == "batch"
    )
    assert batch_size > 0
    assert all(run["interner_size"] == batch_size for run in runs), runs
