"""E10 — Section 6.3: runtime of original stifles vs their rewrites.

Paper: 10 222 solvable-stifle queries took 4 450 s on SkyServer; their
254 rewrites took 152 s — 29.27× faster from a ~40× statement reduction.

Here both workloads execute on the in-memory engine; the modelled cost
(per-statement overhead + per-row work, see repro.engine.cost) provides
the speedup figure.  Raw engine wall clock is reported for transparency
but carries no per-statement network/parse/plan overhead — the very cost
the rewrite amortises — so it is close to flat by construction; the
paper's 29× lives in the overhead term the model charges.  The *shape*
to reproduce: large statement reduction, large modelled speedup,
identical information content.
"""

import time

from conftest import print_table

from repro.engine import CostModel, compare_workloads
from repro.rewrite.validation import validate_all


def _stifle_slice(result):
    originals, rewrites = [], []
    for solved in result.solve_result.solved:
        if "Stifle" not in solved.instance.label:
            continue
        originals.extend(query.record.sql for query in solved.instance.queries)
        rewrites.append(solved.replacement_sql)
    return originals, rewrites


def test_sec63_rewrite_runtime(benchmark, bench_result, bench_database):
    originals, rewrites = _stifle_slice(bench_result)
    assert originals and rewrites

    def run_both():
        started = time.perf_counter()
        _, original_stats = bench_database.execute_many(originals)
        original_wall = time.perf_counter() - started
        started = time.perf_counter()
        _, rewritten_stats = bench_database.execute_many(rewrites)
        rewritten_wall = time.perf_counter() - started
        return original_stats, rewritten_stats, original_wall, rewritten_wall

    original_stats, rewritten_stats, original_wall, rewritten_wall = (
        benchmark.pedantic(run_both, rounds=1, iterations=1)
    )
    comparison = compare_workloads(original_stats, rewritten_stats, CostModel())

    print_table(
        "Section 6.3 — original vs rewritten stifle workload",
        ["metric", "original", "rewritten", "paper"],
        [
            ("statements", len(originals), len(rewrites), "10,222 → 254"),
            (
                "modelled cost",
                f"{comparison.original_cost:,.0f}",
                f"{comparison.rewritten_cost:,.0f}",
                "4,450 s → 152 s",
            ),
            (
                "engine wall clock (no per-stmt overhead)",
                f"{original_wall:.3f} s",
                f"{rewritten_wall:.3f} s",
                "—",
            ),
        ],
    )
    print(
        f"\nstatement reduction: {comparison.statement_reduction:.1f}x "
        f"(paper ≈ 40x); modelled speedup: {comparison.speedup:.1f}x "
        f"(paper 29.3x)"
    )

    assert comparison.statement_reduction > 3.0
    assert comparison.speedup > 2.0
    # the rewrites must not lose information
    solved = [
        s for s in bench_result.solve_result.solved if "Stifle" in s.instance.label
    ][:50]
    reports = validate_all(bench_database, solved)
    comparable = [r for r in reports if r.comparable]
    assert comparable
    assert all(r.equivalent for r in comparable), [
        r.reason for r in comparable if not r.equivalent
    ]
