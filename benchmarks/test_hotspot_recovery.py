"""E19 — closing the loop: user-interest hotspots from the cleaned log.

The case study's second objective is to "give meaning to the most
popular patterns": the experts confirmed post-clean clusters correspond
to sky locations users care about.  Our synthetic sky plants its
hotspots (``workload.schema.SKY_CLUSTERS``), so meaning-recovery can be
*scored*: cluster each log variant, aggregate spatial clusters into
hotspots, and check the planted sky regions are recovered.

Expected shape: the true hotspots are recovered from every variant (the
paper: removal-log clusters all reappear in the raw log — cleaning
removes noise, not signal), while the raw log carries the most
non-spatial noise clusters alongside them.
"""

from conftest import print_table

from repro.analysis import run_downstream_experiment
from repro.analysis.interests import extract_hotspots, match_hotspots
from repro.workload.schema import SKY_CLUSTERS

THRESHOLD = 0.5


def test_hotspot_recovery(benchmark, bench_workload, bench_config):
    planted = [(ra, dec) for ra, dec, _, _ in SKY_CLUSTERS]

    def run():
        report = run_downstream_experiment(
            bench_workload.log, thresholds=(THRESHOLD,), config=bench_config
        )
        results = {}
        for variant in ("raw", "clean", "removal"):
            clustering = report.result(variant, THRESHOLD)
            hotspots = extract_hotspots(clustering)
            results[variant] = (
                hotspots,
                match_hotspots(hotspots, planted, tolerance_degrees=6.0),
                clustering.cluster_count,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Hotspot recovery per log variant",
        ["variant", "clusters", "hotspots", "planted recovered"],
        [
            (
                variant,
                cluster_count,
                len(hotspots),
                f"{match.recovered}/{match.total}",
            )
            for variant, (hotspots, match, cluster_count) in results.items()
        ],
    )
    top = results["clean"][0][:8]
    print_table(
        "Top hotspots (clean log)",
        ["rank", "ra", "dec", "queries", "clusters"],
        [
            (rank, f"{spot.ra:.1f}", f"{spot.dec:.1f}", spot.query_count,
             spot.cluster_count)
            for rank, spot in enumerate(top, start=1)
        ],
    )

    for variant, (hotspots, match, _) in results.items():
        assert hotspots, f"{variant}: no hotspots extracted"
        # the planted sky interests survive cleaning (≥ 4 of 5 recovered)
        assert match.recovered >= len(planted) - 1, variant

    # cleaning removes noise, not signal: the clean/removal hotspot
    # rankings keep the raw log's top interests
    raw_top = {
        (round(spot.ra / 6), round(spot.dec / 6))
        for spot in results["raw"][0][:5]
    }
    clean_top = {
        (round(spot.ra / 6), round(spot.dec / 6))
        for spot in results["clean"][0][:5]
    }
    assert len(raw_top & clean_top) >= 3
