"""E22 — parse fast path: fingerprint-keyed template cache.

Measures the parse stage alone (the repeated-template premise of the
paper's Section 3 is exactly what the cache exploits) on the seed-2018
synthetic workload, in three configurations:

* **uncached** — the full parser for every distinct statement text;
* **cold** — a fresh :class:`~repro.skeleton.cache.TemplateCache`, so
  every fingerprint class pays one full parse and subsequent members
  take the one-lexer-pass fast path;
* **warm** — a second pass with the already-populated cache (the
  steady-state cost: near-100% hit rate).

It then re-cleans the log end to end on every executor with the cache
enabled against an uncached batch reference, asserting byte-identical
clean logs, equal comparable ledgers and zero conservation violations —
the fast path must be invisible in every output.  Results land in
``BENCH_parse_fastpath.json`` next to this file.

Acceptance bars asserted here: warm-cache parse throughput ≥3× the
uncached parse, cold hit rate above 50% on the seed-2018 workload, and
streaming's parse-stage seconds within 1.5× of batch's (the hot-loop
overhead fix).  This file deliberately avoids the pytest-benchmark
fixture so the CI benchmark-smoke step can run it with plain pytest.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_table

import repro
from repro.obs import Recorder
from repro.pipeline import ExecutionConfig
from repro.pipeline.framework import parse_log
from repro.skeleton.cache import TemplateCache
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale with the default mixture.
BENCH_SCALE = float(os.environ.get("REPRO_FASTPATH_BENCH_SCALE", "2.0"))
BENCH_SEED = int(os.environ.get("REPRO_FASTPATH_BENCH_SEED", "2018"))
OUTPUT_PATH = Path(__file__).parent / "BENCH_parse_fastpath.json"

#: The executor matrix for the cached-vs-uncached differential.
EXECUTIONS = (
    ("batch", "batch"),
    ("streaming", "streaming"),
    ("parallel-1", ExecutionConfig(mode="parallel", workers=1, chunk_size=2048)),
    ("parallel-2", ExecutionConfig(mode="parallel", workers=2, chunk_size=2048)),
    ("parallel-4", ExecutionConfig(mode="parallel", workers=4, chunk_size=2048)),
)


def _timed_parse(records, cache):
    started = time.perf_counter()
    result = parse_log(records, cache=cache)
    return result, time.perf_counter() - started


def test_parse_fastpath(bench_config):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    records = log.records()
    shared_config = replace(bench_config, sws=None)

    # ------------------------------------------------------------------
    # Parse-stage microbenchmark: uncached vs cold vs warm cache.
    parse_log(records[:200])  # warm imports/JIT-ish caches before timing

    uncached, uncached_seconds = _timed_parse(records, None)

    cache = TemplateCache()
    cold, cold_seconds = _timed_parse(records, cache)
    cold_hits, cold_misses = cache.hits, cache.misses

    warm, warm_seconds = _timed_parse(records, cache)
    warm_hits = cache.hits - cold_hits
    warm_misses = cache.misses - cold_misses

    # The fast path must be invisible in the parse artifacts themselves.
    assert cold.queries == uncached.queries
    assert warm.queries == uncached.queries
    assert cold.non_select == uncached.non_select
    assert [r for r, _ in cold.syntax_errors] == [
        r for r, _ in uncached.syntax_errors
    ]

    report = {
        "queries": len(records),
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "parse_stage": {
            "uncached_seconds": uncached_seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "uncached_throughput": len(records) / uncached_seconds,
            "cold_throughput": len(records) / cold_seconds,
            "warm_throughput": len(records) / warm_seconds,
            "cold_speedup": uncached_seconds / cold_seconds,
            "warm_speedup": uncached_seconds / warm_seconds,
            "cold_hit_rate": cold_hits / (cold_hits + cold_misses),
            "warm_hit_rate": warm_hits / (warm_hits + warm_misses),
            "interned_keys": cache.key_entries,
        },
    }

    # ------------------------------------------------------------------
    # End-to-end differential: cached executors vs an uncached batch
    # reference — identical clean logs, equal comparable ledgers.
    reference = repro.clean(log, shared_config, parse_cache=False)
    assert reference.metrics.conservation_violations() == []
    reference_records = reference.clean_log.records()
    reference_view = reference.metrics.comparable()

    runs = []
    for name, execution in EXECUTIONS:
        recorder = Recorder()
        started = time.perf_counter()
        result = repro.clean(
            log, shared_config, execution=execution, recorder=recorder
        )
        seconds = time.perf_counter() - started
        raw = result.metrics.stages["parse"].counters
        runs.append(
            {
                "mode": name,
                "seconds": seconds,
                "parse_seconds": result.metrics.stages["parse"].wall_seconds,
                "cache_hits": raw["parse_cache_hits"],
                "cache_misses": raw["parse_cache_misses"],
                "identical_to_reference": result.clean_log.records()
                == reference_records,
                "metrics_match_reference": result.metrics.comparable()
                == reference_view,
                "conservation_violations": result.metrics.conservation_violations(),
            }
        )
    report["clean_runs"] = runs
    batch_run = next(run for run in runs if run["mode"] == "batch")
    streaming_run = next(run for run in runs if run["mode"] == "streaming")
    report["streaming_vs_batch_parse_ratio"] = (
        streaming_run["parse_seconds"] / batch_run["parse_seconds"]
    )

    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    stage = report["parse_stage"]
    print_table(
        f"Parse fast path — {report['queries']:,} queries "
        f"(cold hit rate {stage['cold_hit_rate']:.1%}, "
        f"{stage['interned_keys']} interned keys)",
        ["configuration", "seconds", "stmts/s", "speedup"],
        [
            (
                label,
                f"{stage[f'{key}_seconds']:.2f}",
                f"{stage[f'{key}_throughput']:,.0f}",
                f"{stage.get(f'{key}_speedup', 1.0):.2f}x",
            )
            for label, key in (
                ("uncached", "uncached"),
                ("cold cache", "cold"),
                ("warm cache", "warm"),
            )
        ],
    )
    print_table(
        "End-to-end, cache on vs uncached batch reference "
        f"(streaming/batch parse ratio "
        f"{report['streaming_vs_batch_parse_ratio']:.2f})",
        ["mode", "seconds", "hits", "misses", "identical", "metrics"],
        [
            (
                run["mode"],
                f"{run['seconds']:.2f}",
                f"{run['cache_hits']:,}",
                f"{run['cache_misses']:,}",
                "yes" if run["identical_to_reference"] else "NO",
                "match" if run["metrics_match_reference"] else "DIVERGED",
            )
            for run in runs
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.
    assert stage["cold_hit_rate"] > 0.5, stage
    assert stage["warm_hit_rate"] > 0.95, stage
    assert stage["warm_speedup"] >= 3.0, (
        f"warm-cache parse only {stage['warm_speedup']:.2f}x "
        f"over uncached (uncached {uncached_seconds:.2f}s, "
        f"warm {warm_seconds:.2f}s)"
    )
    assert all(run["identical_to_reference"] for run in runs)
    assert all(run["metrics_match_reference"] for run in runs)
    assert all(run["conservation_violations"] == [] for run in runs)
    assert all(
        run["cache_hits"] + run["cache_misses"] > 0 for run in runs
    )
    # The hot-loop fix's bar: streaming parse within 1.5x of batch
    # (generous on shared hardware; the JSON records the exact ratio).
    assert report["streaming_vs_batch_parse_ratio"] <= 1.5, report[
        "streaming_vs_batch_parse_ratio"
    ]
