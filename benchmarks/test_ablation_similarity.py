"""E14 — Ablation: template identity definitions (Definition 6 adequacy).

The paper's Definition 6 equates queries whose (SFC, SWC, SSC) skeletons
are equal and reports (Section 6.3) that manual inspection found the
definition adequate.  Our default identity additionally separates
templates by the remaining clauses (ORDER BY / TOP / GROUP BY), and a
``fold_variables`` dial also folds @variables into placeholders.

The ablation measures how the template and pattern censuses move across
the three identities — the strict paper triple should yield the fewest
(coarsest) templates, variable folding fewer still.
"""

from dataclasses import replace

from conftest import print_table

from repro.log import LogRecord, QueryLog
from repro.pipeline import CleaningPipeline, PipelineConfig


def census(result):
    templates = {q.template_id for q in result.parse_stage.queries}
    return {
        "templates": len(templates),
        "patterns": len(result.registry),
        "antipattern instances": len(result.antipatterns),
        "clean size": len(result.clean_log),
    }


def _with_discriminating_traffic(log: QueryLog) -> QueryLog:
    """Append the query shapes the identity definitions disagree on:
    the same skeleton with and without ORDER BY, and @variable templates
    differing only in the variable names."""
    records = log.records()
    seq = records[-1].seq + 1 if records else 0
    clock = log.time_span()[1] + 10_000.0
    extra = []
    for index in range(40):
        base = (
            f"SELECT objid, ra FROM photoprimary WHERE htmid >= {index * 100} "
            f"AND htmid <= {index * 100 + 50}"
        )
        sql = base + (" ORDER BY objid" if index % 2 else "")
        extra.append(
            LogRecord(seq=seq, sql=sql, timestamp=clock, user="ablation-u1")
        )
        seq += 1
        clock += 30.0
    for index in range(20):
        variable = "ra" if index % 2 else "ra2"
        extra.append(
            LogRecord(
                seq=seq,
                sql=f"SELECT objid FROM photoprimary WHERE ra > @{variable}",
                timestamp=clock,
                user="ablation-u2",
            )
        )
        seq += 1
        clock += 30.0
    return QueryLog(records + extra)


def test_ablation_template_identity(benchmark, bench_workload, bench_config):
    log = _with_discriminating_traffic(bench_workload.log)

    def run_all():
        default = CleaningPipeline(bench_config).run(log)
        strict = CleaningPipeline(
            replace(bench_config, strict_triple=True)
        ).run(log)
        folded = CleaningPipeline(
            replace(bench_config, strict_triple=True, fold_variables=True)
        ).run(log)
        return census(default), census(strict), census(folded)

    default, strict, folded = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Ablation E14 — template identity definitions",
        ["metric", "full identity (default)", "paper triple", "triple + fold @vars"],
        [
            (key, default[key], strict[key], folded[key])
            for key in default
        ],
    )

    # coarser identities strictly merge templates on this traffic:
    # dropping ORDER BY from the identity merges the ±ORDER BY pair …
    assert strict["templates"] < default["templates"]
    # … and folding @variables merges the variable-renamed templates
    assert folded["templates"] < strict["templates"]
    # the cleaning outcome is stable across identities (same solvable runs)
    assert abs(strict["clean size"] - default["clean size"]) <= 0.05 * max(
        default["clean size"], 1
    )
