"""E8 — Fig. 2(c): pattern frequencies with vs without user/session info.

Paper: the top patterns keep their frequencies when the log is reduced to
statements + timestamps (instances arrive in tight bursts anyway), and
the cleaned-log size differs by only 0.36 %.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline


def test_fig2c_with_and_without_user_information(
    benchmark, bench_workload, bench_config, bench_result
):
    reduced_result = benchmark.pedantic(
        lambda: CleaningPipeline(bench_config).run(
            bench_workload.log.without_metadata()
        ),
        rounds=1,
        iterations=1,
    )

    full_top = bench_result.registry.top(10)
    reduced_by_skeleton = {
        stats.skeletons: stats for stats in reduced_result.registry
    }

    rows = []
    close = 0
    compared = 0
    for rank, stats in enumerate(full_top, start=1):
        other = reduced_by_skeleton.get(stats.skeletons)
        other_freq = other.frequency if other else 0
        rows.append((rank, f"{stats.frequency:,}", f"{other_freq:,}"))
        if other is not None:
            compared += 1
            if abs(other_freq - stats.frequency) <= 0.35 * stats.frequency:
                close += 1
    print_table(
        "Fig. 2(c) — top patterns with full info (FI) vs without",
        ["rank", "frequency with FI", "frequency without FI"],
        rows,
    )

    assert compared >= 6, "top patterns must be re-found without user info"
    assert close / compared >= 0.7, "frequencies should stay close"

    size_full = len(bench_result.clean_log)
    size_reduced = len(reduced_result.clean_log)
    relative_difference = abs(size_full - size_reduced) / size_full
    print(
        f"\nclean-log size: full info {size_full:,}, reduced {size_reduced:,} "
        f"({100 * relative_difference:.2f} % difference; paper: 0.36 %)"
    )
    assert relative_difference < 0.10
