"""E28 — Parse engine v4: dispatch scanner, single-lex parse, batched preloads.

Two axes, matching the two halves of the v4 engine:

**Cold parse.**  A workload of *distinct-template* statements (every
statement is the first sight of its fingerprint key, so every record
takes the full cold path) runs through the v4 flow — first-character
dispatch scanner, ``NamedTuple`` tokens, cur-token parser — and through
the complete v3 parse stack exec'd **frozen out of git history** (rev
``ff621b5``, the v3 commit), so the baseline cannot drift along with
the code under test.  Unlike E27, which could share the parser and AST
with its baseline, v4 rewrote the token and node classes themselves, so
the *entire* stack is frozen: tokens, AST, scanner, lexer, parser,
formatter, normalizer, template, fingerprint, features and cache, with
relative imports resolved through stub package modules in
``sys.modules``.  Output equality is asserted on the cross-class
projection of each ``ParsedQuery`` — template id, rendered clause
texts, predicate count, equality filter, output columns and record
identity — because dataclass ``==`` is class-identical by design and
cannot compare a frozen node to a live one.

**Batched preload.**  The same distinct-template texts act as a
template dictionary's witness list; the frozen v3 per-witness
``preload`` (fetch probe ladder, then build, per witness) races the v4
batched preload (straight into the single-lex build with the probe
ladder skipped and the cyclic GC suspended for the batch).  Timed with
the collector *enabled* on both sides — a warm-start open happens in a
live process, and the GC suspension is part of what v4 ships — and
timed *before* the cold axis, because a dictionary preload happens at
process open, on a heap no prior parsing has inflated.  After
both preloads, a member workload must see identical fetch outcomes and
identical hit/miss counters: the batch may only ever change speed.

Acceptance bars asserted here: cold parse ≥1.5× the frozen v3 flow at
full scale (``REPRO_PARSEV4_BENCH_SCALE`` ≥ 5.8 ≈ 100k distinct
templates; the bar relaxes to ≥1.2× below), zero cold-parse
mismatches, preload ≥2× at full scale (≥1.5× below) over ≥10k
witnesses at full scale, and byte-identical post-preload hit behavior.
Results land in ``BENCH_parse_v4.json`` next to this file.  This file
deliberately avoids the pytest-benchmark fixture so the CI
benchmark-smoke step can run it with plain pytest.
"""

import gc
import json
import os
import subprocess
import sys
import time
import types
from pathlib import Path

import pytest
from conftest import print_table

from repro.log import LogRecord
from repro.skeleton.cache import TemplateCache

#: ~17.2k queries per unit of scale; 5.8 ≈ the 100k-query full scale.
BENCH_SCALE = float(os.environ.get("REPRO_PARSEV4_BENCH_SCALE", "5.8"))
BENCH_SEED = int(os.environ.get("REPRO_PARSEV4_BENCH_SEED", "2018"))
FULL_SCALE = 5.8
OUTPUT_PATH = Path(__file__).parent / "BENCH_parse_v4.json"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: The v3 commit — the last whose scanner/parser/tokens carry the v3 flow.
V3_REV = "ff621b5"

#: Every module of the v3 parse stack, in dependency order.  All of it
#: is frozen (not just the files v4 edited) because the files v4 left
#: alone — formatter, features, template — dispatch on AST classes and
#: must bind against the *frozen* AST to form a coherent baseline.
V3_MODULES = (
    "sqlparser/tokens",
    "sqlparser/ast_nodes",
    "sqlparser/visitor",
    "sqlparser/scanner",
    "sqlparser/lexer",
    "sqlparser/parser",
    "sqlparser/formatter",
    "skeleton/normalizer",
    "skeleton/template",
    "skeleton/fingerprint",
    "skeleton/features",
    "skeleton/cache",
)

#: Distinct-template statement families: the ``{i}`` identifiers make
#: every statement a fresh fingerprint key, so none can ride the L2 or
#: raw-template fast paths — each one pays the whole cold path.
SHAPES = (
    "SELECT objid, ra_{i}, dec FROM photoprimary_{i} "
    "WHERE ra BETWEEN {a} AND {b} AND dec > {c}",
    "SELECT TOP 10 p.objid_{i}, s.z FROM photoobj AS p "
    "JOIN specobj_{i} AS s ON p.objid = s.bestobjid "
    "WHERE s.z < {a} AND p.r < {b} ORDER BY s.z DESC",
    "SELECT count(*) FROM star_{i} WHERE htmid_{i} = {a} AND name = '{n}'",
    "SELECT u, g, r_{i}, i FROM galaxy_{i} "
    "WHERE dbo.fgetnearbyobjeq({a}, {b}, {c}) > 0 AND flags = {d} "
    "GROUP BY u, g, r_{i}, i HAVING count(*) > {e}",
)


def _git_show(path):
    return subprocess.run(
        ["git", "show", f"{V3_REV}:{path}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


def _load_v3_cache():
    """The frozen v3 parse stack, exec'd from git history as ``reprov3``.

    Stub package modules registered in ``sys.modules`` let each frozen
    module's *relative* imports resolve natively — no source rewriting.
    The three leaf modules v4 did not touch and no frozen module
    subclasses (errors, log records, the ``ParsedQuery`` container)
    alias the live package.  Returns the frozen ``TemplateCache``.
    """
    if "reprov3.skeleton.cache" in sys.modules:
        return sys.modules["reprov3.skeleton.cache"].TemplateCache
    try:
        sources = [_git_show(f"src/repro/{rel}.py") for rel in V3_MODULES]
    except (OSError, subprocess.CalledProcessError):
        pytest.skip(
            f"git history for {V3_REV} unavailable (shallow clone?); "
            "cannot build the frozen v3 baseline"
        )
    import repro.log.models
    import repro.patterns.models
    import repro.sqlparser.errors

    packages = {}
    for name in (
        "reprov3",
        "reprov3.sqlparser",
        "reprov3.skeleton",
        "reprov3.log",
        "reprov3.patterns",
    ):
        pkg = types.ModuleType(name)
        pkg.__path__ = []
        sys.modules[name] = pkg
        packages[name] = pkg
        parent, _, leaf = name.rpartition(".")
        if parent:
            setattr(packages[parent], leaf, pkg)
    for alias, live in (
        ("reprov3.sqlparser.errors", repro.sqlparser.errors),
        ("reprov3.log.models", repro.log.models),
        ("reprov3.patterns.models", repro.patterns.models),
    ):
        sys.modules[alias] = live
        parent, _, leaf = alias.rpartition(".")
        setattr(packages[parent], leaf, live)
    for rel, source in zip(V3_MODULES, sources):
        name = "reprov3." + rel.replace("/", ".")
        mod = types.ModuleType(name)
        mod.__package__ = name.rpartition(".")[0]
        mod.__file__ = f"<{V3_REV}:src/repro/{rel}.py>"
        sys.modules[name] = mod
        parent, _, leaf = name.rpartition(".")
        setattr(packages[parent], leaf, mod)
        exec(compile(source, mod.__file__, "exec"), mod.__dict__)
    return sys.modules["reprov3.skeleton.cache"].TemplateCache


def _cold_records(count):
    records = []
    for i in range(count):
        sql = SHAPES[i % len(SHAPES)].format(
            i=i, a=i, b=i + 1, c=i % 90, d=i * 7, n=f"n{i}", e=i % 5
        )
        records.append(LogRecord(seq=i, sql=sql, timestamp=float(i)))
    return records


def _run_cold(records, cache_cls):
    """One cold pass: fetch miss → single-shot build, GC off.

    Everything built here is an acyclic tree; generational collections
    scale with how many objects the *process* holds alive, so whichever
    flow runs later in the session would otherwise pay collection
    passes over the earlier flow's outputs — noise, not parse cost.
    """
    cache = cache_cls(max_entries=1 << 20)
    out = []
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for record in records:
            got = cache.fetch(record)
            if got is None:
                got = cache.build(record)
            out.append(got)
        return time.perf_counter() - started, out
    finally:
        gc.enable()


def _view(query):
    """Cross-class projection of a ``ParsedQuery`` for equality checks.

    Frozen v3 AST nodes and live v4 nodes are distinct classes, and
    dataclass/namedtuple ``==`` is class-identical — so equality is
    asserted on everything the pipeline consumes downstream: template
    identity, rendered clause texts, derived features and the record.
    """
    return (
        query.template_id,
        _template_view(query.template),
        query.clauses.sc,
        query.clauses.fc,
        query.clauses.wc,
        query.predicate_count,
        query.equality_filter,
        query.outputs,
        query.record.seq,
        query.record.sql,
    )


def _template_view(template):
    return (
        template.ssc,
        template.sfc,
        template.swc,
        template.rest_prefix,
        template.rest_suffix,
    )


def _run_preload(witnesses, cache_cls):
    """One preload pass on a fresh cache, collector *enabled*.

    The v4 batch suspends the GC itself; the frozen v3 per-witness loop
    does not.  Measuring with the collector on is the honest contract —
    a warm-start open happens in a live process.
    """
    cache = cache_cls(max_entries=1 << 20)
    gc.collect()
    started = time.perf_counter()
    loaded = cache.preload(witnesses)
    return time.perf_counter() - started, loaded, cache


def _probe(cache, member_records):
    """Post-preload hit behavior: fetch outcomes + counters."""
    outcomes = []
    for record in member_records:
        got = cache.fetch(record)
        outcomes.append(
            (got is not None, None if got is None else got.template_id)
        )
    return outcomes, cache.hits, cache.misses, cache.evictions


def test_parse_v4():
    V3Cache = _load_v3_cache()
    records = _cold_records(max(500, int(17200 * BENCH_SCALE)))

    # ------------------------------------------------------------------
    # Batched preload vs the frozen per-witness loop, best of two.
    # ≥10k witnesses required at full scale; 20k is where the per-witness
    # flow's GC burden (full collector passes over the growing cache
    # heap) is representative of a real SkyServer-sized dictionary.
    # This axis runs FIRST, on a small heap: a dictionary preload
    # happens at process open, before any parsing has populated the
    # old generation.  Run after the cold axis, its ~100k retained
    # outputs trip CPython's gen-2 25%-growth throttle, collections
    # get *rarer*, and the per-witness baseline's dominant cost —
    # collector passes between witnesses — quietly evaporates.
    witness_count = min(
        len(records), max(2000, int(20000 * BENCH_SCALE / FULL_SCALE))
    )
    witnesses = [record.sql for record in records[:witness_count]]
    member_records = [
        LogRecord(seq=10_000_000 + i, sql=witnesses[(i * 7) % witness_count], timestamp=0.0)
        for i in range(min(2000, witness_count))
    ]
    v3_pre_seconds, v3_loaded, v3_warm = _run_preload(witnesses, V3Cache)
    v4_pre_seconds, v4_loaded, v4_warm = _run_preload(witnesses, TemplateCache)
    v3_probe = _probe(v3_warm, member_records)
    v4_probe = _probe(v4_warm, member_records)
    del v3_warm, v4_warm
    retry_v3_pre, _, v3_warm = _run_preload(witnesses, V3Cache)
    retry_v4_pre, _, v4_warm = _run_preload(witnesses, TemplateCache)
    del v3_warm, v4_warm
    v3_pre_seconds = min(v3_pre_seconds, retry_v3_pre)
    v4_pre_seconds = min(v4_pre_seconds, retry_v4_pre)

    # ------------------------------------------------------------------
    # Cold-parse microbenchmark: frozen v3 stack vs the v4 engine.
    # Best-of-two interleaved rounds: allocator and interpreter state
    # drift over a long process, and round one doubles as the warm-up.
    # (Both passes run GC-disabled, so heap ordering effects that would
    # distort the preload axis do not apply here.)
    v3_seconds, v3_out = _run_cold(records, V3Cache)
    v4_seconds, v4_out = _run_cold(records, TemplateCache)
    mismatches = sum(1 for a, b in zip(v3_out, v4_out) if _view(a) != _view(b))
    del v3_out, v4_out
    retry_v3, v3_out = _run_cold(records, V3Cache)
    retry_v4, v4_out = _run_cold(records, TemplateCache)
    del v3_out, v4_out
    v3_seconds = min(v3_seconds, retry_v3)
    v4_seconds = min(v4_seconds, retry_v4)

    report = {
        "scale": BENCH_SCALE,
        "full_scale": FULL_SCALE,
        "seed": BENCH_SEED,
        "v3_rev": V3_REV,
        "cold_parse": {
            "distinct_templates": len(records),
            "v3_seconds": v3_seconds,
            "v4_seconds": v4_seconds,
            "v3_throughput": len(records) / v3_seconds,
            "v4_throughput": len(records) / v4_seconds,
            "speedup": v3_seconds / v4_seconds,
            "mismatches": mismatches,
        },
        "preload": {
            "witnesses": witness_count,
            "v3_seconds": v3_pre_seconds,
            "v4_seconds": v4_pre_seconds,
            "v3_throughput": witness_count / v3_pre_seconds,
            "v4_throughput": witness_count / v4_pre_seconds,
            "speedup": v3_pre_seconds / v4_pre_seconds,
            "loaded_v3": v3_loaded,
            "loaded_v4": v4_loaded,
            "identical_hit_behavior": v3_probe == v4_probe,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    cold = report["cold_parse"]
    pre = report["preload"]
    print_table(
        f"Parse engine v4, cold parse — {cold['distinct_templates']:,} "
        f"distinct templates (scale {BENCH_SCALE})",
        ["configuration", "seconds", "stmts/s", "speedup"],
        [
            (
                f"v3 engine (frozen {V3_REV})",
                f"{cold['v3_seconds']:.2f}",
                f"{cold['v3_throughput']:,.0f}",
                "1.00x",
            ),
            (
                "v4 dispatch + single-lex",
                f"{cold['v4_seconds']:.2f}",
                f"{cold['v4_throughput']:,.0f}",
                f"{cold['speedup']:.2f}x",
            ),
        ],
    )
    print_table(
        f"Dictionary preload — {pre['witnesses']:,} witnesses",
        ["configuration", "seconds", "witnesses/s", "speedup"],
        [
            (
                f"v3 per-witness (frozen {V3_REV})",
                f"{pre['v3_seconds']:.2f}",
                f"{pre['v3_throughput']:,.0f}",
                "1.00x",
            ),
            (
                "v4 batched",
                f"{pre['v4_seconds']:.2f}",
                f"{pre['v4_throughput']:,.0f}",
                f"{pre['speedup']:.2f}x",
            ),
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.
    assert mismatches == 0, f"{mismatches} cold-parse output mismatches"
    cold_bar = 1.5 if BENCH_SCALE >= FULL_SCALE else 1.2
    assert cold["speedup"] >= cold_bar, (
        f"cold parse only {cold['speedup']:.2f}x over the frozen v3 flow "
        f"at scale {BENCH_SCALE} (bar {cold_bar}x; v3 {v3_seconds:.2f}s, "
        f"v4 {v4_seconds:.2f}s)"
    )
    assert v3_loaded == v4_loaded == witness_count, (
        f"preload admitted {v4_loaded}/{witness_count} witnesses "
        f"(frozen v3 admitted {v3_loaded})"
    )
    assert pre["identical_hit_behavior"], (
        "post-preload fetch behavior diverged between the batched and "
        "per-witness flows"
    )
    preload_bar = 2.0 if BENCH_SCALE >= FULL_SCALE else 1.5
    assert pre["speedup"] >= preload_bar, (
        f"preload only {pre['speedup']:.2f}x over the frozen per-witness "
        f"flow at scale {BENCH_SCALE} (bar {preload_bar}x; "
        f"v3 {v3_pre_seconds:.2f}s, v4 {v4_pre_seconds:.2f}s)"
    )
