"""E9 — Fig. 2(d): CTH candidates — frequency/popularity, true vs false.

Paper: 50 candidates, 28 judged real by experts; the scatter of frequency
and user popularity by rank separates them loosely (low popularity hints
at real CTH, but widely-used software can produce real ones too).

Our oracle mechanises the experts' published rule (zero think-time); the
workload's ground truth scores it.
"""

from conftest import print_table

from repro.antipatterns import cth_census


def test_fig2d_cth_candidates(benchmark, bench_result, bench_workload):
    census = benchmark.pedantic(
        lambda: bench_result.cth_candidates(), rounds=1, iterations=1
    )

    print_table(
        "Fig. 2(d) — CTH candidates by rank",
        ["rank", "frequency", "userPopularity", "oracle verdict", "first skeleton"],
        [
            (
                rank,
                row.frequency,
                row.user_popularity,
                "REAL" if row.oracle_real else "false",
                row.first_skeleton[:55],
            )
            for rank, row in enumerate(census, start=1)
        ],
    )

    assert census, "no CTH candidates detected"
    real = [row for row in census if row.oracle_real]
    false = [row for row in census if not row.oracle_real]
    # the paper found both kinds (28 real / 22 false of 50)
    assert real and false

    # score the oracle against the planted truth: instances that belong to
    # planted hunts must be classified like the generator intended
    truth = bench_workload.truth
    seq_real = {}
    for group in truth.groups_with_label("CTH-candidate"):
        for seq in group.seqs:
            seq_real[seq] = bool(group.cth_real)
    agree, total = 0, 0
    for instance in bench_result.antipatterns:
        if instance.label != "CTH-candidate":
            continue
        planted = [s for s in instance.record_seqs() if s in seq_real]
        if not planted:
            continue
        total += 1
        if seq_real[planted[0]] == bool(instance.details["oracle_real"]):
            agree += 1
    print(f"\noracle agreement with planted truth: {agree}/{total}")
    assert total > 0
    assert agree / total > 0.8
