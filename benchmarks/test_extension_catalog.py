"""E17 — Extension catalog census (the Section 5.4 recipe at scale).

The paper argues the framework accommodates further antipatterns via
definition → detection rule → optional solving rule.  This bench runs the
seven extended detectors of :mod:`repro.antipatterns.extended` over a
workload that includes a bad-practices application profile, scores
detection against the planted truth, and solves the three solvable ones
(Redundant-Distinct, Having-No-Aggregate and, with the catalog,
Implicit-Columns star expansion).
"""

from conftest import print_table

from repro.antipatterns import DetectionContext, default_detectors
from repro.antipatterns.extended import EXTENDED_LABELS, extended_detectors
from repro.patterns import build_blocks
from repro.pipeline import parse_log
from repro.rewrite.extended_rewrites import install_extended_rules
from repro.rewrite.solver import solve
from repro.workload import WorkloadConfig, generate, score_detection, skyserver_catalog
from repro.workload.profiles import BadPracticesApp, default_profiles


def test_extension_catalog(benchmark):
    workload = generate(
        WorkloadConfig(
            seed=314,
            scale=0.15,
            profiles=default_profiles() + [BadPracticesApp()],
            bursts={"bad-practices": 25},
        )
    )
    catalog = skyserver_catalog()
    context = DetectionContext(key_columns=frozenset(catalog.key_column_names()))

    def run():
        stage = parse_log(workload.log)
        blocks = build_blocks(stage.queries)
        instances = []
        for detector in extended_detectors():
            instances.extend(detector.detect(blocks, context))
        solved = solve(
            stage.parsed_log, instances, install_extended_rules(catalog)
        )
        return stage, instances, solved

    stage, instances, solved = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    scored_labels = (
        "Poor-Mans-Search",
        "Redundant-Distinct",
        "Having-No-Aggregate",
        "Cartesian-Product",
        "Random-Selection",
    )
    for label in sorted(EXTENDED_LABELS):
        detected = {
            seq
            for instance in instances
            if instance.label == label
            for seq in instance.record_seqs()
        }
        truth = workload.truth.seqs_with_label(label)
        precision, recall = score_detection(detected, truth)
        rows.append(
            (
                label,
                len(detected),
                len(truth),
                f"{precision:.2f}" if label in scored_labels else "—",
                f"{recall:.2f}" if label in scored_labels else "—",
            )
        )
    print_table(
        "Extension catalog — detection census",
        ["antipattern", "detected queries", "planted", "precision", "recall"],
        rows,
    )
    counts = solved.solved_counts()
    print_table(
        "Extension catalog — solved instances",
        ["antipattern", "solved"],
        sorted(counts.items()),
    )

    for label in scored_labels:
        detected = {
            seq
            for instance in instances
            if instance.label == label
            for seq in instance.record_seqs()
        }
        truth = workload.truth.seqs_with_label(label)
        assert truth, f"no planted {label}"
        _, recall = score_detection(detected, truth)
        assert recall == 1.0, f"{label} missed planted instances"

    assert counts.get("Redundant-Distinct", 0) > 0
    assert counts.get("Having-No-Aggregate", 0) > 0
    assert counts.get("Implicit-Columns", 0) > 0  # star expansion via catalog
