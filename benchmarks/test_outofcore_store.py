"""E24 — out-of-core store: bounded-memory cleaning with checkpoints.

A synthetic log (~500k queries at the full scale of 29; see
``REPRO_OUTOFCORE_BENCH_SCALE``) is written once to an on-disk columnar
store, then cleaned by three subprocess children so each run's peak RSS
is its own:

* **batch** — ``repro.clean(store, execution="batch")``: materialises
  the whole log in RAM, the reference for output bytes and ledger;
* **streaming** — ``repro.clean(store, execution="streaming")``: reads
  the store chunk by chunk, never holding the full input;
* **kill + resume** — a checkpointed streaming run SIGKILLed mid-flight
  (after ≥2 committed chunks, before completion), then resumed from the
  half-written checkpoint directory.

Acceptance bars: streaming output byte-identical to batch, equal
``comparable()`` ledgers, zero conservation violations in every child,
the resumed run byte-identical to the uninterrupted one, and — once the
log is big enough for RSS to mean anything (≥200k queries) — streaming
peak RSS at most 0.6× batch.  Results land in ``BENCH_outofcore.json``.

This file avoids the pytest-benchmark fixture so the CI smoke step can
run it with plain pytest at a reduced scale.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from conftest import print_table

from repro.store import store_size_bytes, write_columnar
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale; 29 ≈ 500k queries (the full run).
BENCH_SCALE = float(os.environ.get("REPRO_OUTOFCORE_BENCH_SCALE", "29"))
BENCH_SEED = int(os.environ.get("REPRO_OUTOFCORE_BENCH_SEED", "2018"))
OUTPUT_PATH = Path(__file__).parent / "BENCH_outofcore.json"
STORE_CHUNK_RECORDS = 8192

#: The RSS bar only means something once the input dwarfs the
#: interpreter's own footprint.
RSS_GATE_QUERIES = 200_000
RSS_RATIO_BAR = 0.6

#: Child program.  Cleans a columnar store and reports peak RSS plus the
#: executor-independent ledger as JSON on stdout; the clean log goes to
#: ``out`` as jsonl for byte comparison.  ``ckpt-slow`` sleeps after
#: each chunk so the parent can SIGKILL it between two checkpoint
#: commits; ``resume`` picks that run back up.
CHILD = """
import json, resource, sys, time
import repro
from repro.log import write_jsonl
from repro.store import ColumnarSource

store, out, mode, checkpoint_dir = sys.argv[1:5]


class SlowSource(ColumnarSource):
    def open_chunks(self, *, start_chunk=0):
        for chunk in super().open_chunks(start_chunk=start_chunk):
            yield chunk
            time.sleep(float(sys.argv[5]))


kwargs = {}
if mode == "batch":
    source = ColumnarSource(store)
    kwargs["execution"] = "batch"
elif mode == "streaming":
    source = ColumnarSource(store)
    kwargs["execution"] = "streaming"
elif mode == "ckpt-slow":
    source = SlowSource(store)
    kwargs["execution"] = "streaming"
    kwargs["checkpoint_dir"] = checkpoint_dir
elif mode == "resume":
    source = ColumnarSource(store)
    kwargs["execution"] = "streaming"
    kwargs["checkpoint_dir"] = checkpoint_dir
    kwargs["resume"] = True
else:
    raise SystemExit(f"unknown mode {mode!r}")

started = time.perf_counter()
result = repro.clean(source, **kwargs)
seconds = time.perf_counter() - started
write_jsonl(result.clean_log, out)

print(json.dumps({
    "mode": mode,
    "seconds": seconds,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "clean_records": len(result.clean_log),
    "comparable": result.metrics.comparable(),
    "conservation_violations": result.metrics.conservation_violations(),
    "quarantined": len(result.quarantine),
}))
"""

KILL_DEADLINE = 120.0


def run_child(store, out, mode, checkpoint_dir="", sleep="0", *, wait=True):
    proc = subprocess.Popen(
        [
            sys.executable, "-c", CHILD,
            str(store), str(out), mode, str(checkpoint_dir), sleep,
        ],
        stdout=subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(Path(__file__).resolve().parent.parent),
        text=True,
    )
    if not wait:
        return proc
    stdout, _ = proc.communicate(timeout=1800)
    assert proc.returncode == 0, f"{mode} child failed (rc={proc.returncode})"
    return json.loads(stdout.strip().splitlines()[-1])


def wait_for_partial_state(state_path, *, min_chunks=2):
    deadline = time.monotonic() + KILL_DEADLINE
    while time.monotonic() < deadline:
        if state_path.exists():
            try:
                state = json.loads(state_path.read_text(encoding="utf-8"))
            except ValueError:
                continue
            if state["complete"] or state["chunks_done"] >= min_chunks:
                return state
        time.sleep(0.02)
    raise AssertionError("checkpointed child never committed a chunk")


def test_outofcore_store(tmp_path):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    queries = len(log)

    store = tmp_path / "log.columnar"
    started = time.perf_counter()
    write_columnar(log, store, chunk_records=STORE_CHUNK_RECORDS)
    write_seconds = time.perf_counter() - started
    del workload, log  # the parent holds no copy while children run

    # ------------------------------------------------------------------
    # Batch (in-RAM reference) vs streaming (out-of-core), each in its
    # own process so ru_maxrss is per-run.
    batch_out = tmp_path / "batch.jsonl"
    stream_out = tmp_path / "stream.jsonl"
    batch = run_child(store, batch_out, "batch")
    streaming = run_child(store, stream_out, "streaming")

    identical = batch_out.read_bytes() == stream_out.read_bytes()
    ledgers_match = batch["comparable"] == streaming["comparable"]
    rss_ratio = streaming["ru_maxrss_kb"] / batch["ru_maxrss_kb"]

    # ------------------------------------------------------------------
    # Kill-and-resume: SIGKILL a checkpointed streaming run mid-flight,
    # resume it, and demand the uninterrupted bytes.
    checkpoint_dir = tmp_path / "ck"
    victim_out = tmp_path / "victim.jsonl"
    # Sleep long enough per chunk for the kill window, short enough to
    # commit several chunks quickly even at smoke scale.
    chunk_count = max(1, -(-queries // STORE_CHUNK_RECORDS))
    victim = run_child(
        store, victim_out, "ckpt-slow", checkpoint_dir, "0.2", wait=False
    )
    try:
        partial = wait_for_partial_state(
            checkpoint_dir / "state.json", min_chunks=min(2, chunk_count)
        )
        killed_mid_run = not partial["complete"]
        victim.kill()
    finally:
        victim.wait(timeout=60)
    assert victim.returncode == -signal.SIGKILL

    resumed_out = tmp_path / "resumed.jsonl"
    resumed = run_child(store, resumed_out, "resume", checkpoint_dir)
    resume_identical = resumed_out.read_bytes() == stream_out.read_bytes()

    report = {
        "queries": queries,
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "store": {
            "chunk_records": STORE_CHUNK_RECORDS,
            "chunks": chunk_count,
            "size_bytes": store_size_bytes(store),
            "write_seconds": write_seconds,
        },
        "runs": [batch, streaming, resumed],
        "streaming_identical_to_batch": identical,
        "ledgers_match": ledgers_match,
        "rss_ratio_streaming_vs_batch": rss_ratio,
        "rss_gate_queries": RSS_GATE_QUERIES,
        "kill_resume": {
            "chunks_done_at_kill": partial["chunks_done"],
            "killed_mid_run": killed_mid_run,
            "resume_identical_to_uninterrupted": resume_identical,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print_table(
        f"Out-of-core store — {queries:,} queries, "
        f"{report['store']['size_bytes'] / 1e6:.1f} MB on disk, "
        f"{chunk_count} chunks",
        ["run", "seconds", "peak RSS (MB)", "clean records", "violations"],
        [
            (
                run["mode"],
                f"{run['seconds']:.2f}",
                f"{run['ru_maxrss_kb'] / 1024:.0f}",
                f"{run['clean_records']:,}",
                len(run["conservation_violations"]),
            )
            for run in report["runs"]
        ],
    )
    print_table(
        "Contracts",
        ["check", "result"],
        [
            ("streaming bytes == batch bytes", "yes" if identical else "NO"),
            ("comparable ledgers equal", "yes" if ledgers_match else "NO"),
            ("streaming/batch RSS", f"{rss_ratio:.2f}x"),
            ("killed mid-run", "yes" if killed_mid_run else "no (outran kill)"),
            (
                "resume bytes == uninterrupted",
                "yes" if resume_identical else "NO",
            ),
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.
    assert identical, "streaming output diverged from in-RAM batch"
    assert ledgers_match, "comparable ledgers diverged"
    for run in report["runs"]:
        assert run["conservation_violations"] == [], run
    assert resume_identical, "resumed run diverged from uninterrupted run"
    assert resumed["comparable"] == streaming["comparable"]
    if queries >= RSS_GATE_QUERIES:
        assert rss_ratio <= RSS_RATIO_BAR, (
            f"streaming peak RSS {streaming['ru_maxrss_kb']} kB is "
            f"{rss_ratio:.2f}x batch's {batch['ru_maxrss_kb']} kB "
            f"(bar: {RSS_RATIO_BAR}x)"
        )
