"""E6 — Fig. 2(a): top-30 pattern frequencies before vs after cleaning.

Paper: before cleaning, 9 of the top-30 (6 of the top-15) patterns are
antipatterns; after cleaning, none are — the rank-frequency curve keeps
its shape but the antipattern marks disappear.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline

ANTIPATTERNS_PROPER = {"DW-Stifle", "DS-Stifle", "DF-Stifle", "CTH-candidate", "SNC"}


def _series(registry, top):
    rows = []
    for rank, stats in enumerate(registry.top(top), start=1):
        flagged = bool(stats.antipattern_types & ANTIPATTERNS_PROPER)
        rows.append((rank, stats.frequency, flagged))
    return rows


def test_fig2a_before_and_after_cleaning(benchmark, bench_result, bench_config):
    second = benchmark.pedantic(
        lambda: CleaningPipeline(bench_config).run(bench_result.clean_log),
        rounds=1,
        iterations=1,
    )

    before = _series(bench_result.registry, 30)
    after = _series(second.registry, 30)

    print_table(
        "Fig. 2(a) — rank vs frequency, before cleaning",
        ["rank", "frequency", "antipattern?"],
        [(r, f"{f:,}", "YES" if a else "") for r, f, a in before],
    )
    print_table(
        "Fig. 2(a) — rank vs frequency, after cleaning",
        ["rank", "frequency", "antipattern?"],
        [(r, f"{f:,}", "YES" if a else "") for r, f, a in after],
    )

    flagged_before_top15 = sum(1 for _, _, a in before[:15] if a)
    flagged_after_top15 = sum(1 for _, _, a in after[:15] if a)
    # paper: 6 antipatterns in the top 15 before cleaning
    assert flagged_before_top15 >= 2
    # after cleaning, (nearly) no top pattern is an antipattern; small
    # second-order stifles can remain (Section 5.5's residual)
    assert flagged_after_top15 < flagged_before_top15
    # frequencies are rank-sorted (sanity of the curve)
    frequencies = [f for _, f, _ in before]
    assert frequencies == sorted(frequencies, reverse=True)
