"""E12 — Fig. 4: cluster-size distributions at threshold 0.9.

Paper: (a, b) size-vs-rank curves — raw has a long tail of small
clusters absent from the removal log; every removal cluster also exists
in the raw/cleaned logs.  (c) the top-20 DS-clusters of the cleaned log
are roughly half the size of their raw counterparts (two statements
merged into one).
"""

from conftest import print_table

from repro.analysis import ds_cluster_sizes, run_downstream_experiment

THRESHOLD = 0.9


def test_fig4_cluster_size_distributions(benchmark, bench_workload, bench_config):
    report = benchmark.pedantic(
        lambda: run_downstream_experiment(
            bench_workload.log, thresholds=(THRESHOLD,), config=bench_config
        ),
        rounds=1,
        iterations=1,
    )

    sizes = {
        variant: report.result(variant, THRESHOLD).sizes_ranked()
        for variant in ("raw", "clean", "removal")
    }
    top = 15
    print_table(
        "Fig. 4(a, b) — cluster size vs rank (top 15)",
        ["rank", "raw", "clean", "removal"],
        [
            (
                rank + 1,
                sizes["raw"][rank] if rank < len(sizes["raw"]) else "",
                sizes["clean"][rank] if rank < len(sizes["clean"]) else "",
                sizes["removal"][rank] if rank < len(sizes["removal"]) else "",
            )
            for rank in range(top)
        ],
    )
    print(
        "\ncluster counts: raw {}, clean {}, removal {}".format(
            len(sizes["raw"]), len(sizes["clean"]), len(sizes["removal"])
        )
    )

    # the raw curve has the longest tail (most clusters)
    assert len(sizes["raw"]) > len(sizes["clean"]) >= 1
    assert len(sizes["raw"]) > len(sizes["removal"]) >= 1
    # ...dominated by small clusters (its median is small)
    raw_median = sizes["raw"][len(sizes["raw"]) // 2]
    assert raw_median <= 3

    ds_pairs = ds_cluster_sizes(report, threshold=THRESHOLD, top=20)
    print_table(
        "Fig. 4(c) — DS-cluster sizes, cleaned vs raw (top 20)",
        ["rank", "cleaned log", "raw log"],
        [
            (rank + 1, clean, raw if raw is not None else "")
            for rank, (clean, raw) in enumerate(ds_pairs)
        ],
    )
    clean_sizes = [c for c, _ in ds_pairs if c > 0]
    raw_sizes = [r for _, r in ds_pairs if r is not None]
    assert clean_sizes and raw_sizes
    mean_clean = sum(clean_sizes) / len(clean_sizes)
    mean_raw = sum(raw_sizes) / len(raw_sizes)
    # paper: raw DS-clusters are about twice as big
    assert mean_raw > mean_clean * 1.2
