"""E7 — Fig. 2(b): pattern frequency vs user popularity.

Paper: a scatter with a striking population of *frequent patterns with
low user popularity* (23 of the top-40 patterns come from a single user)
— the machine-download signature motivating SWS handling.
"""

from conftest import print_table


def test_fig2b_frequency_vs_popularity(benchmark, bench_result):
    scatter = benchmark.pedantic(
        lambda: [
            (stats.frequency, stats.user_popularity)
            for stats in bench_result.registry.ranked()
        ],
        rounds=1,
        iterations=1,
    )

    top40 = bench_result.registry.top(40)
    print_table(
        "Fig. 2(b) — top-40 patterns: frequency vs userPopularity",
        ["rank", "frequency", "userPopularity"],
        [
            (rank, f"{stats.frequency:,}", stats.user_popularity)
            for rank, stats in enumerate(top40, start=1)
        ],
    )

    single_user_top40 = sum(1 for s in top40 if s.user_popularity == 1)
    # paper: 23 of the top 40 come from one user — i.e. a large share
    assert single_user_top40 >= len(top40) * 0.25
    # both low- and higher-popularity patterns exist in the full scatter
    popularities = {pop for _, pop in scatter}
    assert 1 in popularities
    assert any(pop >= 4 for pop in popularities)
    # frequency spans orders of magnitude (log-scale axis in the paper)
    frequencies = [freq for freq, _ in scatter]
    assert max(frequencies) / max(min(frequencies), 1) > 50
