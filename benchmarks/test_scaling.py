"""E20 — scaling: pipeline cost vs log size.

The paper processes 42M queries; whatever we reproduce must scale
sanely.  This bench runs the full pipeline (batch) and the streaming
cleaner on logs of increasing scale and checks

* batch and streaming produce identical clean logs,
* runtime grows roughly linearly with log size (no quadratic blow-up:
  the miner, detectors and solver are all block-local),
* streaming memory (peak open queries) stays far below the log size.
"""

import time

from conftest import print_table

from repro.pipeline import CleaningPipeline, StreamingCleaner
from repro.workload import WorkloadConfig, generate

SCALES = (0.1, 0.2, 0.4)


def test_scaling(benchmark, bench_config):
    def run_all():
        rows = []
        for scale in SCALES:
            workload = generate(WorkloadConfig(seed=606, scale=scale))
            started = time.perf_counter()
            batch = CleaningPipeline(bench_config).run(workload.log)
            batch_seconds = time.perf_counter() - started
            started = time.perf_counter()
            cleaner = StreamingCleaner(bench_config)
            streamed = cleaner.run(workload.log)
            stats = cleaner.stats
            stream_seconds = time.perf_counter() - started
            rows.append(
                {
                    "scale": scale,
                    "queries": len(workload.log),
                    "batch_seconds": batch_seconds,
                    "stream_seconds": stream_seconds,
                    "peak_open": stats.max_open_queries,
                    "identical": streamed.statements()
                    == batch.clean_log.statements(),
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Scaling — batch vs streaming",
        ["scale", "queries", "batch (s)", "stream (s)", "peak open", "identical"],
        [
            (
                row["scale"],
                f"{row['queries']:,}",
                f"{row['batch_seconds']:.2f}",
                f"{row['stream_seconds']:.2f}",
                row["peak_open"],
                "yes" if row["identical"] else "NO",
            )
            for row in rows
        ],
    )

    assert all(row["identical"] for row in rows)
    # size grows ~linearly with scale
    assert rows[-1]["queries"] > rows[0]["queries"] * 2.5
    # runtime stays sub-quadratic: 4x the data < ~8x the time
    size_ratio = rows[-1]["queries"] / rows[0]["queries"]
    time_ratio = rows[-1]["batch_seconds"] / max(rows[0]["batch_seconds"], 1e-9)
    assert time_ratio < size_ratio * 2.5
    # streaming memory is bounded well below the log size
    assert all(row["peak_open"] < row["queries"] * 0.5 for row in rows)
