"""E26 — Parse engine v2: lazy-bound templates.

Measures the warm parse stage with the lazy fast path against the
eager PR 4 path (warm :class:`~repro.skeleton.cache.TemplateCache`
with ``lazy=False``) on the seed-2018 synthetic workload.  Both caches
are fully warmed by a first pass, then timed on a second pass over the
same records — the steady-state cost the paper's 42M-query scale is
dominated by.  The lazy pass must additionally materialise *nothing*:
the parse stage only ever touches skeleton facts.

It then re-cleans the log end to end on every executor with
``lazy_parse`` on against an eager batch reference, asserting
byte-identical clean logs, equal comparable ledgers and zero
conservation violations — the lazy path must be invisible in every
output.  Results land in ``BENCH_parse_v2.json`` next to this file.

Acceptance bars asserted here: warm lazy parse ≥3× the warm eager
parse at full scale (``REPRO_PARSEV2_BENCH_SCALE`` ≥ 5.8 ≈ 100k
queries; the bar relaxes to ≥1.3× below, where fixed overheads
dominate), zero materialisations during the lazy parse pass, and the
executor matrix contracts above.  This file deliberately avoids the
pytest-benchmark fixture so the CI benchmark-smoke step can run it
with plain pytest.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_table

import repro
from repro.obs import Recorder
from repro.pipeline import ExecutionConfig
from repro.pipeline.framework import parse_log
from repro.skeleton.cache import TemplateCache
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale; 5.8 ≈ the 100k-query full scale.
BENCH_SCALE = float(os.environ.get("REPRO_PARSEV2_BENCH_SCALE", "5.8"))
BENCH_SEED = int(os.environ.get("REPRO_PARSEV2_BENCH_SEED", "2018"))
FULL_SCALE = 5.8
OUTPUT_PATH = Path(__file__).parent / "BENCH_parse_v2.json"

#: The executor matrix for the lazy-vs-eager differential.
EXECUTIONS = (
    ("batch", "batch"),
    ("streaming", "streaming"),
    ("parallel-1", ExecutionConfig(mode="parallel", workers=1, chunk_size=2048)),
    ("parallel-2", ExecutionConfig(mode="parallel", workers=2, chunk_size=2048)),
    ("parallel-4", ExecutionConfig(mode="parallel", workers=4, chunk_size=2048)),
)


def _timed_parse(records, cache):
    started = time.perf_counter()
    result = parse_log(records, cache=cache)
    return result, time.perf_counter() - started


def test_parse_v2(bench_config):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    records = log.records()
    shared_config = replace(bench_config, sws=None)

    # ------------------------------------------------------------------
    # Warm-parse microbenchmark: eager PR 4 path vs lazy skeleton binds.
    parse_log(records[:200])  # warm imports before timing

    eager_cache = TemplateCache(lazy=False)
    parse_log(records, cache=eager_cache)  # warm-up pass
    eager_result, eager_seconds = _timed_parse(records, eager_cache)

    lazy_cache = TemplateCache(lazy=True)
    parse_log(records, cache=lazy_cache)  # warm-up pass
    base_materialised = lazy_cache.materialised
    lazy_result, lazy_seconds = _timed_parse(records, lazy_cache)
    parse_pass_materialised = lazy_cache.materialised - base_materialised

    # The parse stage itself must never force a splice...
    assert parse_pass_materialised == 0, parse_pass_materialised
    # ...and once forced (the equality check below walks every field),
    # the lazy queries must be indistinguishable from the eager ones.
    assert lazy_result.queries == eager_result.queries
    assert lazy_result.non_select == eager_result.non_select

    report = {
        "queries": len(records),
        "scale": BENCH_SCALE,
        "full_scale": FULL_SCALE,
        "seed": BENCH_SEED,
        "warm_parse": {
            "eager_seconds": eager_seconds,
            "lazy_seconds": lazy_seconds,
            "eager_throughput": len(records) / eager_seconds,
            "lazy_throughput": len(records) / lazy_seconds,
            "lazy_speedup": eager_seconds / lazy_seconds,
            "materialised_during_parse": parse_pass_materialised,
        },
    }

    # ------------------------------------------------------------------
    # End-to-end differential: lazy executors vs an eager batch
    # reference — identical clean logs, equal comparable ledgers.
    reference = repro.clean(log, shared_config, lazy_parse=False)
    assert reference.metrics.conservation_violations() == []
    reference_records = reference.clean_log.records()
    reference_view = reference.metrics.comparable()
    assert (
        reference.metrics.stages["parse"].counters["parse_lazy_hits"] == 0
    )

    runs = []
    for name, execution in EXECUTIONS:
        recorder = Recorder()
        started = time.perf_counter()
        result = repro.clean(
            log, shared_config, execution=execution, recorder=recorder
        )
        seconds = time.perf_counter() - started
        counters = result.metrics.stages["parse"].counters
        runs.append(
            {
                "mode": name,
                "seconds": seconds,
                "parse_seconds": result.metrics.stages["parse"].wall_seconds,
                "lazy_hits": counters["parse_lazy_hits"],
                "eager": counters["parse_eager"],
                "materialised": counters["parse_materialised"],
                "records_out": counters["records_out"],
                "identical_to_reference": result.clean_log.records()
                == reference_records,
                "metrics_match_reference": result.metrics.comparable()
                == reference_view,
                "conservation_violations": result.metrics.conservation_violations(),
            }
        )
    report["clean_runs"] = runs

    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    stage = report["warm_parse"]
    print_table(
        f"Parse engine v2, warm parse — {report['queries']:,} queries "
        f"(scale {BENCH_SCALE})",
        ["configuration", "seconds", "stmts/s", "speedup"],
        [
            (
                "eager (PR 4 path)",
                f"{stage['eager_seconds']:.2f}",
                f"{stage['eager_throughput']:,.0f}",
                "1.00x",
            ),
            (
                "lazy skeleton bind",
                f"{stage['lazy_seconds']:.2f}",
                f"{stage['lazy_throughput']:,.0f}",
                f"{stage['lazy_speedup']:.2f}x",
            ),
        ],
    )
    print_table(
        "End-to-end, lazy_parse on vs eager batch reference",
        ["mode", "seconds", "lazy", "materialised", "identical", "metrics"],
        [
            (
                run["mode"],
                f"{run['seconds']:.2f}",
                f"{run['lazy_hits']:,}",
                f"{run['materialised']:,}",
                "yes" if run["identical_to_reference"] else "NO",
                "match" if run["metrics_match_reference"] else "DIVERGED",
            )
            for run in runs
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.
    bar = 3.0 if BENCH_SCALE >= FULL_SCALE else 1.3
    assert stage["lazy_speedup"] >= bar, (
        f"warm lazy parse only {stage['lazy_speedup']:.2f}x over the "
        f"eager path at scale {BENCH_SCALE} (bar {bar}x; eager "
        f"{eager_seconds:.2f}s, lazy {lazy_seconds:.2f}s)"
    )
    assert all(run["identical_to_reference"] for run in runs)
    assert all(run["metrics_match_reference"] for run in runs)
    assert all(run["conservation_violations"] == [] for run in runs)
    for run in runs:
        assert run["lazy_hits"] + run["eager"] == run["records_out"], run
        assert run["lazy_hits"] > 0, run
        assert run["materialised"] <= run["lazy_hits"], run
