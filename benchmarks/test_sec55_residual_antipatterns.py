"""E13 — Section 5.5: residual solvable antipatterns after one pass.

Paper: after the first cleaning, the solvable antipatterns left in the
log amount to 0.09 % — negligible, so one pass suffices.

On the synthetic log the share is higher (the DS rewrites of one bot
legitimately chain into second-order DW-Stifles), but the shape holds:
each pass shrinks the solvable share drastically and the process
converges within a few passes.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline


def solvable_share(result):
    queries = sum(len(a.queries) for a in result.antipatterns if a.solvable)
    return queries / max(len(result.parse_stage.parsed_log), 1)


def test_sec55_residual_antipatterns(benchmark, bench_result, bench_config):
    def run_passes():
        shares = [solvable_share(bench_result)]
        current = bench_result
        for _ in range(3):
            current = CleaningPipeline(bench_config).run(current.clean_log)
            shares.append(solvable_share(current))
        return shares

    shares = benchmark.pedantic(run_passes, rounds=1, iterations=1)

    print_table(
        "Section 5.5 — solvable-antipattern share per cleaning pass",
        ["pass", "solvable share", "paper"],
        [
            (index, f"{share:.2%}", "0.09 % after pass 1" if index == 1 else "")
            for index, share in enumerate(shares)
        ],
    )

    # each pass shrinks the share, and the process converges to ~0
    assert shares[1] < shares[0] / 2
    assert shares[-1] < 0.01
    assert all(
        shares[i + 1] <= shares[i] + 1e-9 for i in range(len(shares) - 1)
    )
