"""E27 — Parse engine v3: cold-path scanner + persistent template dictionary.

Two axes, matching the two halves of the v3 engine:

**Cold parse.**  A workload of *distinct-template* statements (every
statement is the first sight of its fingerprint key, so every record
takes the full cold path) is cleaned through the v3 one-shot
``TemplateCache.build`` flow and through the v2 baseline flow — the
per-character lexer, the master-regex fingerprint and the
parse-then-re-derive entry build, all exec'd **frozen out of git
history** (rev ``90f9fda``, the last pre-v3 commit) so the baseline
cannot drift along with the code under test.  Both flows must produce
equal ``ParsedQuery`` streams.

**Warm start.**  The seed-2018 workload is cleaned twice with
``--template-dict``: the first run saves its interned template
dictionary, the second preloads it.  Every witness must re-verify and
intern on load (the preload hit rate), and each preloaded witness must
avoid exactly one cold parse.  The five executor configurations then
re-clean the log dict-warmed against an eager batch reference,
asserting byte-identical clean logs, equal comparable ledgers and zero
conservation violations — the dictionary may only ever change speed.

Acceptance bars asserted here: cold parse ≥2× the v2 baseline at full
scale (``REPRO_PARSEV3_BENCH_SCALE`` ≥ 5.8 ≈ 100k queries; the bar
relaxes to ≥1.5× below), zero cold-parse mismatches, a ≥90% L2 preload
hit rate on the dict-warmed re-run, and the executor matrix contracts
above.  Results land in ``BENCH_parse_v3.json`` next to this file.
This file deliberately avoids the pytest-benchmark fixture so the CI
benchmark-smoke step can run it with plain pytest.
"""

import gc
import json
import os
import subprocess
import sys
import time
import types
from dataclasses import replace
from pathlib import Path

import pytest
from conftest import print_table

import repro
from repro.log import LogRecord
from repro.obs import Recorder
from repro.patterns.models import ParsedQuery
from repro.pipeline import ExecutionConfig
from repro.skeleton.cache import TemplateCache
from repro.sqlparser.parser import Parser
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale; 5.8 ≈ the 100k-query full scale.
BENCH_SCALE = float(os.environ.get("REPRO_PARSEV3_BENCH_SCALE", "5.8"))
BENCH_SEED = int(os.environ.get("REPRO_PARSEV3_BENCH_SEED", "2018"))
FULL_SCALE = 5.8
OUTPUT_PATH = Path(__file__).parent / "BENCH_parse_v3.json"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: The last commit whose lexer.py/cache.py still carry the pre-v3 flow.
LEGACY_REV = "90f9fda"

#: Distinct-template statement families: the ``{i}`` identifiers make
#: every statement a fresh fingerprint key, so none can ride the L2 or
#: raw-template fast paths — each one pays the whole cold path.
SHAPES = (
    "SELECT objid, ra_{i}, dec FROM photoprimary_{i} "
    "WHERE ra BETWEEN {a} AND {b} AND dec > {c}",
    "SELECT TOP 10 p.objid_{i}, s.z FROM photoobj AS p "
    "JOIN specobj_{i} AS s ON p.objid = s.bestobjid "
    "WHERE s.z < {a} AND p.r < {b} ORDER BY s.z DESC",
    "SELECT count(*) FROM star_{i} WHERE htmid_{i} = {a} AND name = '{n}'",
    "SELECT u, g, r_{i}, i FROM galaxy_{i} "
    "WHERE dbo.fgetnearbyobjeq({a}, {b}, {c}) > 0 AND flags = {d} "
    "GROUP BY u, g, r_{i}, i HAVING count(*) > {e}",
)

#: The executor matrix for the dict-warmed differential.
EXECUTIONS = ("batch", "streaming", "parallel-1", "parallel-2", "parallel-4")


def _git_show(path):
    return subprocess.run(
        ["git", "show", f"{LEGACY_REV}:{path}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


def _load_legacy():
    """The frozen pre-v3 lexer + cache modules, exec'd from git history.

    Returns ``(Lexer, TemplateCache)`` of rev ``90f9fda``; relative
    imports are rewritten onto the installed package (whose shared
    helpers — parser, template, features — are unchanged by v3, so the
    frozen flow measures exactly the legacy-only work).
    """
    try:
        lexer_source = _git_show("src/repro/sqlparser/lexer.py")
        cache_source = _git_show("src/repro/skeleton/cache.py")
    except (OSError, subprocess.CalledProcessError):
        pytest.skip(
            f"git history for {LEGACY_REV} unavailable (shallow clone?); "
            "cannot build the frozen v2 baseline"
        )
    lexer_source = lexer_source.replace(
        "from .errors import", "from repro.sqlparser.errors import"
    ).replace("from .tokens import", "from repro.sqlparser.tokens import")
    lexer_module = types.ModuleType("legacy_sqlparser_lexer")
    exec(
        compile(lexer_source, "legacy_lexer.py", "exec"), lexer_module.__dict__
    )
    sys.modules["legacy_sqlparser_lexer"] = lexer_module

    cache_source = (
        cache_source.replace(
            "from ..log.models import", "from repro.log.models import"
        )
        .replace(
            "from ..patterns.models import", "from repro.patterns.models import"
        )
        .replace(
            "from ..sqlparser import ast_nodes as ast",
            "from repro.sqlparser import ast_nodes as ast",
        )
        .replace(
            "from ..sqlparser.errors import", "from repro.sqlparser.errors import"
        )
        .replace(
            "from ..sqlparser.lexer import", "from legacy_sqlparser_lexer import"
        )
        .replace("from .features import", "from repro.skeleton.features import")
        .replace(
            "from .fingerprint import", "from repro.skeleton.fingerprint import"
        )
        .replace("from .template import", "from repro.skeleton.template import")
    )
    namespace = {"__name__": "legacy_cache"}
    exec(compile(cache_source, "legacy_cache.py", "exec"), namespace)
    return lexer_module.Lexer, namespace["TemplateCache"]


def _cold_records(count):
    records = []
    for i in range(count):
        sql = SHAPES[i % len(SHAPES)].format(
            i=i, a=i, b=i + 1, c=i % 90, d=i * 7, n=f"n{i}", e=i % 5
        )
        records.append(LogRecord(seq=i, sql=sql, timestamp=float(i)))
    return records


def _run_legacy(records, LegacyLexer, LegacyCache):
    """The v2 cold flow: fetch miss → lex → parse → derive → store.

    Timed with the cyclic GC off (everything built here is an acyclic
    tree): generational collections scale with how many objects the
    *process* holds alive, so whichever flow runs later in the session
    would otherwise pay collection passes over the earlier flow's
    outputs — noise, not parse cost.
    """
    cache = LegacyCache(max_entries=1 << 20)
    out = []
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for record in records:
            got = cache.fetch(record)
            if got is None:
                tokens = LegacyLexer(record.sql).tokenize()
                statement = Parser(tokens).parse_statement()
                got = ParsedQuery.from_statement(record, statement)
                cache.store(record.sql, got)
            out.append(got)
        return time.perf_counter() - started, out
    finally:
        gc.enable()


def _run_v3(records):
    """The v3 cold flow: fetch miss → one-shot build."""
    cache = TemplateCache(max_entries=1 << 20)
    out = []
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        for record in records:
            got = cache.fetch(record)
            if got is None:
                got = cache.build(record)
            out.append(got)
        return time.perf_counter() - started, out
    finally:
        gc.enable()


def _execution(name, dict_path):
    mode, _, workers = name.partition("-")
    if workers:
        return ExecutionConfig(
            mode=mode,
            workers=int(workers),
            chunk_size=2048,
            template_dict=str(dict_path),
        )
    return ExecutionConfig(mode=mode, template_dict=str(dict_path))


def test_parse_v3(bench_config, tmp_path):
    shared_config = replace(bench_config, sws=None)

    # ------------------------------------------------------------------
    # Cold-parse microbenchmark: frozen v2 flow vs the one-shot build.
    LegacyLexer, LegacyCache = _load_legacy()
    records = _cold_records(max(500, int(17200 * BENCH_SCALE)))
    # Best-of-two interleaved rounds: allocator and interpreter state
    # drift over a long process, and round one doubles as the warm-up.
    legacy_seconds, legacy_out = _run_legacy(records, LegacyLexer, LegacyCache)
    v3_seconds, v3_out = _run_v3(records)
    del legacy_out, v3_out
    retry_legacy, legacy_out = _run_legacy(records, LegacyLexer, LegacyCache)
    retry_v3, v3_out = _run_v3(records)
    legacy_seconds = min(legacy_seconds, retry_legacy)
    v3_seconds = min(v3_seconds, retry_v3)
    mismatches = sum(1 for a, b in zip(legacy_out, v3_out) if a != b)

    report = {
        "scale": BENCH_SCALE,
        "full_scale": FULL_SCALE,
        "seed": BENCH_SEED,
        "legacy_rev": LEGACY_REV,
        "cold_parse": {
            "distinct_templates": len(records),
            "legacy_seconds": legacy_seconds,
            "v3_seconds": v3_seconds,
            "legacy_throughput": len(records) / legacy_seconds,
            "v3_throughput": len(records) / v3_seconds,
            "speedup": legacy_seconds / v3_seconds,
            "mismatches": mismatches,
        },
    }

    # ------------------------------------------------------------------
    # Warm start: save the template dictionary, then preload it.
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    dict_path = tmp_path / "templates.dict"

    first = repro.clean(log, shared_config, template_dict=dict_path)
    cold_first = first.metrics.stages["parse"].counters["parse_cold"]
    witnesses = TemplateCache.load_dict(dict_path)
    assert witnesses, "first run saved no template dictionary"

    second = repro.clean(log, shared_config, template_dict=dict_path)
    warm = second.metrics.stages["parse"].counters
    preloaded = warm["parse_dict_preloaded"]
    cold_second = warm["parse_cold"]
    preload_hit_rate = preloaded / len(witnesses)

    report["template_dict"] = {
        "witnesses": len(witnesses),
        "preloaded": preloaded,
        "preload_hit_rate": preload_hit_rate,
        "cold_first_run": cold_first,
        "cold_second_run": cold_second,
        "identical_to_first": second.clean_log.records()
        == first.clean_log.records(),
    }

    # ------------------------------------------------------------------
    # Executor matrix, dict-warmed, vs an eager batch reference without
    # any dictionary — the sidecar must be invisible in every output.
    reference = repro.clean(log, shared_config, lazy_parse=False)
    assert reference.metrics.conservation_violations() == []
    reference_records = reference.clean_log.records()
    reference_view = reference.metrics.comparable()

    runs = []
    for name in EXECUTIONS:
        recorder = Recorder()
        started = time.perf_counter()
        result = repro.clean(
            log,
            shared_config,
            execution=_execution(name, dict_path),
            recorder=recorder,
        )
        seconds = time.perf_counter() - started
        counters = result.metrics.stages["parse"].counters
        runs.append(
            {
                "mode": name,
                "seconds": seconds,
                "parse_seconds": result.metrics.stages["parse"].wall_seconds,
                "dict_preloaded": counters["parse_dict_preloaded"],
                "cold": counters["parse_cold"],
                "identical_to_reference": result.clean_log.records()
                == reference_records,
                "metrics_match_reference": result.metrics.comparable()
                == reference_view,
                "conservation_violations": result.metrics.conservation_violations(),
            }
        )
    report["clean_runs"] = runs

    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    cold = report["cold_parse"]
    print_table(
        f"Parse engine v3, cold parse — {cold['distinct_templates']:,} "
        f"distinct templates (scale {BENCH_SCALE})",
        ["configuration", "seconds", "stmts/s", "speedup"],
        [
            (
                "v2 baseline (frozen 90f9fda)",
                f"{cold['legacy_seconds']:.2f}",
                f"{cold['legacy_throughput']:,.0f}",
                "1.00x",
            ),
            (
                "v3 one-shot build",
                f"{cold['v3_seconds']:.2f}",
                f"{cold['v3_throughput']:,.0f}",
                f"{cold['speedup']:.2f}x",
            ),
        ],
    )
    print_table(
        "End-to-end, dict-warmed executors vs eager batch reference",
        ["mode", "seconds", "preloaded", "cold", "identical", "metrics"],
        [
            (
                run["mode"],
                f"{run['seconds']:.2f}",
                f"{run['dict_preloaded']:,}",
                f"{run['cold']:,}",
                "yes" if run["identical_to_reference"] else "NO",
                "match" if run["metrics_match_reference"] else "DIVERGED",
            )
            for run in runs
        ],
    )

    # ------------------------------------------------------------------
    # Acceptance bars.
    assert mismatches == 0, f"{mismatches} cold-parse output mismatches"
    bar = 2.0 if BENCH_SCALE >= FULL_SCALE else 1.5
    assert cold["speedup"] >= bar, (
        f"cold parse only {cold['speedup']:.2f}x over the v2 baseline at "
        f"scale {BENCH_SCALE} (bar {bar}x; legacy {legacy_seconds:.2f}s, "
        f"v3 {v3_seconds:.2f}s)"
    )
    assert preload_hit_rate >= 0.9, (
        f"only {preloaded}/{len(witnesses)} dictionary witnesses "
        f"preloaded ({preload_hit_rate:.0%}; bar 90%)"
    )
    # Every preloaded witness avoids exactly one cold parse, and the
    # warmed run's output is unchanged.
    assert cold_second == cold_first - preloaded
    assert report["template_dict"]["identical_to_first"]
    assert all(run["identical_to_reference"] for run in runs)
    assert all(run["metrics_match_reference"] for run in runs)
    assert all(run["conservation_violations"] == [] for run in runs)
    assert all(run["dict_preloaded"] > 0 for run in runs)
