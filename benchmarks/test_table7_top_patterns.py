"""E4 — Table 7: the most popular patterns after cleaning.

Paper (top 5, post-clean): all five are spatial searches
(fGetNearbyObjEq joins, fGetObjFromRect + magnitude band, HTM-range
counts), with coverage 8.7 %, 8.0 %, 5.7 %, 5.4 %, 1.8 % — and almost all
come from a single IP.

Shape to reproduce: after cleaning, the top patterns are spatial searches
(no Stifle shapes), and they are meaningful domain queries.
"""

from conftest import print_table

from repro.pipeline import CleaningPipeline


def test_table7_top_patterns_after_cleaning(benchmark, bench_result, bench_config):
    # Re-mine the *clean* log, exactly as a downstream analyst would.
    second = benchmark.pedantic(
        lambda: CleaningPipeline(bench_config).run(bench_result.clean_log),
        rounds=1,
        iterations=1,
    )
    log_size = len(second.parse_stage.parsed_log)
    top = second.registry.top(5, antipatterns=False)

    print_table(
        "Table 7 — most popular patterns (clean log)",
        ["#", "frequency", "coverage %", "skeleton", "distinct IPs"],
        [
            (
                rank,
                f"{stats.frequency:,}",
                f"{100.0 * stats.coverage(log_size):.2f}",
                stats.skeletons[0][:70],
                stats.distinct_ips,
            )
            for rank, stats in enumerate(top, start=1)
        ],
    )

    assert len(top) == 5
    spatial_markers = ("fgetnearbyobjeq", "fgetobjfromrect", "htmid")
    spatial = [
        stats
        for stats in top
        if any(marker in stats.skeletons[0].lower() for marker in spatial_markers)
    ]
    # spatial searches dominate the post-clean ranking (paper: 5 of 5)
    assert len(spatial) >= 3
    # none of the top patterns is a stifle-shaped objid lookup
    assert not any("objid = <num>" in s.skeletons[0] for s in top)
    # the top pattern covers a significant share of the log (paper: 8.7 %)
    assert top[0].coverage(log_size) > 0.03
