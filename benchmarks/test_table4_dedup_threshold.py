"""E1 — Table 4: duplicate-threshold sweep.

Paper (SkyServer sample of ~5.7M queries):

    threshold       log size    % of original
    original        5,748,440   100
    1 sec           5,515,737   95.95
    2 sec           5,515,737   95.95
    5 sec           5,512,468   95.89
    10 sec          5,507,233   95.80
    non restricted  5,484,746   95.41

Shape to reproduce: almost all duplicates are caught at 1 s; widening the
threshold to infinity removes only a few percent more.  (Our synthetic
mixture re-issues some byte-identical browse queries with long gaps —
the web-UI profile — so the unrestricted tail is a little larger than
the paper's 0.5 %, which is exactly the paper's argument for a finite
threshold: those repeats are intentional, not reload errors.)
"""

import math

from conftest import print_table

from repro.log.dedup import threshold_sweep

THRESHOLDS = (1.0, 2.0, 5.0, 10.0, math.inf)


def test_table4_dedup_threshold_sweep(benchmark, bench_workload):
    log = bench_workload.log

    rows = benchmark.pedantic(
        lambda: threshold_sweep(log, THRESHOLDS), rounds=1, iterations=1
    )

    print_table(
        "Table 4 — deleting duplicates vs threshold",
        ["threshold", "log size", "% of original size"],
        [(label, f"{size:,}", f"{pct:.2f}") for label, size, pct in rows],
    )

    sizes = {label: size for label, size, _ in rows}
    original = sizes["original"]
    one_second = sizes["1 sec"]
    unrestricted = sizes["non restricted"]
    assert one_second < original
    assert unrestricted <= one_second
    # going from 1 s to infinity only removes a small extra share
    extra_share = (one_second - unrestricted) / original
    assert extra_share < 0.05
    # the 1 s threshold removes at least every planted reload
    planted = len(bench_workload.truth.duplicate_seqs())
    assert original - one_second >= planted
    # monotone: larger thresholds keep fewer records
    ordered = [sizes[label] for label, _, _ in [r for r in rows][1:]]
    assert ordered == sorted(ordered, reverse=True)
