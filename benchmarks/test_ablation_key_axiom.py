"""E15 — Ablation: Definition 11's key-attribute axiom and dedup order.

The paper notes the Stifle definition's third axiom (the filter column is
a *key* attribute) "could have been omitted … with the potential drawback
of some false positives".  This ablation runs the detector with and
without schema knowledge and quantifies exactly that: recall stays, the
query coverage of detected stifles grows (false positives on non-key
filters), precision against the planted truth drops or stays equal.

It also ablates the dedup stage (threshold 0 vs the default 1 s) to show
duplicate removal feeds pattern mining (Fig. 1's ordering).
"""

from dataclasses import replace

from conftest import print_table

from repro.antipatterns import DetectionContext
from repro.log import LogRecord, QueryLog
from repro.pipeline import CleaningPipeline
from repro.workload import score_detection

STIFLE_LABELS = ("DW-Stifle", "DS-Stifle", "DF-Stifle")


def _with_non_key_lookups(log: QueryLog) -> QueryLog:
    """Append stifle-shaped runs filtering a NON-key attribute (``run``):
    the exact false-positive population Definition 11's third axiom is
    there to reject — without schema knowledge they look like DW-Stifles."""
    records = log.records()
    seq = records[-1].seq + 1 if records else 0
    clock = log.time_span()[1] + 10_000.0
    extra = []
    for index in range(60):
        extra.append(
            LogRecord(
                seq=seq,
                sql=f"SELECT count(*) FROM photoprimary WHERE run = {1000 + index}",
                timestamp=clock,
                user="survey-scanner",
            )
        )
        seq += 1
        clock += 0.5
    return QueryLog(records + extra)


def stifle_seqs(result):
    return {
        seq
        for instance in result.antipatterns
        if instance.label in STIFLE_LABELS
        for seq in instance.record_seqs()
    }


def test_ablation_key_axiom_and_dedup(benchmark, bench_workload, bench_config):
    truth = set()
    for label in STIFLE_LABELS:
        truth |= bench_workload.truth.seqs_with_label(label)
    log = _with_non_key_lookups(bench_workload.log)

    def run_all():
        with_keys = CleaningPipeline(bench_config).run(log)
        without_keys = CleaningPipeline(
            replace(bench_config, detection=DetectionContext(key_columns=None))
        ).run(log)
        no_dedup = CleaningPipeline(
            replace(bench_config, dedup_threshold=0.0)
        ).run(log)
        return with_keys, without_keys, no_dedup

    with_keys, without_keys, no_dedup = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    detected_with = stifle_seqs(with_keys)
    detected_without = stifle_seqs(without_keys)
    precision_with, recall_with = score_detection(detected_with, truth)
    precision_without, recall_without = score_detection(detected_without, truth)

    print_table(
        "Ablation E15 — Definition 11's key axiom",
        ["variant", "stifle queries", "precision", "recall"],
        [
            (
                "key axiom ON (schema)",
                len(detected_with),
                f"{precision_with:.3f}",
                f"{recall_with:.3f}",
            ),
            (
                "key axiom OFF",
                len(detected_without),
                f"{precision_without:.3f}",
                f"{recall_without:.3f}",
            ),
        ],
    )
    print_table(
        "Ablation E15 — dedup before mining",
        ["variant", "after dedup", "patterns", "antipattern instances"],
        [
            (
                "threshold 1 s (default)",
                len(with_keys.dedup.log),
                len(with_keys.registry),
                len(with_keys.antipatterns),
            ),
            (
                "threshold 0 (dedup off)",
                len(no_dedup.dedup.log),
                len(no_dedup.registry),
                len(no_dedup.antipatterns),
            ),
        ],
    )

    # dropping the axiom never loses recall, and on this log it produces
    # strictly more detections — the non-key `run = …` scanner runs
    assert recall_without >= recall_with - 1e-9
    assert len(detected_without) > len(detected_with)
    # the extra detections are false positives: schema knowledge wins
    assert precision_with > precision_without
    # dedup-off keeps more records in the mining input
    assert len(no_dedup.dedup.log) >= len(with_keys.dedup.log)
