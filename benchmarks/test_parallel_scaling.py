"""E21 — parallel scaling: the sharded executor at 1/2/4 workers.

Cleans a ~100k-statement synthetic log (the default
``REPRO_PARALLEL_BENCH_SCALE`` is calibrated for that size) with the
batch pipeline, the streaming cleaner and
:class:`~repro.pipeline.parallel.ParallelCleaner` at increasing worker
counts, asserts that every configuration produces the *identical* clean
log **and the identical stage-counter ledger**
(:meth:`PipelineMetrics.comparable`), and writes throughput plus
per-stage wall-clock timings for every mode to ``BENCH_parallel.json``
next to this file, so future PRs have a perf trajectory to compare
against.

The run also measures recorder overhead on the batch path (a second
batch run with the disabled :data:`repro.obs.NULL` recorder) and records
the ratio; the acceptance bar is ≤5% but the number is recorded, not
asserted, because single-run timing on shared hardware is noisy.

Speedup is only asserted when the machine actually has the cores
(``len(os.sched_getaffinity(0)) >= 4``): the merged report records the
visible CPU count, so a 1-core CI run still produces an honest artifact
without failing on physics.
"""

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from conftest import print_table

from repro.log import QueryLog
from repro.obs import NULL, Recorder
from repro.pipeline import (
    CleaningPipeline,
    ExecutionConfig,
    ParallelCleaner,
    StageTimings,
    StreamingCleaner,
)
from repro.workload import WorkloadConfig, generate

#: ~17.2k queries per unit of scale with the default mixture.
BENCH_SCALE = float(os.environ.get("REPRO_PARALLEL_BENCH_SCALE", "5.8"))
BENCH_SEED = int(os.environ.get("REPRO_PARALLEL_BENCH_SEED", "2018"))
WORKER_COUNTS = tuple(
    int(w)
    for w in os.environ.get("REPRO_PARALLEL_BENCH_WORKERS", "1,2,4").split(",")
)
OUTPUT_PATH = Path(__file__).parent / "BENCH_parallel.json"


def _visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_scaling(benchmark, bench_config):
    workload = generate(WorkloadConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    log = workload.log
    # SWS / registry are global batch-only stages; drop SWS everywhere so
    # all modes run the same shared-stage work and timings compare fairly.
    shared_config = replace(bench_config, sws=None)

    def run_all():
        report = {
            "queries": len(log),
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "visible_cpus": _visible_cpus(),
            "runs": [],
        }

        recorder = Recorder()
        started = time.perf_counter()
        batch = CleaningPipeline(shared_config).run(log, recorder=recorder)
        batch_seconds = time.perf_counter() - started
        report["runs"].append(
            {
                "mode": "batch",
                "workers": 1,
                "seconds": batch_seconds,
                "throughput": len(log) / batch_seconds,
                "stage_seconds": StageTimings.from_metrics(
                    recorder.metrics
                ).as_dict(),
                "identical_to_batch": True,
                "metrics_match_batch": True,
            }
        )
        reference = batch.metrics.comparable()

        started = time.perf_counter()
        plain_batch = CleaningPipeline(shared_config).run(log, recorder=NULL)
        plain_seconds = time.perf_counter() - started
        report["recorder_overhead"] = {
            "batch_recorded_seconds": batch_seconds,
            "batch_plain_seconds": plain_seconds,
            "overhead_ratio": batch_seconds / plain_seconds,
        }
        assert plain_batch.clean_log.records() == batch.clean_log.records()

        streamer = StreamingCleaner(shared_config)
        started = time.perf_counter()
        streamed = QueryLog(streamer.process(log.records()))
        stream_seconds = time.perf_counter() - started
        report["runs"].append(
            {
                "mode": "streaming",
                "workers": 1,
                "seconds": stream_seconds,
                "throughput": len(log) / stream_seconds,
                "stage_seconds": StageTimings.from_metrics(
                    streamer.recorder.metrics
                ).as_dict(),
                "identical_to_batch": streamed.records()
                == batch.clean_log.records(),
                "metrics_match_batch": streamer.recorder.metrics.comparable()
                == reference,
            }
        )

        for workers in WORKER_COUNTS:
            config = replace(
                shared_config,
                execution=ExecutionConfig(mode="parallel", workers=workers),
            )
            cleaner = ParallelCleaner(config)
            cleaned = cleaner.run(log)
            stats = cleaner.stats
            report["runs"].append(
                {
                    "mode": "parallel",
                    "workers": workers,
                    "shards": stats.shard_count,
                    "seconds": stats.wall_seconds,
                    "throughput": stats.throughput,
                    "records_out": stats.records_out,
                    "stage_seconds": stats.timings.as_dict(),
                    "identical_to_batch": cleaned.records()
                    == batch.clean_log.records(),
                    "metrics_match_batch": stats.metrics.comparable()
                    == reference,
                }
            )
        return report

    report = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # BENCH_parallel.json is a shared trajectory: E25 (zero-copy data
    # plane) keeps its section under the "zerocopy" key — update ours,
    # preserve theirs.
    merged = {}
    if OUTPUT_PATH.exists():
        try:
            merged = json.loads(OUTPUT_PATH.read_text())
        except ValueError:
            merged = {}
    merged.update(report)
    OUTPUT_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    print_table(
        f"Parallel scaling — {report['queries']:,} queries, "
        f"{report['visible_cpus']} visible CPU(s), recorder overhead "
        f"{report['recorder_overhead']['overhead_ratio']:.3f}x",
        [
            "mode",
            "workers",
            "shards",
            "seconds",
            "records/s",
            "identical",
            "metrics",
        ],
        [
            (
                run["mode"],
                run["workers"],
                run.get("shards", "-"),
                f"{run['seconds']:.2f}",
                f"{run['throughput']:,.0f}",
                "yes" if run["identical_to_batch"] else "NO",
                "match" if run["metrics_match_batch"] else "DIVERGED",
            )
            for run in report["runs"]
        ],
    )

    assert all(run["identical_to_batch"] for run in report["runs"])
    # The acceptance bar of the observability layer: every execution mode
    # tells the same stage-counter story about the same E21 log.
    assert all(run["metrics_match_batch"] for run in report["runs"])
    # Streaming's per-stage wall times must actually be populated now —
    # this was the timing asymmetry the recorder backfills.
    streaming_run = next(
        run for run in report["runs"] if run["mode"] == "streaming"
    )
    assert streaming_run["stage_seconds"]["dedup"] > 0
    assert streaming_run["stage_seconds"]["parse"] > 0
    assert streaming_run["stage_seconds"]["solve"] > 0
    parallel_runs = {
        run["workers"]: run for run in report["runs"] if run["mode"] == "parallel"
    }
    assert all(run["throughput"] > 0 for run in parallel_runs.values())
    # ≥2× throughput at 4 workers over 1 worker — asserted only where the
    # hardware can deliver it; the JSON records the ratio either way.
    if (
        report["visible_cpus"] >= 4
        and 1 in parallel_runs
        and 4 in parallel_runs
    ):
        speedup = (
            parallel_runs[4]["throughput"] / parallel_runs[1]["throughput"]
        )
        assert speedup >= 2.0, f"4-worker speedup only {speedup:.2f}x"
