"""Legacy shim so `setup.py develop` works in offline environments
(the sandbox has no `wheel` package, which PEP 517 editable installs need).
All real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
