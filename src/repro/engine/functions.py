"""SkyServer table-valued functions over the synthetic sky.

The SkyServer spatial-search templates dominating Table 7 call the
server-side functions ``fGetNearbyObjEq``, ``fGetNearestObjEq`` and
``fGetObjFromRect``.  We implement them against the synthetic
``photoprimary`` table: positions are equatorial coordinates (``ra`` in
degrees [0, 360), ``dec`` in degrees [-90, 90]); distances use the
spherical law of cosines; radii are in *arc minutes*, as in SkyServer.

Registered on a :class:`~repro.engine.executor.Database` via
:func:`register_sky_functions`.
"""

from __future__ import annotations

import math
from typing import Any, List, Sequence, Tuple

from .executor import Database, EngineError
from .table import Row

#: Columns the spatial functions expose (a subset of the real SkyServer
#: signatures, covering everything the workload templates touch).
NEARBY_COLUMNS = ["objid", "run", "camcol", "field", "type", "htmid", "distance"]
RECT_COLUMNS = ["objid", "run", "camcol", "field", "type", "htmid"]


def angular_distance_arcmin(
    ra1: float, dec1: float, ra2: float, dec2: float
) -> float:
    """Angular separation of two equatorial points, in arc minutes."""
    phi1, phi2 = math.radians(dec1), math.radians(dec2)
    delta_lambda = math.radians(ra1 - ra2)
    cosine = math.sin(phi1) * math.sin(phi2) + math.cos(phi1) * math.cos(
        phi2
    ) * math.cos(delta_lambda)
    cosine = min(1.0, max(-1.0, cosine))
    return math.degrees(math.acos(cosine)) * 60.0


def _object_rows(database: Database) -> List[Row]:
    if not database.has_table("photoprimary"):
        raise EngineError(
            "spatial functions need a 'photoprimary' table in the database"
        )
    return database.table("photoprimary").rows()


def _require_args(name: str, args: Sequence[Any], count: int) -> None:
    if len(args) != count:
        raise EngineError(f"{name} expects {count} arguments, got {len(args)}")
    if any(arg is None for arg in args):
        raise EngineError(f"{name}: NULL argument")


def _projected(row: Row, distance: float = None) -> Row:
    projected = {
        "objid": row.get("objid"),
        "run": row.get("run"),
        "camcol": row.get("camcol"),
        "field": row.get("field"),
        "type": row.get("type"),
        "htmid": row.get("htmid"),
    }
    if distance is not None:
        projected["distance"] = distance
    return projected


def f_get_nearby_obj_eq(
    database: Database, args: Sequence[Any]
) -> Tuple[List[str], List[Row]]:
    """All objects within ``r`` arcmin of (``ra``, ``dec``)."""
    _require_args("fGetNearbyObjEq", args, 3)
    ra, dec, radius = (float(a) for a in args)
    rows = []
    for row in _object_rows(database):
        distance = angular_distance_arcmin(ra, dec, row["ra"], row["dec"])
        if distance <= radius:
            rows.append(_projected(row, distance))
    rows.sort(key=lambda r: r["distance"])
    return list(NEARBY_COLUMNS), rows


def f_get_nearest_obj_eq(
    database: Database, args: Sequence[Any]
) -> Tuple[List[str], List[Row]]:
    """The single nearest object within ``r`` arcmin, or no rows."""
    columns, rows = f_get_nearby_obj_eq(database, args)
    return columns, rows[:1]


def f_get_obj_from_rect(
    database: Database, args: Sequence[Any]
) -> Tuple[List[str], List[Row]]:
    """All objects inside the rectangle (ra1, dec1) – (ra2, dec2)."""
    _require_args("fGetObjFromRect", args, 4)
    ra1, dec1, ra2, dec2 = (float(a) for a in args)
    ra_low, ra_high = min(ra1, ra2), max(ra1, ra2)
    dec_low, dec_high = min(dec1, dec2), max(dec1, dec2)
    rows = [
        _projected(row)
        for row in _object_rows(database)
        if ra_low <= row["ra"] <= ra_high and dec_low <= row["dec"] <= dec_high
    ]
    return list(RECT_COLUMNS), rows


def register_sky_functions(database: Database) -> None:
    """Register all SkyServer table-valued functions on ``database``."""
    database.register_table_function("fGetNearbyObjEq", f_get_nearby_obj_eq)
    database.register_table_function("fGetNearestObjEq", f_get_nearest_obj_eq)
    database.register_table_function("fGetObjFromRect", f_get_obj_from_rect)
