"""Schema catalog: tables, columns, key attributes.

Definition 11's third axiom ("filCol is a key attribute") needs schema
knowledge; the engine needs column lists to expand ``*`` and validate
references.  The catalog is the single source for both — the pipeline's
:class:`~repro.antipatterns.base.DetectionContext` is built from it via
``DetectionContext.from_catalog``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Column:
    """One column of a table.

    :param name: column name (stored as given; matching is
        case-insensitive).
    :param type_name: informational type label (``'bigint'``, ``'float'``,
        ``'varchar'`` …) — the engine is dynamically typed, the label is
        for documentation and error messages.
    :param is_key: True for primary-key and foreign-key attributes — the
        key attributes of Definition 11.
    """

    name: str
    type_name: str = "varchar"
    is_key: bool = False


@dataclass(frozen=True)
class TableSchema:
    """Schema of one table."""

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        seen: Set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise ValueError(
                    f"table {self.name}: duplicate column {column.name!r}"
                )
            seen.add(lowered)

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(column.name.lower() == lowered for column in self.columns)

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        raise KeyError(f"table {self.name} has no column {name!r}")

    def key_columns(self) -> List[Column]:
        return [column for column in self.columns if column.is_key]


class Catalog:
    """A set of table schemas, looked up case-insensitively."""

    def __init__(self, tables: Iterable[TableSchema] = ()) -> None:
        self._tables: Dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    def add(self, table: TableSchema) -> None:
        key = table.name.lower()
        if key in self._tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self._tables[key] = table

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def get(self, name: str) -> Optional[TableSchema]:
        return self._tables.get(name.lower())

    def require(self, name: str) -> TableSchema:
        table = self.get(name)
        if table is None:
            raise KeyError(f"unknown table {name!r}")
        return table

    def key_column_names(self) -> Set[str]:
        """All key-attribute names across the schema, lower-cased — the
        input of the Stifle detector's key check."""
        names: Set[str] = set()
        for table in self._tables.values():
            for column in table.key_columns():
                names.add(column.name.lower())
        return names
