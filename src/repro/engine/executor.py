"""AST interpreter: executes SELECT statements over in-memory tables.

The engine exists for two reasons:

* the Section 6.3 runtime experiment (original stifle queries vs their
  rewrites) needs *something* to run both workloads — the paper used the
  live SkyServer database, we use this engine plus the cost model of
  :mod:`repro.engine.cost`;
* rewrite *validation*: :mod:`repro.rewrite.validation` executes an
  antipattern run and its replacement and checks the result sets agree —
  a guarantee the paper could only argue for.

Supported: projections (incl. ``*``/``t.*``, expressions, aliases),
FROM with base tables, table-valued functions, derived tables and
INNER/LEFT/RIGHT/CROSS joins, WHERE with the full predicate grammar,
GROUP BY / HAVING with the standard aggregates, DISTINCT, ORDER BY,
TOP [PERCENT], scalar builtins, IN/EXISTS/scalar subqueries (correlated
lookups resolve through the outer scopes), and UNION [ALL].

NULL handling is pragmatic rather than full three-valued logic: any
comparison involving NULL is false — which is exactly the semantics that
makes the SNC antipattern (``assigned_to = NULL``) return nothing, so the
engine can demonstrate *why* SNC is a bug and that its rewrite fixes it.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..sqlparser import ast_nodes as ast
from ..sqlparser import parse
from ..sqlparser.dialect import AGGREGATE_FUNCTIONS, contains_aggregate
from .catalog import Catalog, TableSchema
from .table import Row, Table


class EngineError(Exception):
    """Any semantic failure during execution (unknown table/column, …)."""


@dataclass
class ExecStats:
    """Work accounting for the cost model."""

    statements: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0

    def merge(self, other: "ExecStats") -> None:
        self.statements += other.statements
        self.rows_scanned += other.rows_scanned
        self.rows_returned += other.rows_returned


@dataclass
class ResultSet:
    """Result of one statement: column names and row tuples."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    stats: ExecStats = field(default_factory=ExecStats)

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_rows(self) -> List[Tuple[Any, ...]]:
        """Rows under a canonical order — result-set comparison helper."""
        return sorted(self.rows, key=lambda row: tuple(map(_sort_key, row)))


def _sort_key(value: Any):
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, str(value))


#: A table-valued function: (database, evaluated args) -> (columns, rows).
TableFunction = Callable[["Database", Sequence[Any]], Tuple[List[str], List[Row]]]


class Database:
    """Catalog + storage + function registry + executor entry point."""

    def __init__(self, catalog: Optional[Catalog] = None) -> None:
        self.catalog = catalog or Catalog()
        self._tables: Dict[str, Table] = {}
        self._table_functions: Dict[str, TableFunction] = {}

    # ------------------------------------------------------------------
    # Storage management

    def create_table(
        self, schema: TableSchema, rows: Iterable[Row] = ()
    ) -> Table:
        if schema.name.lower() not in {t.name.lower() for t in self.catalog}:
            self.catalog.add(schema)
        table = Table(schema, rows)
        self._tables[schema.name.lower()] = table
        return table

    def table(self, name: str) -> Table:
        table = self._tables.get(name.lower())
        if table is None:
            raise EngineError(f"unknown table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def register_table_function(self, name: str, fn: TableFunction) -> None:
        self._table_functions[name.lower()] = fn

    def table_function(self, name: str) -> Optional[TableFunction]:
        return self._table_functions.get(name.lower())

    # ------------------------------------------------------------------
    # Execution

    def execute(self, statement) -> ResultSet:
        """Execute a statement (AST or SQL string)."""
        if isinstance(statement, str):
            statement = parse(statement)
        stats = ExecStats(statements=1)
        result = _Executor(self, stats).statement(statement, _Scope.root())
        result.stats = stats
        stats.rows_returned = len(result.rows)
        return result

    def execute_many(self, statements: Iterable) -> Tuple[List[ResultSet], ExecStats]:
        """Execute a sequence of statements, aggregating work stats."""
        total = ExecStats()
        results = []
        for statement in statements:
            result = self.execute(statement)
            total.merge(result.stats)
            results.append(result)
        return results, total


# ----------------------------------------------------------------------
# Scopes: name resolution environments


class _Scope:
    """A chain of name-resolution frames.

    Each frame maps alias → row dict (lower-cased column keys).  Lookup
    starts in the innermost frame and proceeds outward, which is what
    makes correlated subqueries resolve their outer references.
    """

    __slots__ = ("frames",)

    def __init__(self, frames: Tuple[Dict[str, Row], ...]) -> None:
        self.frames = frames

    @classmethod
    def root(cls) -> "_Scope":
        return cls(())

    def child(self, frame: Dict[str, Row]) -> "_Scope":
        return _Scope((frame,) + self.frames)

    def resolve(self, table: Optional[str], name: str) -> Any:
        lowered = name.lower()
        if table is not None:
            alias = table.lower()
            for frame in self.frames:
                row = frame.get(alias)
                if row is not None:
                    if lowered in row:
                        return row[lowered]
                    raise EngineError(f"column {table}.{name} not found")
            raise EngineError(f"unknown table or alias {table!r}")
        for frame in self.frames:
            matches = [row for row in frame.values() if lowered in row]
            if len(matches) == 1:
                return matches[0][lowered]
            if len(matches) > 1:
                raise EngineError(f"ambiguous column {name!r}")
        raise EngineError(f"unknown column {name!r}")


# ----------------------------------------------------------------------
# Relations produced by FROM resolution


@dataclass
class _Relation:
    """An intermediate relation: env fragments plus projection order."""

    #: ordered (alias, ordered column names) pairs for star expansion
    shape: List[Tuple[str, List[str]]]
    #: one dict alias → row per tuple
    envs: List[Dict[str, Row]]


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _like_pattern(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        compiled = re.compile(f"^{regex}$", re.IGNORECASE | re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _numeric(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return value
    raise EngineError(f"expected a number, got {value!r}")


class _Executor:
    """Evaluates one statement; holds the work counters."""

    def __init__(self, database: Database, stats: ExecStats) -> None:
        self.db = database
        self.stats = stats
        #: per-statement memo of constant IN-lists (id(node) → value set);
        #: safe because the AST is immutable and outlives the execution.
        self._in_list_sets: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # Statements

    def statement(self, node: ast.Statement, scope: _Scope) -> ResultSet:
        if isinstance(node, ast.SelectStatement):
            return self.select(node, scope)
        if isinstance(node, ast.Union):
            left = self.statement(node.left, scope)
            right = self.statement(node.right, scope)
            if len(left.columns) != len(right.columns):
                raise EngineError("UNION branches have different arities")
            rows = left.rows + right.rows
            if not node.all:
                rows = list(dict.fromkeys(rows))
            return ResultSet(columns=left.columns, rows=rows)
        raise EngineError(f"cannot execute {type(node).__name__}")

    def select(self, node: ast.SelectStatement, scope: _Scope) -> ResultSet:
        relation = self._indexed_single_table(node, scope)
        if relation is None:
            relation = self._resolve_from(node.from_sources, scope)

        envs = relation.envs
        if node.where is not None:
            envs = [
                env
                for env in envs
                if self._truth(node.where, scope.child(env))
            ]

        aggregated = bool(node.group_by) or any(
            contains_aggregate(item.expr) for item in node.items
        )
        if aggregated:
            columns, rows, order_envs = self._aggregate(node, envs, scope)
        else:
            columns = self._output_columns(node.items, relation)
            rows = [
                self._project(node.items, relation, scope.child(env))
                for env in envs
            ]
            order_envs = envs

        if node.order_by:
            rows = self._order(node, columns, rows, order_envs, scope, aggregated)

        if node.distinct:
            rows = list(dict.fromkeys(rows))

        if node.top is not None:
            limit_value = self.value(node.top.count, scope)
            limit = int(_numeric(limit_value))
            if node.top.percent:
                limit = math.ceil(len(rows) * limit / 100.0)
            rows = rows[: max(limit, 0)]

        return ResultSet(columns=columns, rows=rows)

    # ------------------------------------------------------------------
    # Index fast path

    @staticmethod
    def _conjuncts(expr: ast.Expression) -> Iterable[ast.Expression]:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.And):
                stack.append(node.left)
                stack.append(node.right)
            else:
                yield node

    def _indexed_single_table(
        self, node: ast.SelectStatement, scope: _Scope
    ) -> Optional[_Relation]:
        """Serve a single-table query with an equality/IN conjunct on a
        stored column from the table's hash index instead of a scan.

        The full WHERE clause is still evaluated afterwards, so this is a
        pure access-path optimisation; ``rows_scanned`` counts only the
        rows the index produced — modelling what an indexed production
        database (like the paper's SkyServer) does for stifle lookups.
        """
        if len(node.from_sources) != 1 or node.where is None:
            return None
        source = node.from_sources[0]
        if not isinstance(source, ast.TableName):
            return None
        if not self.db.has_table(source.name):
            return None  # let the scan path raise the uniform error
        table = self.db.table(source.name)
        alias = (source.alias or source.name).lower()

        for conjunct in self._conjuncts(node.where):
            column: Optional[ast.ColumnRef] = None
            values: List[Any] = []
            if isinstance(conjunct, ast.Comparison) and conjunct.op == "=":
                if isinstance(conjunct.left, ast.ColumnRef) and isinstance(
                    conjunct.right, ast.Literal
                ):
                    column, values = conjunct.left, [conjunct.right.python_value()]
                elif isinstance(conjunct.right, ast.ColumnRef) and isinstance(
                    conjunct.left, ast.Literal
                ):
                    column, values = conjunct.right, [conjunct.left.python_value()]
            elif (
                isinstance(conjunct, ast.InList)
                and not conjunct.negated
                and isinstance(conjunct.expr, ast.ColumnRef)
                and all(isinstance(item, ast.Literal) for item in conjunct.items)
            ):
                column = conjunct.expr
                values = [item.python_value() for item in conjunct.items]  # type: ignore[union-attr]
            if column is None:
                continue
            if column.table is not None and column.table.lower() != alias:
                continue
            if not table.has_column(column.name):
                continue
            seen_keys = set()
            rows: List[Row] = []
            for value in values:
                key = _Executor._normalize_value(value)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                rows.extend(table.lookup(column.name, value))
            self.stats.rows_scanned += len(rows)
            return _Relation(
                shape=[(alias, table.column_names())],
                envs=[{alias: row} for row in rows],
            )
        return None

    # ------------------------------------------------------------------
    # FROM resolution

    def _resolve_from(
        self, sources: Tuple[ast.TableSource, ...], scope: _Scope
    ) -> _Relation:
        if not sources:
            return _Relation(shape=[], envs=[{}])
        relation = self._source(sources[0], scope)
        for source in sources[1:]:
            right = self._source(source, scope)
            relation = self._cross(relation, right)
        return relation

    def _cross(self, left: _Relation, right: _Relation) -> _Relation:
        envs = [
            {**left_env, **right_env}
            for left_env in left.envs
            for right_env in right.envs
        ]
        return _Relation(shape=left.shape + right.shape, envs=envs)

    def _source(self, source: ast.TableSource, scope: _Scope) -> _Relation:
        if isinstance(source, ast.TableName):
            table = self.db.table(source.name)
            alias = (source.alias or source.name).lower()
            rows = table.rows()
            self.stats.rows_scanned += len(rows)
            return _Relation(
                shape=[(alias, table.column_names())],
                envs=[{alias: row} for row in rows],
            )
        if isinstance(source, ast.FunctionTable):
            return self._function_table(source, scope)
        if isinstance(source, ast.DerivedTable):
            inner = self.select(source.select, scope)
            alias = (source.alias or "subquery").lower()
            columns = [column.lower() for column in inner.columns]
            envs = [
                {alias: dict(zip(columns, row))} for row in inner.rows
            ]
            return _Relation(shape=[(alias, columns)], envs=envs)
        if isinstance(source, ast.Join):
            return self._join(source, scope)
        raise EngineError(f"cannot resolve {type(source).__name__} in FROM")

    def _function_table(
        self, source: ast.FunctionTable, scope: _Scope
    ) -> _Relation:
        call = source.call
        fn = self.db.table_function(call.name)
        if fn is None:
            raise EngineError(f"unknown table-valued function {call.name!r}")
        args = [self.value(arg, scope) for arg in call.args]
        columns, rows = fn(self.db, args)
        self.stats.rows_scanned += len(rows)
        alias = (source.alias or call.name).lower()
        columns = [column.lower() for column in columns]
        envs = [
            {alias: {column: row.get(column) for column in columns}}
            for row in ({k.lower(): v for k, v in r.items()} for r in rows)
        ]
        return _Relation(shape=[(alias, columns)], envs=envs)

    def _join(self, node: ast.Join, scope: _Scope) -> _Relation:
        left = self._source(node.left, scope)
        right = self._source(node.right, scope)
        if node.kind in ("CROSS", "CROSS APPLY"):
            return self._cross(left, right)

        equi = self._equi_join_columns(node.condition, left, right)
        if equi is not None:
            return self._hash_join(node, left, right, *equi)

        shape = left.shape + right.shape
        null_right = {
            alias: {column: None for column in columns}
            for alias, columns in right.shape
        }
        null_left = {
            alias: {column: None for column in columns}
            for alias, columns in left.shape
        }

        envs: List[Dict[str, Row]] = []
        matched_right = [False] * len(right.envs)
        for left_env in left.envs:
            matched = False
            for index, right_env in enumerate(right.envs):
                combined = {**left_env, **right_env}
                if node.condition is None or self._truth(
                    node.condition, scope.child(combined)
                ):
                    envs.append(combined)
                    matched = True
                    matched_right[index] = True
            if not matched and node.kind in ("LEFT", "FULL"):
                envs.append({**left_env, **null_right})
        if node.kind in ("RIGHT", "FULL"):
            for index, right_env in enumerate(right.envs):
                if not matched_right[index]:
                    envs.append({**null_left, **right_env})
        return _Relation(shape=shape, envs=envs)

    # ------------------------------------------------------------------
    # Hash equi-join fast path

    @staticmethod
    def _locate_column(
        relation: _Relation, column: ast.ColumnRef
    ) -> Optional[Tuple[str, str]]:
        """Resolve a join-condition column to (alias, column) within one
        relation side, or None when it does not (uniquely) belong there."""
        name = column.name.lower()
        if column.table is not None:
            alias = column.table.lower()
            for shape_alias, columns in relation.shape:
                if shape_alias == alias and name in columns:
                    return (alias, name)
            return None
        matches = [
            (shape_alias, name)
            for shape_alias, columns in relation.shape
            if name in columns
        ]
        return matches[0] if len(matches) == 1 else None

    def _equi_join_columns(
        self,
        condition: Optional[ast.Expression],
        left: _Relation,
        right: _Relation,
    ) -> Optional[Tuple[Tuple[str, str], Tuple[str, str]]]:
        """((left_alias, col), (right_alias, col)) for a plain equi-join
        condition, else None (nested-loop fallback)."""
        if not isinstance(condition, ast.Comparison) or condition.op != "=":
            return None
        if not (
            isinstance(condition.left, ast.ColumnRef)
            and isinstance(condition.right, ast.ColumnRef)
        ):
            return None
        first, second = condition.left, condition.right
        left_key = self._locate_column(left, first)
        right_key = self._locate_column(right, second)
        if left_key is not None and right_key is not None:
            return (left_key, right_key)
        left_key = self._locate_column(left, second)
        right_key = self._locate_column(right, first)
        if left_key is not None and right_key is not None:
            return (left_key, right_key)
        return None

    @staticmethod
    def _join_key(value):
        if isinstance(value, str):
            return value.lower()  # match _compare's case-insensitivity
        if isinstance(value, bool):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)  # 5 == 5.0 in SQL comparison
        return value

    def _hash_join(
        self,
        node: ast.Join,
        left: _Relation,
        right: _Relation,
        left_key: Tuple[str, str],
        right_key: Tuple[str, str],
    ) -> _Relation:
        shape = left.shape + right.shape
        right_alias, right_column = right_key
        index: Dict[Any, List[int]] = {}
        for position, env in enumerate(right.envs):
            value = env[right_alias][right_column]
            if value is None:
                continue  # NULL never joins
            index.setdefault(self._join_key(value), []).append(position)

        null_right = {
            alias: {column: None for column in columns}
            for alias, columns in right.shape
        }
        null_left = {
            alias: {column: None for column in columns}
            for alias, columns in left.shape
        }
        left_alias, left_column = left_key

        envs: List[Dict[str, Row]] = []
        matched_right = [False] * len(right.envs)
        for left_env in left.envs:
            value = left_env[left_alias][left_column]
            positions = (
                index.get(self._join_key(value), []) if value is not None else []
            )
            if positions:
                for position in positions:
                    envs.append({**left_env, **right.envs[position]})
                    matched_right[position] = True
            elif node.kind in ("LEFT", "FULL"):
                envs.append({**left_env, **null_right})
        if node.kind in ("RIGHT", "FULL"):
            for position, right_env in enumerate(right.envs):
                if not matched_right[position]:
                    envs.append({**null_left, **right_env})
        return _Relation(shape=shape, envs=envs)

    # ------------------------------------------------------------------
    # Projection

    def _output_columns(
        self, items: Tuple[ast.SelectItem, ...], relation: _Relation
    ) -> List[str]:
        columns: List[str] = []
        for index, item in enumerate(items):
            expr = item.expr
            if isinstance(expr, ast.Star):
                if expr.table is None:
                    for _, table_columns in relation.shape:
                        columns.extend(table_columns)
                else:
                    alias = expr.table.lower()
                    for shape_alias, table_columns in relation.shape:
                        if shape_alias == alias:
                            columns.extend(table_columns)
                            break
                    else:
                        raise EngineError(f"unknown alias {expr.table!r} in {expr.table}.*")
                continue
            name = item.output_name()
            columns.append(name.lower() if name else f"col{index + 1}")
        return columns

    def _project(
        self,
        items: Tuple[ast.SelectItem, ...],
        relation: _Relation,
        scope: _Scope,
    ) -> Tuple[Any, ...]:
        values: List[Any] = []
        for item in items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                frame = scope.frames[0]
                targets = (
                    relation.shape
                    if expr.table is None
                    else [
                        entry
                        for entry in relation.shape
                        if entry[0] == expr.table.lower()
                    ]
                )
                for alias, table_columns in targets:
                    row = frame[alias]
                    values.extend(row[column] for column in table_columns)
                continue
            values.append(self.value(expr, scope))
        return tuple(values)

    # ------------------------------------------------------------------
    # Aggregation

    def _aggregate(
        self,
        node: ast.SelectStatement,
        envs: List[Dict[str, Row]],
        scope: _Scope,
    ) -> Tuple[List[str], List[Tuple[Any, ...]], List[Dict[str, Row]]]:
        if node.group_by:
            groups: Dict[Tuple[Any, ...], List[Dict[str, Row]]] = {}
            for env in envs:
                key = tuple(
                    self.value(expr, scope.child(env)) for expr in node.group_by
                )
                groups.setdefault(key, []).append(env)
            group_list = list(groups.values())
        else:
            group_list = [envs]  # one global group (may be empty)

        columns = [
            (item.output_name() or f"col{index + 1}").lower()
            for index, item in enumerate(node.items)
        ]
        rows: List[Tuple[Any, ...]] = []
        representative_envs: List[Dict[str, Row]] = []
        for group in group_list:
            if node.having is not None and not self._truth_aggregate(
                node.having, group, scope
            ):
                continue
            row = tuple(
                self._aggregate_value(item.expr, group, scope)
                for item in node.items
            )
            rows.append(row)
            representative_envs.append(group[0] if group else {})
        return columns, rows, representative_envs

    def _aggregate_value(
        self,
        expr: ast.Expression,
        group: List[Dict[str, Row]],
        scope: _Scope,
    ) -> Any:
        if isinstance(expr, ast.FunctionCall) and expr.name.lower() in AGGREGATE_FUNCTIONS:
            return self._evaluate_aggregate(expr, group, scope)
        if contains_aggregate(expr):
            # expression over aggregates, e.g. max(a) - min(a)
            return self._eval_with_aggregates(expr, group, scope)
        if not group:
            return None
        return self.value(expr, scope.child(group[0]))

    def _eval_with_aggregates(
        self,
        expr: ast.Expression,
        group: List[Dict[str, Row]],
        scope: _Scope,
    ) -> Any:
        if isinstance(expr, ast.FunctionCall) and expr.name.lower() in AGGREGATE_FUNCTIONS:
            return self._evaluate_aggregate(expr, group, scope)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_with_aggregates(expr.left, group, scope)
            right = self._eval_with_aggregates(expr.right, group, scope)
            return self._binary(expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval_with_aggregates(expr.operand, group, scope)
            return None if operand is None else -_numeric(operand)
        if isinstance(expr, ast.Literal):
            return expr.python_value()
        if group:
            return self.value(expr, scope.child(group[0]))
        return None

    def _evaluate_aggregate(
        self,
        call: ast.FunctionCall,
        group: List[Dict[str, Row]],
        scope: _Scope,
    ) -> Any:
        name = call.name.lower()
        if name == "count" and (
            not call.args or isinstance(call.args[0], ast.Star)
        ):
            return len(group)
        if not call.args:
            raise EngineError(f"aggregate {name} needs an argument")
        values = [
            self.value(call.args[0], scope.child(env)) for env in group
        ]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if name == "count":
            return len(values)
        if not values:
            return None
        if name == "sum":
            return sum(values)
        if name == "avg":
            return sum(values) / len(values)
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name in ("stdev", "var"):
            mean = sum(values) / len(values)
            if len(values) < 2:
                return None
            variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
            return variance if name == "var" else math.sqrt(variance)
        raise EngineError(f"unknown aggregate {name!r}")

    def _truth_aggregate(
        self,
        expr: ast.Expression,
        group: List[Dict[str, Row]],
        scope: _Scope,
    ) -> bool:
        if isinstance(expr, ast.And):
            return self._truth_aggregate(
                expr.left, group, scope
            ) and self._truth_aggregate(expr.right, group, scope)
        if isinstance(expr, ast.Or):
            return self._truth_aggregate(
                expr.left, group, scope
            ) or self._truth_aggregate(expr.right, group, scope)
        if isinstance(expr, ast.Not):
            return not self._truth_aggregate(expr.operand, group, scope)
        if isinstance(expr, ast.Comparison):
            left = self._eval_with_aggregates(expr.left, group, scope)
            right = self._eval_with_aggregates(expr.right, group, scope)
            return bool(self._compare(expr.op, left, right))
        raise EngineError("unsupported HAVING predicate")

    # ------------------------------------------------------------------
    # ORDER BY

    def _order(
        self,
        node: ast.SelectStatement,
        columns: List[str],
        rows: List[Tuple[Any, ...]],
        envs: List[Dict[str, Row]],
        scope: _Scope,
        aggregated: bool,
    ) -> List[Tuple[Any, ...]]:
        column_index = {name: index for index, name in enumerate(columns)}

        def key_for(pair):
            row, env = pair
            key = []
            for item in node.order_by:
                expr = item.expr
                value: Any
                if (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name.lower() in column_index
                ):
                    value = row[column_index[expr.name.lower()]]
                elif aggregated:
                    raise EngineError(
                        "ORDER BY on grouped queries must reference output columns"
                    )
                else:
                    value = self.value(expr, scope.child(env))
                sort_value = _sort_key(value)
                key.append(
                    _Reversed(sort_value) if item.descending else sort_value
                )
            return key

        if len(envs) != len(rows):
            envs = [{} for _ in rows]
        paired = sorted(zip(rows, envs), key=key_for)
        return [row for row, _ in paired]

    # ------------------------------------------------------------------
    # Expression evaluation

    def value(self, expr: ast.Expression, scope: _Scope) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.python_value()
        if isinstance(expr, ast.ColumnRef):
            return scope.resolve(expr.table, expr.name)
        if isinstance(expr, ast.Variable):
            raise EngineError(
                f"unbound variable @{expr.name}: the engine executes "
                "instantiated statements, not templates"
            )
        if isinstance(expr, ast.UnaryOp):
            operand = self.value(expr.operand, scope)
            return None if operand is None else -_numeric(operand)
        if isinstance(expr, ast.BinaryOp):
            left = self.value(expr.left, scope)
            right = self.value(expr.right, scope)
            return self._binary(expr.op, left, right)
        if isinstance(expr, ast.Comparison):
            return self._compare(
                expr.op, self.value(expr.left, scope), self.value(expr.right, scope)
            )
        if isinstance(expr, (ast.And, ast.Or, ast.Not)):
            return self._truth(expr, scope)
        if isinstance(expr, ast.InList):
            return self._in_list(expr, scope)
        if isinstance(expr, ast.InSubquery):
            return self._in_subquery(expr, scope)
        if isinstance(expr, ast.Between):
            target = self.value(expr.expr, scope)
            low = self.value(expr.low, scope)
            high = self.value(expr.high, scope)
            if target is None or low is None or high is None:
                return False
            verdict = low <= target <= high
            return not verdict if expr.negated else verdict
        if isinstance(expr, ast.IsNull):
            is_null = self.value(expr.expr, scope) is None
            return not is_null if expr.negated else is_null
        if isinstance(expr, ast.Like):
            target = self.value(expr.expr, scope)
            pattern = self.value(expr.pattern, scope)
            if target is None or pattern is None:
                return False
            verdict = bool(_like_pattern(str(pattern)).match(str(target)))
            return not verdict if expr.negated else verdict
        if isinstance(expr, ast.Exists):
            result = self.select(expr.subquery, scope)
            verdict = bool(result.rows)
            return not verdict if expr.negated else verdict
        if isinstance(expr, ast.ScalarSubquery):
            result = self.select(expr.select, scope)
            if not result.rows:
                return None
            if len(result.rows) > 1 or len(result.rows[0]) != 1:
                raise EngineError("scalar subquery returned more than one value")
            return result.rows[0][0]
        if isinstance(expr, ast.CaseExpression):
            return self._case(expr, scope)
        if isinstance(expr, ast.Cast):
            return self._cast(expr, scope)
        if isinstance(expr, ast.FunctionCall):
            return self._scalar_function(expr, scope)
        if isinstance(expr, ast.Star):
            raise EngineError("* is only valid in SELECT lists and count(*)")
        raise EngineError(f"cannot evaluate {type(expr).__name__}")

    def _truth(self, expr: ast.Expression, scope: _Scope) -> bool:
        if isinstance(expr, ast.And):
            return self._truth(expr.left, scope) and self._truth(expr.right, scope)
        if isinstance(expr, ast.Or):
            return self._truth(expr.left, scope) or self._truth(expr.right, scope)
        if isinstance(expr, ast.Not):
            return not self._truth(expr.operand, scope)
        return bool(self.value(expr, scope))

    def _binary(self, op: str, left: Any, right: Any) -> Any:
        if left is None or right is None:
            return None
        if op == "||":
            return str(left) + str(right)
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return str(left) + str(right)  # T-SQL string +
            return left + right
        if op == "-":
            return _numeric(left) - _numeric(right)
        if op == "*":
            return _numeric(left) * _numeric(right)
        if op == "/":
            divisor = _numeric(right)
            if divisor == 0:
                raise EngineError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left // right  # SQL integer division
            return _numeric(left) / divisor
        if op == "%":
            return _numeric(left) % _numeric(right)
        raise EngineError(f"unknown operator {op!r}")

    def _compare(self, op: str, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False  # SQL: comparisons with NULL are never true
        if isinstance(left, str) and isinstance(right, str):
            left, right = left.lower(), right.lower()
        try:
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as error:
            raise EngineError(f"type mismatch in comparison: {error}") from error
        raise EngineError(f"unknown comparison {op!r}")

    def _in_list(self, expr: ast.InList, scope: _Scope) -> bool:
        target = self.value(expr.expr, scope)
        if target is None:
            return False
        # Constant lists (the DW-Stifle rewrites emit big ones) are
        # evaluated as a set once per statement instead of per row.
        if all(isinstance(item, ast.Literal) for item in expr.items):
            key = id(expr)
            members = self._in_list_sets.get(key)
            if members is None:
                members = frozenset(
                    _Executor._normalize_value(item.python_value())
                    for item in expr.items  # type: ignore[union-attr]
                )
                self._in_list_sets[key] = members
            hit = _Executor._normalize_value(target) in members
            return not hit if expr.negated else hit
        for item in expr.items:
            if self._compare("=", target, self.value(item, scope)):
                return not expr.negated
        return expr.negated

    @staticmethod
    def _normalize_value(value):
        """Hash key matching :meth:`_compare`'s equality semantics."""
        if isinstance(value, str):
            return value.lower()
        if isinstance(value, bool):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def _in_subquery(self, expr: ast.InSubquery, scope: _Scope) -> bool:
        target = self.value(expr.expr, scope)
        if target is None:
            return False
        result = self.select(expr.subquery, scope)
        if result.rows and len(result.rows[0]) != 1:
            raise EngineError("IN subquery must return a single column")
        for row in result.rows:
            if self._compare("=", target, row[0]):
                return not expr.negated
        return expr.negated

    def _case(self, expr: ast.CaseExpression, scope: _Scope) -> Any:
        if expr.operand is not None:
            operand = self.value(expr.operand, scope)
            for when in expr.whens:
                if self._compare("=", operand, self.value(when.condition, scope)):
                    return self.value(when.result, scope)
        else:
            for when in expr.whens:
                if self._truth(when.condition, scope):
                    return self.value(when.result, scope)
        if expr.else_result is not None:
            return self.value(expr.else_result, scope)
        return None

    def _cast(self, expr: ast.Cast, scope: _Scope) -> Any:
        value = self.value(expr.expr, scope)
        if value is None:
            return None
        type_name = expr.type_name.lower()
        if type_name.startswith(("int", "bigint", "smallint", "tinyint")):
            return int(float(value))
        if type_name.startswith(("float", "real", "decimal", "numeric")):
            return float(value)
        if type_name.startswith(("varchar", "nvarchar", "char", "text")):
            return str(value)
        raise EngineError(f"unsupported CAST target {expr.type_name!r}")

    def _scalar_function(self, call: ast.FunctionCall, scope: _Scope) -> Any:
        name = call.name.lower()
        if name in AGGREGATE_FUNCTIONS:
            raise EngineError(
                f"aggregate {name} outside GROUP BY context"
            )
        args = [self.value(arg, scope) for arg in call.args]
        if name in ("isnull", "coalesce"):
            for arg in args:
                if arg is not None:
                    return arg
            return None
        if any(arg is None for arg in args):
            return None
        if name == "abs":
            return abs(_numeric(args[0]))
        if name == "round":
            digits = int(_numeric(args[1])) if len(args) > 1 else 0
            return round(_numeric(args[0]), digits)
        if name == "floor":
            return math.floor(_numeric(args[0]))
        if name == "ceiling":
            return math.ceil(_numeric(args[0]))
        if name == "power":
            return _numeric(args[0]) ** _numeric(args[1])
        if name == "sqrt":
            return math.sqrt(_numeric(args[0]))
        if name == "exp":
            return math.exp(_numeric(args[0]))
        if name == "log":
            return math.log(_numeric(args[0]))
        if name == "log10":
            return math.log10(_numeric(args[0]))
        if name == "sign":
            value = _numeric(args[0])
            return (value > 0) - (value < 0)
        if name == "upper":
            return str(args[0]).upper()
        if name == "lower":
            return str(args[0]).lower()
        if name == "len":
            return len(str(args[0]))
        if name == "ltrim":
            return str(args[0]).lstrip()
        if name == "rtrim":
            return str(args[0]).rstrip()
        if name == "str":
            return str(args[0])
        raise EngineError(f"unknown function {call.name!r}")


class _Reversed:
    """Inverts comparison order — DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
