"""Deterministic cost model for the Section 6.3 runtime experiment.

The paper measured wall-clock time on the live SkyServer database: 10 222
stifle queries took 4 450 s, their 254 rewrites 152 s — 29.3× faster.  The
dominant effect is *per-statement fixed cost* (network round trip, parsing,
planning, result shipping) amortised over far fewer statements; per-row
work barely changes because the rewrites return (essentially) the same
rows.

The model charges

    cost(statement) = statement_overhead
                    + rows_scanned  * scan_cost
                    + rows_returned * return_cost

with defaults calibrated so the original-vs-rewritten *ratio* lands in the
paper's regime for SkyServer-shaped stifle runs.  Absolute numbers are
meaningless by design; the benchmark reports the ratio and the statement
reduction factor, which are the paper's claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from .executor import ExecStats


@dataclass(frozen=True)
class CostModel:
    """Per-statement cost parameters (arbitrary time units; think
    milliseconds of a remote database round trip).

    :param statement_overhead: fixed cost per statement — connection,
        parse, plan, result-set setup.
    :param scan_cost: per row scanned from storage.
    :param return_cost: per row shipped back to the client.
    """

    statement_overhead: float = 400.0
    scan_cost: float = 0.01
    return_cost: float = 1.0

    def cost(self, stats: ExecStats) -> float:
        """Total modelled cost of the work recorded in ``stats``."""
        return (
            self.statement_overhead * stats.statements
            + self.scan_cost * stats.rows_scanned
            + self.return_cost * stats.rows_returned
        )


@dataclass(frozen=True)
class RuntimeComparison:
    """Original-vs-rewritten workload comparison (Section 6.3's numbers)."""

    original_statements: int
    rewritten_statements: int
    original_cost: float
    rewritten_cost: float

    @property
    def statement_reduction(self) -> float:
        """The paper's "reduction by a factor of 40"."""
        if self.rewritten_statements == 0:
            return float("inf")
        return self.original_statements / self.rewritten_statements

    @property
    def speedup(self) -> float:
        """The paper's "29.27 times faster"."""
        if self.rewritten_cost == 0:
            return float("inf")
        return self.original_cost / self.rewritten_cost


def compare_workloads(
    original: ExecStats, rewritten: ExecStats, model: CostModel = CostModel()
) -> RuntimeComparison:
    """Build the comparison from two executed workloads' stats."""
    return RuntimeComparison(
        original_statements=original.statements,
        rewritten_statements=rewritten.statements,
        original_cost=model.cost(original),
        rewritten_cost=model.cost(rewritten),
    )
