"""In-memory tables: row storage with schema validation and hash indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from .catalog import TableSchema

Row = Dict[str, Any]


def index_key(value: Any) -> Any:
    """Hash key under SQL equality semantics (case-insensitive strings,
    5 = 5.0).  Must match the executor's ``_compare``."""
    if isinstance(value, str):
        return value.lower()
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class Table:
    """One in-memory table.

    Rows are dicts keyed by *lower-cased* column name, normalised on
    insert so that the executor's case-insensitive column resolution is a
    plain dict lookup.  Hash indexes are built lazily per column on the
    first :meth:`lookup` and invalidated by inserts — the equality point
    lookups the Stifle bots hammer the database with then cost O(1)
    instead of a table scan, like on the indexed production system the
    paper measured.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Row] = ()) -> None:
        self.schema = schema
        self._columns = [column.name.lower() for column in schema.columns]
        self._rows: List[Row] = []
        self._indexes: Dict[str, Dict[Any, List[Row]]] = {}
        for row in rows:
            self.insert(row)

    def insert(self, row: Row) -> None:
        """Insert a row; missing columns become None, unknown ones fail."""
        normalized = {key.lower(): value for key, value in row.items()}
        unknown = set(normalized) - set(self._columns)
        if unknown:
            raise KeyError(
                f"table {self.schema.name}: unknown columns {sorted(unknown)}"
            )
        self._rows.append(
            {column: normalized.get(column) for column in self._columns}
        )
        self._indexes.clear()  # lazily rebuilt on next lookup

    def lookup(self, column: str, value: Any) -> List[Row]:
        """Rows with ``column = value`` (SQL equality), via a hash index.

        NULL never equals anything, so ``value=None`` returns no rows.
        """
        column = column.lower()
        if column not in self._columns:
            raise KeyError(
                f"table {self.schema.name} has no column {column!r}"
            )
        if value is None:
            return []
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for row in self._rows:
                stored = row[column]
                if stored is None:
                    continue
                index.setdefault(index_key(stored), []).append(row)
            self._indexes[column] = index
        return list(index.get(index_key(value), ()))

    def has_column(self, name: str) -> bool:
        return name.lower() in self._columns

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def rows(self) -> List[Row]:
        return list(self._rows)

    def column_names(self) -> List[str]:
        """Lower-cased column names, in schema order."""
        return list(self._columns)
