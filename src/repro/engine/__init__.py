"""In-memory relational engine: catalog, storage, executor, cost model."""

from .catalog import Catalog, Column, TableSchema
from .cost import CostModel, RuntimeComparison, compare_workloads
from .executor import Database, EngineError, ExecStats, ResultSet
from .functions import angular_distance_arcmin, register_sky_functions
from .table import Row, Table

__all__ = [
    "Catalog",
    "Column",
    "TableSchema",
    "CostModel",
    "RuntimeComparison",
    "compare_workloads",
    "Database",
    "EngineError",
    "ExecStats",
    "ResultSet",
    "angular_distance_arcmin",
    "register_sky_functions",
    "Row",
    "Table",
]
