"""Solving rules for the extended antipattern catalog.

Three of the extended antipatterns have mechanical solutions:

* **Redundant-Distinct** — drop the DISTINCT (the GROUP BY already
  guarantees it).
* **Having-No-Aggregate** — move the aggregate-free HAVING predicate into
  the WHERE clause (AND-ed with any existing one).
* **Implicit-Columns** — expand ``*`` / ``t.*`` into the explicit column
  list; this needs schema knowledge, so the rule is a *factory* taking a
  catalog.

``install_extended_rules`` merges them into a rule table for
:func:`repro.rewrite.solver.solve`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.catalog import Catalog
from ..patterns.models import ParsedQuery
from ..sqlparser import ast_nodes as ast
from .solver import REWRITE_RULES, RewriteRule
from .stifle_rewrites import RewriteNotApplicable
from ..antipatterns.extended import (
    HAVING_NO_AGGREGATE,
    IMPLICIT_COLUMNS,
    REDUNDANT_DISTINCT,
)


def _single_select(query: ParsedQuery) -> ast.SelectStatement:
    if not isinstance(query.statement, ast.SelectStatement):
        raise RewriteNotApplicable("UNION statements are not rewritten")
    return query.statement


def rewrite_redundant_distinct(
    queries: Sequence[ParsedQuery],
) -> ast.Statement:
    """Drop DISTINCT from a grouped query."""
    select = _single_select(queries[0])
    if not (select.distinct and select.group_by):
        raise RewriteNotApplicable("query lost its redundant-distinct shape")
    return ast.SelectStatement(
        items=select.items,
        from_sources=select.from_sources,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        distinct=False,
        top=select.top,
    )


def rewrite_having_no_aggregate(
    queries: Sequence[ParsedQuery],
) -> ast.Statement:
    """Move an aggregate-free HAVING condition into the WHERE clause."""
    select = _single_select(queries[0])
    if select.having is None:
        raise RewriteNotApplicable("query has no HAVING clause")
    where = select.having
    if select.where is not None:
        where = ast.And(left=select.where, right=where)
    return ast.SelectStatement(
        items=select.items,
        from_sources=select.from_sources,
        where=where,
        group_by=select.group_by,
        having=None,
        order_by=select.order_by,
        distinct=select.distinct,
        top=select.top,
    )


def make_implicit_columns_rule(catalog: Catalog) -> RewriteRule:
    """Build the star-expansion rule for a concrete schema."""

    def resolve_columns(source: ast.TableSource) -> List[ast.SelectItem]:
        if isinstance(source, ast.TableName):
            schema = catalog.get(source.name)
            if schema is None:
                raise RewriteNotApplicable(
                    f"table {source.name!r} is not in the catalog"
                )
            qualifier = source.alias or source.name
            return [
                ast.SelectItem(
                    expr=ast.ColumnRef(name=column.name, table=qualifier)
                )
                for column in schema.columns
            ]
        if isinstance(source, ast.Join):
            return resolve_columns(source.left) + resolve_columns(source.right)
        raise RewriteNotApplicable(
            "star expansion handles base tables and joins only"
        )

    def alias_columns(
        sources: Sequence[ast.TableSource], alias: str
    ) -> List[ast.SelectItem]:
        for source in sources:
            if isinstance(source, ast.TableName) and (
                (source.alias or source.name).lower() == alias.lower()
            ):
                return resolve_columns(source)
            if isinstance(source, ast.Join):
                try:
                    return alias_columns([source.left, source.right], alias)
                except RewriteNotApplicable:
                    continue
        raise RewriteNotApplicable(f"unknown alias {alias!r} for star expansion")

    def rule(queries: Sequence[ParsedQuery]) -> ast.Statement:
        select = _single_select(queries[0])
        items: List[ast.SelectItem] = []
        expanded = False
        for item in select.items:
            expr = item.expr
            if isinstance(expr, ast.Star):
                expanded = True
                if expr.table is None:
                    for source in select.from_sources:
                        items.extend(resolve_columns(source))
                else:
                    items.extend(alias_columns(select.from_sources, expr.table))
            else:
                items.append(item)
        if not expanded:
            raise RewriteNotApplicable("no star projection found")
        return ast.SelectStatement(
            items=tuple(items),
            from_sources=select.from_sources,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
            order_by=select.order_by,
            distinct=select.distinct,
            top=select.top,
        )

    return rule


def install_extended_rules(
    catalog: Optional[Catalog] = None,
) -> Dict[str, RewriteRule]:
    """Rule table with the base rules plus the extended ones.

    :param catalog: when given, star expansion (Implicit-Columns) is
        enabled; without a schema that antipattern stays detect-only.
    """
    rules: Dict[str, RewriteRule] = dict(REWRITE_RULES)
    rules[REDUNDANT_DISTINCT] = rewrite_redundant_distinct
    rules[HAVING_NO_AGGREGATE] = rewrite_having_no_aggregate
    if catalog is not None:
        rules[IMPLICIT_COLUMNS] = make_implicit_columns_rule(catalog)
    return rules
