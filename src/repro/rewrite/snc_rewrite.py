"""SNC rewrite — Definition 16's solving solution (Section 5.4).

``expr = NULL`` becomes ``expr IS NULL``; ``expr <> NULL`` (and the
``!= NULL`` spelling, which the parser normalises to ``<>``) becomes
``expr IS NOT NULL``.  The NULL literal may stand on either side.
"""

from __future__ import annotations

from typing import Optional

from ..sqlparser import ast_nodes as ast
from ..sqlparser.visitor import transform


def _is_null_literal(node: ast.Expression) -> bool:
    return isinstance(node, ast.Literal) and node.kind == "null"


def rewrite_snc_expression(expr: ast.Expression) -> ast.Expression:
    """Rewrite every NULL-comparison inside ``expr``."""

    def rule(node: ast.Node) -> Optional[ast.Node]:
        if not isinstance(node, ast.Comparison) or node.op not in ("=", "<>"):
            return None
        negated = node.op == "<>"
        if _is_null_literal(node.right) and not _is_null_literal(node.left):
            return ast.IsNull(expr=node.left, negated=negated)
        if _is_null_literal(node.left) and not _is_null_literal(node.right):
            return ast.IsNull(expr=node.right, negated=negated)
        return None

    return transform(expr, rule)


def rewrite_snc_statement(statement: ast.Statement) -> ast.Statement:
    """Rewrite NULL-comparisons in the statement's WHERE/HAVING clauses."""

    def rule(node: ast.Node) -> Optional[ast.Node]:
        if isinstance(node, ast.SelectStatement):
            changed = False
            where, having = node.where, node.having
            if where is not None:
                new_where = rewrite_snc_expression(where)
                changed |= new_where is not where
                where = new_where
            if having is not None:
                new_having = rewrite_snc_expression(having)
                changed |= new_having is not having
                having = new_having
            if changed:
                return ast.SelectStatement(
                    items=node.items,
                    from_sources=node.from_sources,
                    where=where,
                    group_by=node.group_by,
                    having=having,
                    order_by=node.order_by,
                    distinct=node.distinct,
                    top=node.top,
                )
        return None

    return transform(statement, rule)
