"""Solving antipatterns — the "Solve antipatterns" stage of Fig. 1.

The solver walks the detected instances in log order (Section 5.5: *solving
starts with the antipattern which appears in the log first*), applies the
registered rewrite rule of each solvable instance, and emits the clean
query log: the run's queries are replaced by a single rewritten statement
placed at the run's first position (cf. Table 2 → Table 3).

Instances whose queries were already consumed by an earlier solved
instance are skipped — that is the paper's conflict-resolution rule for
queries belonging to multiple solvable antipatterns.  Unsolvable instances
(CTH candidates) are recorded in the statistics and left in the log.

New rewrites plug in via :data:`REWRITE_RULES` (Section 5.4's "include it
in the step 'Solve antipatterns'").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..antipatterns.types import (
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    SNC,
    AntipatternInstance,
)
from ..log.models import LogRecord, QueryLog
from ..patterns.models import ParsedQuery
from ..sqlparser import ast_nodes as ast
from ..sqlparser.formatter import format_sql
from .snc_rewrite import rewrite_snc_statement
from .stifle_rewrites import (
    RewriteNotApplicable,
    rewrite_df_stifle,
    rewrite_ds_stifle,
    rewrite_dw_stifle,
)

#: A rewrite rule: queries of one instance → replacement statement.
RewriteRule = Callable[[Sequence[ParsedQuery]], ast.Statement]


def _snc_rule(queries: Sequence[ParsedQuery]) -> ast.Statement:
    rewritten = rewrite_snc_statement(queries[0].statement)
    if rewritten == queries[0].statement:
        raise RewriteNotApplicable("no NULL comparison found to rewrite")
    return rewritten


#: Label → rewrite rule.  Extending the framework with a new solvable
#: antipattern means registering its rule here (or passing a custom map
#: to :func:`solve`).
REWRITE_RULES: Dict[str, RewriteRule] = {
    DW_STIFLE: rewrite_dw_stifle,
    DS_STIFLE: rewrite_ds_stifle,
    DF_STIFLE: rewrite_df_stifle,
    SNC: _snc_rule,
}


@dataclass
class SolvedInstance:
    """Bookkeeping for one solved instance."""

    instance: AntipatternInstance
    replacement_sql: str
    replaced_seqs: Tuple[int, ...]


@dataclass
class SolveResult:
    """Outcome of the solving stage.

    :param log: the clean query log.
    :param solved: successfully rewritten instances.
    :param skipped_conflicts: instances skipped because an earlier solved
        instance already consumed some of their queries.
    :param not_applicable: solvable-by-label instances whose concrete
        shape the rewrite rule refused (kept in the log).
    :param unsolvable: detected instances with no rewrite rule (CTH).
    """

    log: QueryLog
    solved: List[SolvedInstance] = field(default_factory=list)
    skipped_conflicts: List[AntipatternInstance] = field(default_factory=list)
    not_applicable: List[AntipatternInstance] = field(default_factory=list)
    unsolvable: List[AntipatternInstance] = field(default_factory=list)

    def solved_counts(self) -> Dict[str, int]:
        """Number of solved instances per antipattern label."""
        counts: Dict[str, int] = {}
        for solved in self.solved:
            label = solved.instance.label
            counts[label] = counts.get(label, 0) + 1
        return counts

    @property
    def queries_removed(self) -> int:
        """How many statements the rewrites eliminated."""
        return sum(len(s.replaced_seqs) - 1 for s in self.solved)


def solve(
    log: QueryLog,
    instances: Sequence[AntipatternInstance],
    rules: Optional[Dict[str, RewriteRule]] = None,
) -> SolveResult:
    """Rewrite all solvable antipattern instances of ``log``.

    ``instances`` must reference records of ``log`` by their ``seq``
    numbers (the pipeline guarantees this).
    """
    if rules is None:
        rules = REWRITE_RULES

    ordered = sorted(instances, key=lambda inst: (inst.start_seq, inst.label))
    consumed: Set[int] = set()
    replacement_at: Dict[int, str] = {}
    dropped: Set[int] = set()

    result = SolveResult(log=log)  # placeholder; replaced below
    for instance in ordered:
        if not instance.solvable:
            result.unsolvable.append(instance)
            continue
        rule = rules.get(instance.label)
        if rule is None:
            result.unsolvable.append(instance)
            continue
        seqs = instance.record_seqs()
        if any(seq in consumed for seq in seqs):
            result.skipped_conflicts.append(instance)
            continue
        try:
            replacement = rule(instance.queries)
        except RewriteNotApplicable:
            result.not_applicable.append(instance)
            continue
        sql = format_sql(replacement)
        consumed.update(seqs)
        replacement_at[seqs[0]] = sql
        dropped.update(seqs[1:])
        result.solved.append(
            SolvedInstance(
                instance=instance, replacement_sql=sql, replaced_seqs=seqs
            )
        )

    records: List[LogRecord] = []
    for record in log:
        if record.seq in dropped:
            continue
        if record.seq in replacement_at:
            records.append(record.with_sql(replacement_at[record.seq]))
        else:
            records.append(record)
    result.log = QueryLog(records)
    return result


def remove(
    log: QueryLog, instances: Sequence[AntipatternInstance]
) -> QueryLog:
    """The *removal* variant used by the downstream study (Section 6.9):
    drop every query belonging to any detected antipattern instance
    instead of rewriting.  The result is smaller than the clean log."""
    doomed: Set[int] = set()
    for instance in instances:
        doomed.update(instance.record_seqs())
    return log.filter(lambda record: record.seq not in doomed)
