"""Rewrite rules for the three solvable Stifle classes (Section 4.2.1).

Each rule takes the queries of one detected run and produces a single
replacement SELECT statement:

* **DW-Stifle** → one query whose WHERE merges all equality constants into
  an ``IN`` list (Example 10).  The filter column is added to the SELECT
  list when missing, exactly as the paper's example does — otherwise the
  merged result rows could no longer be attributed to their lookup keys.
* **DS-Stifle** → one query with the union of the SELECT lists
  (Example 12); duplicate items are collapsed.
* **DF-Stifle** → one query joining the FROM tables on the shared filter
  column (Example 14); every query's items are qualified with its table's
  alias so the merged projection stays unambiguous.

A rule may conclude the run is too complex to rewrite mechanically (e.g. a
DF run over derived tables); it then raises :class:`RewriteNotApplicable`
and the solver leaves the instance in the log, counted as detected-but-
unsolved.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..patterns.models import ParsedQuery
from ..sqlparser import ast_nodes as ast
from ..sqlparser.formatter import format_expression
from ..sqlparser.visitor import transform


class RewriteNotApplicable(Exception):
    """The run's shape is outside what the mechanical rewrite handles."""


def _single_select(query: ParsedQuery) -> ast.SelectStatement:
    if not isinstance(query.statement, ast.SelectStatement):
        raise RewriteNotApplicable("UNION statements are not rewritten")
    return query.statement


def _filter_predicate(query: ParsedQuery):
    predicate = query.equality_filter
    if predicate is None or predicate.column is None or predicate.value is None:
        raise RewriteNotApplicable("query lost its single-equality shape")
    return predicate


def _dedupe_items(
    items: Sequence[ast.SelectItem],
) -> Tuple[ast.SelectItem, ...]:
    seen = set()
    result: List[ast.SelectItem] = []
    for item in items:
        key = (format_expression(item.expr).lower(), (item.alias or "").lower())
        if key not in seen:
            seen.add(key)
            result.append(item)
    return tuple(result)


def _selects_column(
    items: Sequence[ast.SelectItem], column: ast.ColumnRef
) -> bool:
    target = column.name.lower()
    for item in items:
        expr = item.expr
        if isinstance(expr, ast.Star):
            return True
        if isinstance(expr, ast.ColumnRef) and expr.name.lower() == target:
            return True
    return False


# ----------------------------------------------------------------------
# DW-Stifle


def rewrite_dw_stifle(queries: Sequence[ParsedQuery]) -> ast.SelectStatement:
    """Merge a DW run into one IN-list query (Example 9 → Example 10)."""
    if len(queries) < 2:
        raise RewriteNotApplicable("a stifle run needs at least two queries")
    first = _single_select(queries[0])
    column = _filter_predicate(queries[0]).column

    values: List[ast.Expression] = []
    seen = set()
    for query in queries:
        predicate = _filter_predicate(query)
        if predicate.column.name.lower() != column.name.lower():
            raise RewriteNotApplicable("DW run filters differing columns")
        key = (predicate.value.kind, predicate.value.value)
        if key not in seen:
            seen.add(key)
            values.append(predicate.value)

    items = first.items
    if not _selects_column(items, column):
        items = (ast.SelectItem(expr=column),) + items

    if len(values) == 1:
        where: ast.Expression = ast.Comparison(op="=", left=column, right=values[0])
    else:
        where = ast.InList(expr=column, items=tuple(values))
    return ast.SelectStatement(
        items=items,
        from_sources=first.from_sources,
        where=where,
        group_by=first.group_by,
        having=first.having,
        order_by=first.order_by,
        distinct=first.distinct,
        top=first.top,
    )


# ----------------------------------------------------------------------
# DS-Stifle


def rewrite_ds_stifle(queries: Sequence[ParsedQuery]) -> ast.SelectStatement:
    """Union the SELECT lists of a DS run (Example 11 → Example 12)."""
    if len(queries) < 2:
        raise RewriteNotApplicable("a stifle run needs at least two queries")
    first = _single_select(queries[0])
    merged: List[ast.SelectItem] = []
    for query in queries:
        merged.extend(_single_select(query).items)
    return ast.SelectStatement(
        items=_dedupe_items(merged),
        from_sources=first.from_sources,
        where=first.where,
        group_by=first.group_by,
        having=first.having,
        order_by=first.order_by,
        distinct=first.distinct,
        top=first.top,
    )


# ----------------------------------------------------------------------
# DF-Stifle


def _sole_table(query: ParsedQuery) -> ast.TableName:
    select = _single_select(query)
    if len(select.from_sources) != 1 or not isinstance(
        select.from_sources[0], ast.TableName
    ):
        raise RewriteNotApplicable(
            "DF rewrite handles runs of single-base-table queries only"
        )
    if select.group_by or select.having or select.order_by or select.top:
        raise RewriteNotApplicable("DF rewrite does not merge grouped queries")
    return select.from_sources[0]


def _qualify(expr: ast.Expression, alias: str) -> ast.Expression:
    """Qualify every unqualified column of ``expr`` with ``alias``."""

    def rule(node: ast.Node):
        if isinstance(node, ast.ColumnRef) and node.table is None:
            return ast.ColumnRef(name=node.name, table=alias)
        if isinstance(node, ast.Star) and node.table is None:
            return ast.Star(table=alias)
        return None

    return transform(expr, rule)


def rewrite_df_stifle(queries: Sequence[ParsedQuery]) -> ast.SelectStatement:
    """Join the tables of a DF run on the shared key (Example 13 → 14)."""
    if len(queries) < 2:
        raise RewriteNotApplicable("a stifle run needs at least two queries")
    column = _filter_predicate(queries[0]).column
    value = _filter_predicate(queries[0]).value

    tables: List[Tuple[ast.TableName, ParsedQuery]] = []
    seen_tables = set()
    for query in queries:
        table = _sole_table(query)
        if table.qualified_name() not in seen_tables:
            seen_tables.add(table.qualified_name())
            tables.append((table, query))
    if len(tables) < 2:
        raise RewriteNotApplicable("DF run references a single table")

    aliases = [f"t{index}" for index in range(len(tables))]
    items: List[ast.SelectItem] = []
    for (table, query), alias in zip(tables, aliases):
        for item in _single_select(query).items:
            items.append(
                ast.SelectItem(
                    expr=_qualify(item.expr, alias), alias=item.alias
                )
            )

    source: ast.TableSource = ast.TableName(
        name=tables[0][0].name, schema=tables[0][0].schema, alias=aliases[0]
    )
    key_name = column.name
    for (table, _), alias in zip(tables[1:], aliases[1:]):
        condition = ast.Comparison(
            op="=",
            left=ast.ColumnRef(name=key_name, table=aliases[0]),
            right=ast.ColumnRef(name=key_name, table=alias),
        )
        source = ast.Join(
            left=source,
            right=ast.TableName(name=table.name, schema=table.schema, alias=alias),
            kind="INNER",
            condition=condition,
        )

    where = ast.Comparison(
        op="=",
        left=ast.ColumnRef(name=key_name, table=aliases[0]),
        right=value,
    )
    return ast.SelectStatement(
        items=_dedupe_items(items), from_sources=(source,), where=where
    )
