"""Antipattern solving: rewrite rules and the solver (Sections 4.2, 5.5)."""

from .snc_rewrite import rewrite_snc_expression, rewrite_snc_statement
from .solver import (
    REWRITE_RULES,
    RewriteRule,
    SolveResult,
    SolvedInstance,
    remove,
    solve,
)
from .stifle_rewrites import (
    RewriteNotApplicable,
    rewrite_df_stifle,
    rewrite_ds_stifle,
    rewrite_dw_stifle,
)

__all__ = [
    "rewrite_snc_expression",
    "rewrite_snc_statement",
    "REWRITE_RULES",
    "RewriteRule",
    "SolveResult",
    "SolvedInstance",
    "remove",
    "solve",
    "RewriteNotApplicable",
    "rewrite_df_stifle",
    "rewrite_ds_stifle",
    "rewrite_dw_stifle",
]
