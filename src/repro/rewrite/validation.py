"""Engine-backed validation of antipattern rewrites.

The paper argues its rewrites preserve the queries' information need; with
an executable engine we can *check* it: run the original run and its
replacement against the same database and compare result sets.

Semantics per class:

* **DW-Stifle** — for every original query (filtering key = v), the
  replacement's rows with key = v, projected onto the original's columns,
  must equal the original's rows.  (The rewrite adds the key column
  precisely so this attribution is possible.)
* **DS-Stifle** — the replacement projected onto each original's columns
  must equal that original's rows (same WHERE ⇒ same row set).
* **DF-Stifle** — the replacement INNER-joins the run's tables; rows of an
  original whose key has no counterpart in *every* other table are lost.
  We therefore check the *subset* direction (every replacement row matches
  the original) and report per-query coverage — mirroring the caveat the
  paper's Example 14 carries implicitly.
* **SNC** — the original (``= NULL``) provably returns nothing under SQL
  comparison semantics; the rewrite returns the NULL rows.  Validation
  asserts the original is empty and reports the recovered row count.

Projections are matched *by output column name*; instances whose results
have unnamed or duplicated columns are reported as ``comparable=False``
rather than failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..antipatterns.types import (
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    SNC,
    AntipatternInstance,
)
from ..engine.executor import Database, EngineError, ResultSet
from .solver import SolvedInstance


@dataclass
class ValidationReport:
    """Outcome of validating one solved instance."""

    label: str
    comparable: bool
    equivalent: bool
    reason: str = ""
    per_query_coverage: List[float] = field(default_factory=list)


def _project_by_names(
    result: ResultSet, names: Sequence[str]
) -> Optional[Set[Tuple]]:
    """Rows of ``result`` projected onto ``names``; None if not possible."""
    positions = []
    lowered = [column.lower() for column in result.columns]
    for name in names:
        target = name.lower()
        if lowered.count(target) != 1:
            return None
        positions.append(lowered.index(target))
    return {tuple(row[i] for i in positions) for row in result.rows}


def _named_columns(result: ResultSet) -> Optional[List[str]]:
    lowered = [column.lower() for column in result.columns]
    if any(column.startswith("col") and column[3:].isdigit() for column in lowered):
        return None
    if len(set(lowered)) != len(lowered):
        return None
    return lowered


def validate_solved(
    database: Database, solved: SolvedInstance
) -> ValidationReport:
    """Validate one solved instance against ``database``."""
    instance = solved.instance
    label = instance.label
    try:
        originals = [
            database.execute(query.statement) for query in instance.queries
        ]
        replacement = database.execute(solved.replacement_sql)
    except EngineError as error:
        return ValidationReport(
            label=label,
            comparable=False,
            equivalent=False,
            reason=f"execution failed: {error}",
        )

    if label == SNC:
        empty = all(not result.rows for result in originals)
        return ValidationReport(
            label=label,
            comparable=True,
            equivalent=empty,
            reason=(
                f"original returned {sum(len(r.rows) for r in originals)} rows "
                f"(must be 0 under = NULL semantics); rewrite recovered "
                f"{len(replacement.rows)} rows"
            ),
        )

    if label == DW_STIFLE:
        return _validate_dw(instance, originals, replacement)
    if label in (DS_STIFLE, DF_STIFLE):
        return _validate_projection(
            label, instance, originals, replacement, subset_only=label == DF_STIFLE
        )
    return ValidationReport(
        label=label,
        comparable=False,
        equivalent=False,
        reason=f"no validation semantics for {label}",
    )


def _validate_dw(
    instance: AntipatternInstance,
    originals: List[ResultSet],
    replacement: ResultSet,
) -> ValidationReport:
    key_name = str(instance.details.get("filter_column", "")).lower()
    lowered = [column.lower() for column in replacement.columns]
    if lowered.count(key_name) != 1:
        return ValidationReport(
            label=instance.label,
            comparable=False,
            equivalent=False,
            reason=f"replacement does not expose key column {key_name!r} uniquely",
        )
    key_index = lowered.index(key_name)

    coverage: List[float] = []
    for query, original in zip(instance.queries, originals):
        names = _named_columns(original)
        if names is None:
            return ValidationReport(
                label=instance.label,
                comparable=False,
                equivalent=False,
                reason="original result has unnamed or duplicate columns",
            )
        predicate = query.equality_filter
        assert predicate is not None and predicate.value is not None
        key_value = predicate.value.python_value()
        subset = ResultSet(
            columns=replacement.columns,
            rows=[
                row
                for row in replacement.rows
                if _loose_equal(row[key_index], key_value)
            ],
        )
        projected = _project_by_names(subset, names)
        if projected is None:
            return ValidationReport(
                label=instance.label,
                comparable=False,
                equivalent=False,
                reason="replacement cannot be projected onto original columns",
            )
        original_rows = set(original.rows)
        coverage.append(
            len(projected & original_rows) / len(original_rows)
            if original_rows
            else 1.0
        )
        if projected != original_rows:
            return ValidationReport(
                label=instance.label,
                comparable=True,
                equivalent=False,
                reason=f"rows for key={key_value!r} differ",
                per_query_coverage=coverage,
            )
    return ValidationReport(
        label=instance.label,
        comparable=True,
        equivalent=True,
        per_query_coverage=coverage,
    )


def _loose_equal(left, right) -> bool:
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    return left == right


def _validate_projection(
    label: str,
    instance: AntipatternInstance,
    originals: List[ResultSet],
    replacement: ResultSet,
    *,
    subset_only: bool,
) -> ValidationReport:
    coverage: List[float] = []
    for original in originals:
        names = _named_columns(original)
        if names is None:
            return ValidationReport(
                label=label,
                comparable=False,
                equivalent=False,
                reason="original result has unnamed or duplicate columns",
            )
        projected = _project_by_names(replacement, names)
        if projected is None:
            return ValidationReport(
                label=label,
                comparable=False,
                equivalent=False,
                reason="replacement cannot be projected onto original columns",
            )
        original_rows = set(original.rows)
        covered = (
            len(projected & original_rows) / len(original_rows)
            if original_rows
            else 1.0
        )
        coverage.append(covered)
        if subset_only:
            if not projected <= original_rows:
                return ValidationReport(
                    label=label,
                    comparable=True,
                    equivalent=False,
                    reason="replacement produced rows outside the original result",
                    per_query_coverage=coverage,
                )
        elif projected != original_rows:
            return ValidationReport(
                label=label,
                comparable=True,
                equivalent=False,
                reason="projected replacement differs from original result",
                per_query_coverage=coverage,
            )
    return ValidationReport(
        label=label,
        comparable=True,
        equivalent=True,
        per_query_coverage=coverage,
    )


def validate_all(
    database: Database, solved_instances: Sequence[SolvedInstance]
) -> List[ValidationReport]:
    """Validate every solved instance; one report each, in order."""
    return [validate_solved(database, solved) for solved in solved_instances]
