"""Synthetic SkyServer-log generation.

Mixes the actor profiles of :mod:`repro.workload.profiles` over a common
timeline and emits a :class:`~repro.log.models.QueryLog` plus the planted
:class:`~repro.workload.groundtruth.GroundTruth`.

The default mixture is calibrated so the paper's headline *proportions*
come out in the generated log (SELECT share ≈ 96 %, duplicates ≈ 4–8 %,
solvable-antipattern coverage ≈ 19 %, spatial-search patterns dominating
the post-clean ranking, DW ≫ DS ≫ DF coverage).  ``scale`` multiplies all
burst counts, so log size grows roughly linearly without changing the mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import Database
from ..log.models import LogRecord, QueryLog
from .groundtruth import GroundTruth
from .profiles import Profile, SkyContext, default_profiles

#: Default bursts *per user* for each profile (scale = 1.0).
DEFAULT_BURSTS: Dict[str, int] = {
    "nearby": 30,
    "nearby-info": 25,
    "rect": 4,
    "htm-count": 30,
    "dw-stifle": 35,
    "ds-stifle": 20,
    "df-stifle": 15,
    "cth-real": 10,
    "cth-false": 8,
    "sws": 25,
    "snc": 8,
    "human": 4,
    "dup": 10,
    "noise": 12,
}

#: 2003-01-01 00:00:00 UTC — the SkyServer log's first year.
DEFAULT_START_TIME = 1041379200.0


@dataclass
class WorkloadConfig:
    """Generation parameters.

    :param seed: determinism anchor for the whole log.
    :param scale: multiplies every profile's burst count (1.0 ≈ 18k
        queries with the default mixture).
    :param duration: timeline length in seconds over which bursts are
        scattered.
    :param bursts: per-profile bursts-per-user overrides.
    :param profiles: profile set; ``None`` = all default profiles.
    """

    seed: int = 42
    scale: float = 1.0
    duration: float = 30 * 86400.0
    start_time: float = DEFAULT_START_TIME
    bursts: Dict[str, int] = field(default_factory=dict)
    profiles: Optional[Sequence[Profile]] = None

    def burst_count(self, profile: Profile, rng: random.Random) -> int:
        base = self.bursts.get(profile.name, DEFAULT_BURSTS.get(profile.name, 5))
        scaled = base * self.scale
        count = int(scaled)
        if rng.random() < (scaled - count):
            count += 1
        return count


@dataclass
class WorkloadResult:
    """A generated log with its ground truth and context."""

    log: QueryLog
    truth: GroundTruth
    context: SkyContext


def generate(
    config: WorkloadConfig = WorkloadConfig(),
    *,
    database: Optional[Database] = None,
    context: Optional[SkyContext] = None,
) -> WorkloadResult:
    """Generate a synthetic log.

    :param database: when given, constants (objids, HTM ranges, table
        names) are drawn from its actual contents, so the generated log is
        *executable* against it — required by the Section 6.3 runtime
        benchmark and the rewrite-validation tests.
    :param context: explicit context (overrides ``database``); with
        neither, a synthetic context is used (log-only experiments).
    """
    rng = random.Random(config.seed)
    if context is None:
        context = (
            SkyContext.from_database(database)
            if database is not None
            else SkyContext.synthetic(config.seed)
        )
    profiles = list(config.profiles) if config.profiles is not None else default_profiles()

    group_counter = [0]

    def next_group() -> int:
        group_counter[0] += 1
        return group_counter[0]

    # Raw rows: (timestamp, tiebreak, user, ip, session, event)
    raw: List[Tuple[float, int, str, str, str, object]] = []
    tiebreak = 0
    session_counter = 0
    user_profiles: Dict[str, str] = {}
    for profile in profiles:
        for user, ip in profile.users(rng):
            user_profiles[user] = profile.name
            burst_count = config.burst_count(profile, rng)
            for _ in range(burst_count):
                session_counter += 1
                session = f"sess-{session_counter}"
                start = config.start_time + rng.uniform(0.0, config.duration)
                clock = start
                for event in profile.burst(rng, context, next_group):
                    clock += event.gap
                    raw.append((clock, tiebreak, user, ip, session, event))
                    tiebreak += 1

    raw.sort(key=lambda row: (row[0], row[1]))

    truth = GroundTruth(user_profiles=user_profiles)
    records: List[LogRecord] = []
    for seq, (timestamp, _, user, ip, session, event) in enumerate(raw):
        records.append(
            LogRecord(
                seq=seq,
                sql=event.sql,  # type: ignore[attr-defined]
                timestamp=timestamp,
                user=user,
                ip=ip,
                session=session,
            )
        )
        truth.record(
            seq,
            event.truth,  # type: ignore[attr-defined]
            event.group,  # type: ignore[attr-defined]
            event.cth_real,  # type: ignore[attr-defined]
        )
    return WorkloadResult(log=QueryLog(records), truth=truth, context=context)


def generate_log(seed: int = 42, scale: float = 1.0) -> QueryLog:
    """Convenience: just the log, default mixture."""
    return generate(WorkloadConfig(seed=seed, scale=scale)).log
