"""Synthetic SkyServer schema and database.

The case study's query shapes (Tables 6, 7, 9, 10) touch a small core of
the SDSS schema: the photometric catalogs ``photoprimary`` /
``photoobjall``, the spectroscopic ``specobjall`` (with its ``bestobjid``
link back to photometry), and the metadata table ``dbobjects`` the web UI
browses.  We synthesise exactly those, with

* equatorial positions drawn from a mixture of sky "clusters" plus a
  uniform background — so spatial searches return realistically skewed
  result sizes and the downstream clustering analysis has structure to
  find;
* per-band pixel coordinates ``rowc_g/colc_g`` … — the columns the
  paper's dominant DW-Stifle antipatterns fetch (Table 6);
* HTM-like ids that are *spatially ordered* (by design, a space-filling
  index), so HTM range scans correspond to sky regions.

Everything is deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from ..engine.catalog import Catalog, Column, TableSchema
from ..engine.executor import Database
from ..engine.functions import register_sky_functions

#: Photometric object types (SkyServer: 3 = galaxy, 6 = star).
TYPE_GALAXY = 3
TYPE_STAR = 6

_PHOTO_COLUMNS: Tuple[Column, ...] = (
    Column("objid", "bigint", is_key=True),
    Column("ra", "float"),
    Column("dec", "float"),
    Column("run", "int"),
    Column("rerun", "int"),
    Column("camcol", "int"),
    Column("field", "int"),
    Column("type", "int"),
    Column("htmid", "bigint", is_key=True),
    Column("rowc_g", "float"),
    Column("colc_g", "float"),
    Column("rowc_r", "float"),
    Column("colc_r", "float"),
    Column("rowc_i", "float"),
    Column("colc_i", "float"),
    Column("u", "float"),
    Column("g", "float"),
    Column("r", "float"),
    Column("i", "float"),
    Column("z", "float"),
    Column("status", "int"),
)


def skyserver_catalog() -> Catalog:
    """The synthetic SkyServer catalog (schemas only, no data)."""
    return Catalog(
        [
            TableSchema("photoprimary", _PHOTO_COLUMNS),
            TableSchema("photoobjall", _PHOTO_COLUMNS),
            TableSchema(
                "specobjall",
                (
                    Column("specobjid", "bigint", is_key=True),
                    Column("bestobjid", "bigint", is_key=True),
                    Column("plate", "int"),
                    Column("fiberid", "int"),
                    Column("mjd", "int"),
                    Column("z", "float"),
                    Column("zerr", "float"),
                    Column("specclass", "int"),
                ),
            ),
            TableSchema(
                "dbobjects",
                (
                    Column("name", "varchar", is_key=True),
                    Column("type", "varchar"),
                    Column("description", "varchar"),
                    Column("text", "varchar"),
                    Column("access", "varchar"),
                ),
            ),
        ]
    )


#: Sky clusters the synthetic positions concentrate in: (ra, dec, sigma
#: degrees, weight).  They drive both realistic spatial-query selectivity
#: and the hotspots the Section 6.9 clustering analysis should recover.
SKY_CLUSTERS: Tuple[Tuple[float, float, float, float], ...] = (
    (145.0, 0.1, 1.2, 0.25),
    (185.0, 15.0, 2.0, 0.20),
    (220.0, 30.0, 1.5, 0.15),
    (10.0, -5.0, 2.5, 0.15),
    (320.0, 5.0, 1.8, 0.10),
)

_DB_OBJECT_NAMES = (
    ("photoprimary", "V", "The primary photometric objects", "View of PhotoObjAll"),
    ("photoobjall", "U", "All photometric objects", "The full photo catalog"),
    ("specobjall", "U", "All spectroscopic objects", "The full spectro catalog"),
    ("galaxy", "V", "Galaxies brighter than the limit", "View of PhotoObjAll"),
    ("star", "V", "Stars brighter than the limit", "View of PhotoObjAll"),
    ("frame", "U", "Image frames", "Frame metadata"),
    ("field", "U", "Imaging fields", "Field metadata"),
    ("plate", "U", "Spectroscopic plates", "Plate metadata"),
    ("neighbors", "U", "Nearest-neighbor pairs", "Precomputed neighbors"),
    ("loadevents", "U", "Loader events", "Internal"),
    ("queryresults", "U", "Stored query results", "Internal"),
)


def _sample_position(rng: random.Random) -> Tuple[float, float]:
    """Draw one (ra, dec) from the cluster mixture + uniform background."""
    roll = rng.random()
    accumulated = 0.0
    for ra, dec, sigma, weight in SKY_CLUSTERS:
        accumulated += weight
        if roll < accumulated:
            return (
                (rng.gauss(ra, sigma)) % 360.0,
                max(-90.0, min(90.0, rng.gauss(dec, sigma))),
            )
    return (rng.uniform(0.0, 360.0), math.degrees(math.asin(rng.uniform(-1, 1))))


def _htmid_for(ra: float, dec: float) -> int:
    """A toy space-filling id: interleaved coarse grid cells.

    Real HTM ids are trixel addresses; all the workload needs is that
    nearby ids mean nearby sky, so HTM *ranges* select contiguous regions.
    """
    ra_cell = int(ra / 360.0 * 4096)
    dec_cell = int((dec + 90.0) / 180.0 * 4096)
    htmid = 0
    for bit in range(12):
        htmid |= ((ra_cell >> bit) & 1) << (2 * bit)
        htmid |= ((dec_cell >> bit) & 1) << (2 * bit + 1)
    return htmid << 8  # leave per-object low bits


def build_database(
    object_count: int = 5000,
    *,
    seed: int = 20180417,
    spec_fraction: float = 0.15,
) -> Database:
    """Build a populated synthetic SkyServer database.

    :param object_count: rows in ``photoobjall``; ``photoprimary`` gets
        the ~90 % flagged primary; ``specobjall`` a ``spec_fraction``.
    :param seed: determinism anchor.
    """
    if object_count < 0:
        raise ValueError("object_count must be >= 0")
    rng = random.Random(seed)
    catalog = skyserver_catalog()
    database = Database(catalog)

    all_rows: List[dict] = []
    primary_rows: List[dict] = []
    spec_rows: List[dict] = []
    for index in range(object_count):
        ra, dec = _sample_position(rng)
        objid = 758_000_000_000_000_000 + index * 977 + rng.randrange(977)
        row = {
            "objid": objid,
            "ra": round(ra, 6),
            "dec": round(dec, 6),
            "run": rng.randrange(100, 8000),
            "rerun": rng.choice((40, 41, 42)),
            "camcol": rng.randrange(1, 7),
            "field": rng.randrange(11, 1000),
            "type": TYPE_GALAXY if rng.random() < 0.6 else TYPE_STAR,
            "htmid": _htmid_for(ra, dec) + (index & 0xFF),
            "rowc_g": round(rng.uniform(0, 1489), 3),
            "colc_g": round(rng.uniform(0, 2048), 3),
            "rowc_r": round(rng.uniform(0, 1489), 3),
            "colc_r": round(rng.uniform(0, 2048), 3),
            "rowc_i": round(rng.uniform(0, 1489), 3),
            "colc_i": round(rng.uniform(0, 2048), 3),
            "u": round(rng.gauss(20.5, 1.5), 3),
            "g": round(rng.gauss(19.8, 1.4), 3),
            "r": round(rng.gauss(19.0, 1.3), 3),
            "i": round(rng.gauss(18.6, 1.3), 3),
            "z": round(rng.gauss(18.3, 1.3), 3),
            "status": rng.choice((0, 1, 2)),
        }
        all_rows.append(row)
        if rng.random() < 0.9:
            primary_rows.append(row)
        if rng.random() < spec_fraction:
            spec_rows.append(
                {
                    "specobjid": 75_000_000_000_000_000 + index * 131,
                    "bestobjid": objid,
                    "plate": rng.randrange(266, 3000),
                    "fiberid": rng.randrange(1, 641),
                    "mjd": rng.randrange(51600, 54600),
                    "z": round(abs(rng.gauss(0.1, 0.08)), 5),
                    "zerr": round(abs(rng.gauss(0.0002, 0.0001)), 6),
                    "specclass": rng.choice((1, 2, 3)),
                }
            )

    database.create_table(catalog.require("photoobjall"), all_rows)
    database.create_table(catalog.require("photoprimary"), primary_rows)
    database.create_table(catalog.require("specobjall"), spec_rows)
    database.create_table(
        catalog.require("dbobjects"),
        [
            {
                "name": name,
                "type": type_,
                "description": description,
                "text": text,
                "access": "public",
            }
            for name, type_, description, text in _DB_OBJECT_NAMES
        ],
    )
    register_sky_functions(database)
    return database
