"""Actor profiles of the synthetic SkyServer workload.

The paper's case study attributes the log's traffic to a handful of
behaviours; each gets a profile here, with the exact query *shapes* the
paper reports:

===================  ====================================================
Profile              Paper evidence
===================  ====================================================
NearbyBot            Table 7 #1/#4/#5 — fGetNearbyObjEq joins, 1 IP each
RectBot              Table 7 #2 — fGetObjFromRect + magnitude band, 19 IPs
HtmCountBot          Table 7 #3 — count(*) over an HTM range, 1 IP
DwStifleBot          Table 6 #1–#3 — rowc_X/colc_X by objid, 1–3 IPs
DsStifleBot          Table 6 #4/#5 — alternating column sets by objid
DfStifleBot          Definition 14 / Example 13 — same WHERE, two tables
CthRealApp           Table 10 — fGetNearestObjEq then an instant lookup
CthFalseApp          Table 9 — web UI browsing DBObjects with think time
SwsCrawler           Section 6.5 — sliding HTM windows, one user
SncApp               Section 5.4 — ``= NULL`` / ``<> NULL`` filters
HumanAdhoc           the long tail of hand-written queries, many users
DupReloader          Section 5.2 — web-form reloads within a second
NoiseMaker           Section 6.3 — DML/DDL and syntax errors (~4 %)
===================  ====================================================

A profile emits *bursts*: one same-user sitting of queries with small
inter-query gaps.  Each event may carry ground-truth tags the benchmarks
later score detectors against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import Database

#: Truth labels (aligned with repro.antipatterns.types where applicable).
TRUTH_DW = "DW-Stifle"
TRUTH_DS = "DS-Stifle"
TRUTH_DF = "DF-Stifle"
TRUTH_CTH = "CTH-candidate"
TRUTH_SNC = "SNC"
TRUTH_SWS = "SWS"
TRUTH_DUPLICATE = "duplicate"
TRUTH_NON_SELECT = "non-select"
TRUTH_SYNTAX_ERROR = "syntax-error"


@dataclass
class Event:
    """One query emission of a profile.

    :param sql: statement text.
    :param gap: seconds since the actor's previous event of this burst.
    :param truth: ground-truth label, if the event belongs to a planted
        artifact.
    :param group: instance id grouping the events of one planted artifact.
    :param cth_real: for CTH events: whether the planted hunt is a real
        dependency (Table 10) or coincidental browsing (Table 9).
    """

    sql: str
    gap: float
    truth: Optional[str] = None
    group: Optional[int] = None
    cth_real: Optional[bool] = None


@dataclass
class SkyContext:
    """Workload-relevant content of the synthetic database."""

    objids: Sequence[int]
    specobjids: Sequence[int]
    cluster_centers: Sequence[Tuple[float, float]]
    htm_bounds: Tuple[int, int]
    dbobject_names: Sequence[str]

    @classmethod
    def from_database(cls, database: Database) -> "SkyContext":
        photo = database.table("photoprimary").rows()
        spec = database.table("specobjall").rows()
        htmids = [row["htmid"] for row in photo] or [0, 1]
        from .schema import SKY_CLUSTERS

        return cls(
            objids=[row["objid"] for row in photo] or [1],
            specobjids=[row["specobjid"] for row in spec] or [1],
            cluster_centers=[(ra, dec) for ra, dec, _, _ in SKY_CLUSTERS],
            htm_bounds=(min(htmids), max(htmids)),
            dbobject_names=[
                row["name"] for row in database.table("dbobjects").rows()
            ],
        )

    @classmethod
    def synthetic(cls, seed: int = 7) -> "SkyContext":
        """A context without a database (log-only experiments)."""
        rng = random.Random(seed)
        return cls(
            objids=[758_000_000_000_000_000 + i * 977 for i in range(5000)],
            specobjids=[75_000_000_000_000_000 + i * 131 for i in range(800)],
            cluster_centers=[(145.0, 0.1), (185.0, 15.0), (220.0, 30.0)],
            htm_bounds=(0, 1 << 32),
            dbobject_names=["photoprimary", "galaxy", "star", "specobjall"],
        )


class Profile:
    """Base class: a named behaviour with users/IPs and burst emission."""

    #: short name used in mixture configuration.
    name: str = "profile"
    #: how many distinct users play this behaviour.
    user_count: int = 1
    #: events per burst: (low, high) inclusive.
    burst_size: Tuple[int, int] = (5, 20)
    #: inter-query gap range in seconds.
    gap_range: Tuple[float, float] = (0.5, 5.0)

    def users(self, rng: random.Random) -> List[Tuple[str, str]]:
        """(user, ip) identities for this profile's actors."""
        return [
            (f"{self.name}-u{i}", _random_ip(rng)) for i in range(self.user_count)
        ]

    def _gap(self, rng: random.Random) -> float:
        low, high = self.gap_range
        return rng.uniform(low, high)

    def _size(self, rng: random.Random) -> int:
        low, high = self.burst_size
        return rng.randint(low, high)

    def burst(
        self, rng: random.Random, ctx: SkyContext, next_group
    ) -> List[Event]:
        """Emit one burst of events.  ``next_group()`` mints instance ids."""
        raise NotImplementedError


def _random_ip(rng: random.Random) -> str:
    return ".".join(str(rng.randrange(1, 255)) for _ in range(4))


def _near_cluster(
    rng: random.Random, ctx: SkyContext, spread: float = 2.0
) -> Tuple[float, float]:
    ra, dec = rng.choice(list(ctx.cluster_centers))
    return (
        (rng.gauss(ra, spread)) % 360.0,
        max(-90.0, min(90.0, rng.gauss(dec, spread))),
    )


# ----------------------------------------------------------------------
# Spatial-search patterns (Table 7)


class NearbyBot(Profile):
    """Table 7 #1: objects near an equatorial point, with the spectro
    left-join; single IP, massive volume."""

    name = "nearby"
    user_count = 1
    burst_size = (30, 120)
    gap_range = (0.4, 2.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            ra, dec = _near_cluster(rng, ctx)
            radius = rng.choice((0.5, 1.0, 2.0, 3.0))
            events.append(
                Event(
                    sql=(
                        "SELECT g.objid, g.ra, g.dec, g.r, s.specobjid "
                        "FROM photoobjall as g "
                        f"JOIN fGetNearbyObjEq({ra:.5f}, {dec:.5f}, {radius}) as gn "
                        "ON g.objid = gn.objid "
                        "LEFT OUTER JOIN specobjall s ON s.bestobjid = gn.objid"
                    ),
                    gap=self._gap(rng),
                )
            )
        return events


class NearbyInfoBot(Profile):
    """Table 7 #4/#5: plain photoprimary join with fGetNearbyObjEq."""

    name = "nearby-info"
    user_count = 1
    burst_size = (20, 80)
    gap_range = (0.5, 3.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            ra, dec = _near_cluster(rng, ctx)
            radius = rng.choice((0.2, 0.5, 1.0))
            events.append(
                Event(
                    sql=(
                        "SELECT p.objid, p.ra, p.dec, p.type "
                        f"FROM fGetNearbyObjEq({ra:.5f}, {dec:.5f}, {radius}) n, "
                        "photoprimary p WHERE n.objid = p.objid"
                    ),
                    gap=self._gap(rng),
                )
            )
        return events


class RectBot(Profile):
    """Table 7 #2: rectangle search with a magnitude band; 19 IPs."""

    name = "rect"
    user_count = 19
    burst_size = (10, 40)
    gap_range = (1.0, 6.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            ra, dec = _near_cluster(rng, ctx)
            width = rng.uniform(0.05, 0.4)
            low = rng.uniform(14.0, 20.0)
            events.append(
                Event(
                    sql=(
                        "SELECT p.objid, p.ra, p.dec "
                        f"FROM fGetObjFromRect({ra:.5f}, {dec:.5f}, "
                        f"{(ra + width) % 360.0:.5f}, {min(dec + width, 90.0):.5f}) n, "
                        "photoprimary p WHERE n.objid = p.objid "
                        f"AND r BETWEEN {low:.2f} AND {low + 2.0:.2f}"
                    ),
                    gap=self._gap(rng),
                )
            )
        return events


class HtmCountBot(Profile):
    """Table 7 #3: count objects in an HTM range; 1 IP."""

    name = "htm-count"
    user_count = 1
    burst_size = (20, 100)
    gap_range = (0.5, 2.0)

    def burst(self, rng, ctx, next_group):
        low_bound, high_bound = ctx.htm_bounds
        span = max(1, (high_bound - low_bound) // 512)
        events = []
        for _ in range(self._size(rng)):
            start = rng.randrange(low_bound, max(low_bound + 1, high_bound - span))
            events.append(
                Event(
                    sql=(
                        "SELECT count(*) FROM photoprimary "
                        f"WHERE htmid >= {start} AND htmid <= {start + span}"
                    ),
                    gap=self._gap(rng),
                )
            )
        return events


# ----------------------------------------------------------------------
# Stifle bots (Table 6)

_BANDS = ("g", "r", "i")


class DwStifleBot(Profile):
    """Table 6 #1–#3: per-band pixel coordinates fetched object by object
    — the dominant DW-Stifle.  One burst = one planted instance."""

    name = "dw-stifle"
    user_count = 3
    burst_size = (5, 60)
    gap_range = (0.05, 0.6)

    def burst(self, rng, ctx, next_group):
        band = rng.choice(_BANDS)
        group = next_group()
        events = []
        for objid in rng.sample(list(ctx.objids), min(self._size(rng), len(ctx.objids))):
            events.append(
                Event(
                    sql=(
                        f"SELECT rowc_{band}, colc_{band} FROM photoprimary "
                        f"WHERE objid = {objid}"
                    ),
                    gap=self._gap(rng),
                    truth=TRUTH_DW,
                    group=group,
                )
            )
        return events


class DsStifleBot(Profile):
    """Table 6 #4/#5: two column sets of the *same* object, back to back
    — each object contributes one DS-Stifle instance."""

    name = "ds-stifle"
    user_count = 2
    burst_size = (4, 20)  # objects per burst; 2 queries each
    gap_range = (0.05, 0.5)

    def burst(self, rng, ctx, next_group):
        events = []
        first, second = rng.sample(_BANDS, 2)
        for objid in rng.sample(list(ctx.objids), min(self._size(rng), len(ctx.objids))):
            group = next_group()
            for band in (first, second):
                events.append(
                    Event(
                        sql=(
                            f"SELECT rowc_{band}, colc_{band} FROM photoprimary "
                            f"WHERE objid = {objid}"
                        ),
                        gap=self._gap(rng),
                        truth=TRUTH_DS,
                        group=group,
                    )
                )
        return events


class DfStifleBot(Profile):
    """Example 13's shape on SkyServer tables: the same object looked up
    in ``photoprimary`` and then in ``photoobjall``."""

    name = "df-stifle"
    user_count = 1
    burst_size = (3, 12)  # objects per burst; 2 queries each
    gap_range = (0.05, 0.5)

    def burst(self, rng, ctx, next_group):
        events = []
        for objid in rng.sample(list(ctx.objids), min(self._size(rng), len(ctx.objids))):
            group = next_group()
            events.append(
                Event(
                    sql=f"SELECT ra, dec FROM photoprimary WHERE objid = {objid}",
                    gap=self._gap(rng),
                    truth=TRUTH_DF,
                    group=group,
                )
            )
            events.append(
                Event(
                    sql=f"SELECT ra, dec FROM photoobjall WHERE objid = {objid}",
                    gap=self._gap(rng),
                    truth=TRUTH_DF,
                    group=group,
                )
            )
        return events


# ----------------------------------------------------------------------
# Treasure hunts (Tables 9 and 10)


class CthRealApp(Profile):
    """Table 10: a program finds the nearest object, then *instantly*
    fetches its spectrum — a genuine dependency (real CTH)."""

    name = "cth-real"
    user_count = 2
    burst_size = (3, 10)  # hunts per burst
    gap_range = (2.0, 10.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            group = next_group()
            ra, dec = _near_cluster(rng, ctx)
            events.append(
                Event(
                    sql=(
                        f"SELECT * FROM dbo.fGetNearestObjEq({ra:.5f}, "
                        f"{dec:.5f}, 0.5)"
                    ),
                    gap=self._gap(rng),
                    truth=TRUTH_CTH,
                    group=group,
                    cth_real=True,
                )
            )
            for _ in range(rng.randint(1, 2)):
                specobjid = rng.choice(list(ctx.specobjids))
                events.append(
                    Event(
                        sql=(
                            "SELECT plate, fiberid, mjd, specobjid "
                            f"FROM specobjall WHERE specobjid = {specobjid}"
                        ),
                        gap=0.0,  # zero think time: the tell of a real CTH
                        truth=TRUTH_CTH,
                        group=group,
                        cth_real=True,
                    )
                )
        return events


class CthFalseApp(Profile):
    """Table 9: the web UI lists tables, the human reflects, then asks for
    one table's description — shape-wise a CTH candidate, but not a
    programmatic dependency (false CTH)."""

    name = "cth-false"
    user_count = 4
    burst_size = (1, 3)  # browse sequences per burst
    gap_range = (15.0, 90.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            group = next_group()
            events.append(
                Event(
                    sql=(
                        "SELECT name, type FROM dbobjects WHERE type = 'U' "
                        "AND name NOT IN ('loadevents', 'queryresults') "
                        "ORDER BY name"
                    ),
                    gap=self._gap(rng),
                    truth=TRUTH_CTH,
                    group=group,
                    cth_real=False,
                )
            )
            name = rng.choice(list(ctx.dbobject_names))
            events.append(
                Event(
                    sql=f"SELECT description FROM dbobjects WHERE name = '{name}'",
                    gap=rng.uniform(15.0, 60.0),  # the human thinks first
                    truth=TRUTH_CTH,
                    group=group,
                    cth_real=False,
                )
            )
        return events


# ----------------------------------------------------------------------
# Sliding-window crawlers, SNC, humans, noise


class SwsCrawler(Profile):
    """Section 6.5: a machine download sliding disjoint HTM windows —
    frequent pattern, one user, not an antipattern."""

    name = "sws"
    user_count = 1
    burst_size = (40, 150)
    gap_range = (1.0, 4.0)

    def __init__(self) -> None:
        self._cursor: Dict[str, int] = {}

    def burst(self, rng, ctx, next_group):
        low_bound, high_bound = ctx.htm_bounds
        span = max(1, (high_bound - low_bound) // 2048)
        cursor = self._cursor.get(self.name, low_bound)
        events = []
        group = next_group()
        for _ in range(self._size(rng)):
            events.append(
                Event(
                    sql=(
                        "SELECT objid, ra, dec, r FROM photoprimary "
                        f"WHERE htmid >= {cursor} AND htmid < {cursor + span}"
                    ),
                    gap=self._gap(rng),
                    truth=TRUTH_SWS,
                    group=group,
                )
            )
            cursor += span  # the window slides: disjoint filter ranges
            if cursor >= high_bound:
                cursor = low_bound
        self._cursor[self.name] = cursor
        return events


class SncApp(Profile):
    """Section 5.4: an application testing nullable columns with = NULL."""

    name = "snc"
    user_count = 2
    burst_size = (2, 6)
    gap_range = (1.0, 10.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            group = next_group()
            operator = rng.choice(("=", "<>"))
            column = rng.choice(("zerr", "z"))
            events.append(
                Event(
                    sql=f"SELECT * FROM specobjall WHERE {column} {operator} NULL",
                    gap=self._gap(rng),
                    truth=TRUTH_SNC,
                    group=group,
                )
            )
        return events


_HUMAN_TEMPLATES = (
    "SELECT TOP {n} objid, ra, dec FROM photoprimary WHERE r < {mag:.2f} ORDER BY r",
    "SELECT objid, u, g, r FROM photoprimary WHERE g - r > {color:.2f} AND type = 3",
    "SELECT count(*) FROM photoprimary WHERE type = {type}",
    "SELECT s.plate, s.mjd, s.z FROM specobjall s WHERE s.z BETWEEN {z1:.3f} AND {z2:.3f}",
    "SELECT p.objid, s.z FROM photoprimary p INNER JOIN specobjall s "
    "ON s.bestobjid = p.objid WHERE p.r < {mag:.2f}",
    "SELECT type, count(*) AS cnt, avg(r) AS mean_r FROM photoprimary "
    "GROUP BY type ORDER BY cnt DESC",
    "SELECT objid, ra, dec FROM photoprimary WHERE ra BETWEEN {ra1:.3f} AND "
    "{ra2:.3f} AND dec BETWEEN {dec1:.3f} AND {dec2:.3f}",
    "SELECT TOP {n} objid, g - r AS color FROM photoprimary WHERE status = 1 "
    "ORDER BY color DESC",
    "SELECT name, description FROM dbobjects WHERE type = 'V'",
    "SELECT count(DISTINCT run) FROM photoprimary",
    "SELECT min(mjd), max(mjd) FROM specobjall",
    "SELECT camcol, count(*) FROM photoprimary WHERE run = {run} GROUP BY camcol",
)


class HumanAdhoc(Profile):
    """Hand-written exploratory queries: many users, small sessions."""

    name = "human"
    user_count = 60
    burst_size = (2, 8)
    gap_range = (8.0, 120.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            template = rng.choice(_HUMAN_TEMPLATES)
            ra, dec = _near_cluster(rng, ctx, spread=5.0)
            sql = template.format(
                n=rng.choice((10, 50, 100)),
                mag=rng.uniform(15.0, 21.0),
                color=rng.uniform(0.2, 1.2),
                type=rng.choice((3, 6)),
                z1=rng.uniform(0.0, 0.2),
                z2=rng.uniform(0.2, 0.5),
                ra1=ra,
                ra2=ra + rng.uniform(0.5, 3.0),
                dec1=dec,
                dec2=dec + rng.uniform(0.5, 3.0),
                run=rng.randrange(100, 8000),
            )
            events.append(Event(sql=sql, gap=self._gap(rng)))
        return events


class DupReloader(Profile):
    """Section 5.2: a web form resubmitting the identical query within a
    second.  The first submission is legitimate; the reloads carry the
    duplicate truth tag."""

    name = "dup"
    user_count = 8
    burst_size = (1, 4)  # legitimate queries per burst
    gap_range = (5.0, 40.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            ra, dec = _near_cluster(rng, ctx)
            sql = (
                "SELECT p.objid, p.ra, p.dec, p.type "
                f"FROM fGetNearbyObjEq({ra:.5f}, {dec:.5f}, 1.0) n, "
                "photoprimary p WHERE n.objid = p.objid"
            )
            events.append(Event(sql=sql, gap=self._gap(rng)))
            group = next_group()
            for _ in range(rng.randint(1, 3)):
                events.append(
                    Event(
                        sql=sql,
                        gap=rng.uniform(0.05, 0.9),
                        truth=TRUTH_DUPLICATE,
                        group=group,
                    )
                )
        return events


_DML_STATEMENTS = (
    "CREATE TABLE mydb.results (objid bigint, ra float, dec float)",
    "INSERT INTO mydb.results SELECT objid, ra, dec FROM photoprimary",
    "UPDATE mydb.results SET ra = 0 WHERE objid = 1",
    "DROP TABLE mydb.results",
    "EXEC spGetNeighbors 12345",
)

_BROKEN_STATEMENTS = (
    "SELECT FROM photoprimary WHERE",
    "SELCT objid FROM photoprimary",
    "SELECT objid FROM photoprimary WHERE ra >",
    "SELECT 'unterminated FROM photoprimary",
)


class NoiseMaker(Profile):
    """Non-SELECT statements (MyDB-style DML) and typos — the ~4 % the
    parse stage must classify and exclude, never crash on."""

    name = "noise"
    user_count = 10
    burst_size = (1, 5)
    gap_range = (5.0, 60.0)

    def burst(self, rng, ctx, next_group):
        events = []
        for _ in range(self._size(rng)):
            if rng.random() < 0.7:
                events.append(
                    Event(
                        sql=rng.choice(_DML_STATEMENTS),
                        gap=self._gap(rng),
                        truth=TRUTH_NON_SELECT,
                    )
                )
            else:
                events.append(
                    Event(
                        sql=rng.choice(_BROKEN_STATEMENTS),
                        gap=self._gap(rng),
                        truth=TRUTH_SYNTAX_ERROR,
                    )
                )
        return events


class BadPracticesApp(Profile):
    """An application written with the textbook SQL antipatterns of the
    extended catalog (Karwin): leading-wildcard LIKE searches, redundant
    DISTINCT, aggregate-free HAVING, accidental cartesian products and
    ORDER BY rand().  Not part of the default mixture (the paper's case
    study does not quantify these); benches opt in explicitly."""

    name = "bad-practices"
    user_count = 3
    burst_size = (4, 12)
    gap_range = (2.0, 20.0)

    def burst(self, rng, ctx, next_group):
        shapes = (
            ("Poor-Mans-Search",
             "SELECT name, description FROM dbobjects WHERE description "
             "LIKE '%{word}%'"),
            ("Redundant-Distinct",
             "SELECT DISTINCT type, count(*) AS cnt FROM photoprimary "
             "GROUP BY type"),
            ("Having-No-Aggregate",
             "SELECT run, count(*) FROM photoprimary GROUP BY run "
             "HAVING run > {run}"),
            ("Cartesian-Product",
             "SELECT p.objid FROM photoprimary p, specobjall s "
             "WHERE p.r < {mag:.2f}"),
            ("Random-Selection",
             "SELECT TOP 1 objid FROM photoprimary ORDER BY rand()"),
        )
        events = []
        for _ in range(self._size(rng)):
            label, template = rng.choice(shapes)
            sql = template.format(
                word=rng.choice(("galaxy", "star", "survey")),
                run=rng.randrange(100, 8000),
                mag=rng.uniform(15.0, 21.0),
            )
            events.append(
                Event(sql=sql, gap=self._gap(rng), truth=label, group=next_group())
            )
        return events


def default_profiles() -> List[Profile]:
    """All profiles, in a stable order."""
    return [
        NearbyBot(),
        NearbyInfoBot(),
        RectBot(),
        HtmCountBot(),
        DwStifleBot(),
        DsStifleBot(),
        DfStifleBot(),
        CthRealApp(),
        CthFalseApp(),
        SwsCrawler(),
        SncApp(),
        HumanAdhoc(),
        DupReloader(),
        NoiseMaker(),
    ]
