"""Ground truth of a synthetic log.

The generator *knows* which statements it planted as antipatterns,
duplicates or noise; the benchmarks score the detectors against this
knowledge — the stand-in for the paper's domain experts (Section 6.6/6.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class TruthGroup:
    """One planted artifact instance (a stifle run, a hunt, a reload)."""

    group: int
    label: str
    seqs: List[int] = field(default_factory=list)
    cth_real: Optional[bool] = None


#: Profiles that are automated clients ("bots" in the SkyServer traffic
#: reports' sense): scripted spatial sweeps, stifle loops, programmatic
#: hunts, crawlers, machine template applications.
AUTOMATED_PROFILES = frozenset(
    {
        "nearby",
        "nearby-info",
        "rect",
        "htm-count",
        "dw-stifle",
        "ds-stifle",
        "df-stifle",
        "cth-real",
        "sws",
        "snc",
        "bad-practices",
    }
)

#: Profiles driven by a human at an interface.
HUMAN_PROFILES = frozenset({"human", "cth-false", "dup", "noise"})


@dataclass
class GroundTruth:
    """All planted artifacts of one generated log."""

    label_by_seq: Dict[int, str] = field(default_factory=dict)
    groups: Dict[int, TruthGroup] = field(default_factory=dict)
    #: user key → emitting profile name (for behaviour-classification
    #: experiments: is this user a bot or a human?).
    user_profiles: Dict[str, str] = field(default_factory=dict)

    def record(
        self,
        seq: int,
        label: Optional[str],
        group: Optional[int],
        cth_real: Optional[bool],
    ) -> None:
        if label is None:
            return
        self.label_by_seq[seq] = label
        if group is not None:
            entry = self.groups.get(group)
            if entry is None:
                entry = TruthGroup(group=group, label=label, cth_real=cth_real)
                self.groups[group] = entry
            entry.seqs.append(seq)

    # ------------------------------------------------------------------
    # Queries

    def seqs_with_label(self, label: str) -> Set[int]:
        return {
            seq for seq, lbl in self.label_by_seq.items() if lbl == label
        }

    def groups_with_label(self, label: str) -> List[TruthGroup]:
        return [g for g in self.groups.values() if g.label == label]

    def duplicate_seqs(self) -> Set[int]:
        return self.seqs_with_label("duplicate")

    def cth_reality(self) -> Dict[int, bool]:
        """group id → planted real/false verdict, CTH groups only."""
        return {
            group.group: bool(group.cth_real)
            for group in self.groups.values()
            if group.label == "CTH-candidate"
        }

    def count_by_label(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for label in self.label_by_seq.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def is_bot(self, user: str) -> Optional[bool]:
        """Planted verdict for a user: True (automated), False (human),
        or None when the user's profile is unknown."""
        profile = self.user_profiles.get(user)
        if profile is None:
            return None
        if profile in AUTOMATED_PROFILES:
            return True
        if profile in HUMAN_PROFILES:
            return False
        return None


def score_detection(
    detected_seqs: Set[int], truth_seqs: Set[int]
) -> Tuple[float, float]:
    """(precision, recall) of a detected seq set against the truth."""
    if not detected_seqs:
        return (1.0 if not truth_seqs else 0.0, 0.0 if truth_seqs else 1.0)
    true_positives = len(detected_seqs & truth_seqs)
    precision = true_positives / len(detected_seqs)
    recall = true_positives / len(truth_seqs) if truth_seqs else 1.0
    return (precision, recall)
