"""Synthetic SkyServer workload: schema, actor profiles, log generator."""

from .generator import (
    DEFAULT_BURSTS,
    WorkloadConfig,
    WorkloadResult,
    generate,
    generate_log,
)
from .groundtruth import GroundTruth, TruthGroup, score_detection
from .profiles import Event, Profile, SkyContext, default_profiles
from .schema import build_database, skyserver_catalog

__all__ = [
    "DEFAULT_BURSTS",
    "WorkloadConfig",
    "WorkloadResult",
    "generate",
    "generate_log",
    "GroundTruth",
    "TruthGroup",
    "score_detection",
    "Event",
    "Profile",
    "SkyContext",
    "default_profiles",
    "build_database",
    "skyserver_catalog",
]
