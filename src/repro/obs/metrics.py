"""Pipeline metrics — the accounting ledger of one cleaning run.

The paper's framework (Fig. 1, Table 5) is fundamentally an accounting
exercise: every stage drops, merges or flags queries, and the numbers
must add up.  :class:`PipelineMetrics` is that ledger, kept *per stage*:

* **counters** — integer facts (``records_in``, ``duplicates_removed``,
  ``pattern_instances``, …);
* **labelled counters** — counters broken down by a label dimension
  (antipatterns per class, solved instances per class);
* **wall_seconds / calls** — how long the stage ran and how often it was
  entered (once for batch, once per block for streaming, once per shard
  for parallel).

Two derived views make the ledger useful beyond logging:

* :meth:`PipelineMetrics.comparable` — the deterministic counter subset
  of the stages every executor runs.  Batch, streaming and parallel runs
  over the same log must produce *equal* comparable views; the
  differential suite (``tests/differential``) enforces it.
* :meth:`PipelineMetrics.conservation_violations` — the framework's
  conservation laws (``records_in == records_out + duplicates_removed``
  and friends) checked in one place, so any executor that miscounts is
  caught regardless of which test ran it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Stage names in execution order.  ``registry`` is batch-only (needs the
#: whole log), ``merge`` is parallel-only (parent-side re-ordering).
STAGES = (
    "validate",
    "dedup",
    "parse",
    "mine",
    "detect",
    "solve",
    "registry",
    "merge",
)

#: The stages every executor runs — the domain of :meth:`comparable`.
SHARED_STAGES = ("validate", "dedup", "parse", "mine", "detect", "solve")

#: Canonical counter names per shared stage (the docs' metric table).
#: Executors pre-create these at zero so that runs over degenerate
#: inputs (an empty log, a log with no antipatterns) still produce
#: structurally identical ledgers across batch / streaming / parallel.
#: ``records_quarantined`` counts records set aside by the error policy
#: (dropped under ``lenient``, captured under ``quarantine``).
STAGE_COUNTERS = {
    "validate": ("records_in", "records_out", "records_quarantined"),
    "dedup": ("records_in", "records_out", "duplicates_removed"),
    "parse": (
        "records_in",
        "records_out",
        "syntax_errors",
        "non_select",
        "records_quarantined",
        "parse_cache_hits",
        "parse_cache_misses",
        "parse_cache_evictions",
        "parse_lazy_hits",
        "parse_eager",
        "parse_materialised",
        "parse_cold",
        "parse_dict_preloaded",
        "interner_size",
    ),
    "mine": ("queries_in", "blocks", "pattern_instances", "periodic_runs"),
    "detect": ("blocks_in", "instances_detected"),
    "solve": (
        "records_in",
        "records_out",
        "instances_solved",
        "queries_removed",
        "skipped_conflicts",
        "not_applicable",
        "unsolvable",
    ),
}

#: Counters that are *not* executor-independent and therefore excluded
#: from :meth:`PipelineMetrics.comparable`.  The parse-cache traffic
#: depends on how records are partitioned: a parallel run misses once
#: per template per shard where batch misses once per template total.
#: The cache conservation law still holds per ledger (hits + misses ==
#: statements parsed), so correctness remains checkable.
#: ``interner_size`` is excluded for the same partitioning reason: each
#: parallel shard interns its own distinct templates, so the parse-stage
#: sum exceeds the run-global dictionary size that batch and streaming
#: book (the parallel merge stage carries the global count).
#: The lazy-parse trio follows the cache traffic: how many queries go
#: out lazy (and how many of those later materialise) depends on which
#: records each cache instance saw first, so only the ledger-local law
#: ``parse_lazy_hits + parse_eager == records_out`` is portable.
#: ``parse_cold`` rides with the cache misses it mirrors, and
#: ``parse_dict_preloaded`` with how many cache instances a dictionary
#: was preloaded into (one for batch/streaming, one per worker for
#: parallel).
EXECUTOR_DEPENDENT_COUNTERS = {
    "parse": frozenset(
        {
            "parse_cache_hits",
            "parse_cache_misses",
            "parse_cache_evictions",
            "parse_lazy_hits",
            "parse_eager",
            "parse_materialised",
            "parse_cold",
            "parse_dict_preloaded",
            "interner_size",
        }
    ),
}

#: Counters the parallel executor books on its parent-side ``merge``
#: stage.  The merge stage is deliberately *not* part of
#: :data:`STAGE_COUNTERS` (and hence never of :meth:`PipelineMetrics
#: .comparable`): it exists only under the parallel executor, so these
#: are observability for the data plane, not cross-executor contracts.
#: ``bytes_shipped`` is the total encoded shard-buffer bytes handed to
#: workers (each shard's buffer counted once; retries reuse it);
#: ``shm_segments`` counts shared-memory segments created under
#: ``transfer="shm"`` (0 under ``"pickle"``).
MERGE_COUNTERS = (
    "records_out",
    "shards_retried",
    "shards_failed",
    "bytes_shipped",
    "shm_segments",
    "interner_size",
)


@dataclass
class StageMetrics:
    """Counters and timing of one pipeline stage.

    :param name: stage name (one of :data:`STAGES` for built-in stages;
        custom stages may use any name).
    :param counters: integer counters, e.g. ``records_in``.
    :param labels: labelled counters: counter name → label → value
        (e.g. ``{"antipatterns": {"dwStifle": 3}}``).
    :param wall_seconds: total wall-clock seconds spent in the stage.
    :param calls: how many times the stage was entered.
    """

    name: str
    counters: Dict[str, int] = field(default_factory=dict)
    labels: Dict[str, Dict[str, int]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    calls: int = 0

    def count(self, counter: str, value: int = 1) -> None:
        """Add ``value`` to ``counter``."""
        self.counters[counter] = self.counters.get(counter, 0) + value

    def count_label(self, counter: str, label: str, value: int = 1) -> None:
        """Add ``value`` to the ``label`` bucket of ``counter``."""
        bucket = self.labels.setdefault(counter, {})
        bucket[label] = bucket.get(label, 0) + value

    def get(self, counter: str, default: int = 0) -> int:
        return self.counters.get(counter, default)

    def merge(self, other: "StageMetrics") -> None:
        """Fold another stage's numbers into this one (sharded runs)."""
        for counter, value in other.counters.items():
            self.count(counter, value)
        for counter, bucket in other.labels.items():
            for label, value in bucket.items():
                self.count_label(counter, label, value)
        self.wall_seconds += other.wall_seconds
        self.calls += other.calls

    def as_dict(self, include_timings: bool = True) -> Dict[str, object]:
        """Deterministically ordered plain-dict rendering."""
        data: Dict[str, object] = {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        if self.labels:
            data["labels"] = {
                counter: {k: bucket[k] for k in sorted(bucket)}
                for counter, bucket in sorted(self.labels.items())
            }
        if include_timings:
            data["wall_seconds"] = self.wall_seconds
            data["calls"] = self.calls
        return data

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, object]) -> "StageMetrics":
        """Inverse of :meth:`as_dict` (checkpoint restore)."""
        return cls(
            name=name,
            counters=dict(data.get("counters", {})),  # type: ignore[arg-type]
            labels={
                counter: dict(bucket)
                for counter, bucket in data.get("labels", {}).items()  # type: ignore[union-attr]
            },
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            calls=int(data.get("calls", 0)),  # type: ignore[arg-type]
        )


@dataclass
class PipelineMetrics:
    """All stages' metrics of one pipeline run.

    Plain data (dicts, ints, floats) throughout, so the object pickles
    across ``multiprocessing`` workers and serialises to JSON directly.
    """

    stages: Dict[str, StageMetrics] = field(default_factory=dict)

    def stage(self, name: str) -> StageMetrics:
        """The metrics of stage ``name``, created empty on first use."""
        metrics = self.stages.get(name)
        if metrics is None:
            metrics = StageMetrics(name=name)
            self.stages[name] = metrics
        return metrics

    def merge(self, other: "PipelineMetrics") -> None:
        """Fold another run's ledger into this one (sharded runs)."""
        for name, stage in other.stages.items():
            self.stage(name).merge(stage)

    def ensure_counters(self) -> None:
        """Create every canonical shared-stage counter at zero.

        Executors call this once per run so that ledgers are structurally
        identical across execution modes even when a stage saw no work.
        """
        for name, counters in STAGE_COUNTERS.items():
            stage = self.stage(name)
            for counter in counters:
                stage.counters.setdefault(counter, 0)

    # ------------------------------------------------------------------
    # Views

    def _ordered_names(self) -> List[str]:
        known = [name for name in STAGES if name in self.stages]
        extra = sorted(name for name in self.stages if name not in STAGES)
        return known + extra

    def as_dict(self, include_timings: bool = True) -> Dict[str, object]:
        """Deterministically ordered plain-dict rendering of every stage.

        With ``include_timings=False`` the result contains only the
        deterministic counters — the form the golden-file test pins.
        """
        return {
            "stages": {
                name: self.stages[name].as_dict(include_timings)
                for name in self._ordered_names()
            }
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PipelineMetrics":
        """Inverse of :meth:`as_dict` (checkpoint restore).

        A ledger serialised with ``include_timings=False`` restores with
        zero wall times and call counts — counters round-trip exactly.
        """
        metrics = cls()
        for name, stage_data in data.get("stages", {}).items():  # type: ignore[union-attr]
            metrics.stages[name] = StageMetrics.from_dict(name, stage_data)
        return metrics

    def comparable(self) -> Dict[str, Dict[str, object]]:
        """The executor-independent view: counters and labelled counters
        of the :data:`SHARED_STAGES` only — no wall times, no call
        counts (batch enters ``detect`` once, streaming once per block).

        Two runs of different executors over the same log must return
        equal values here; that is the contract the differential suite
        asserts.
        """
        view: Dict[str, Dict[str, object]] = {}
        for name in SHARED_STAGES:
            stage = self.stages.get(name)
            if stage is None:
                continue
            data = stage.as_dict(include_timings=False)
            dependent = EXECUTOR_DEPENDENT_COUNTERS.get(name)
            if dependent:
                counters = data["counters"]
                data["counters"] = {
                    key: value
                    for key, value in counters.items()  # type: ignore[union-attr]
                    if key not in dependent
                }
            view[name] = data
        return view

    # ------------------------------------------------------------------
    # Conservation laws

    def conservation_violations(self) -> List[str]:
        """Check Fig. 1's accounting identities; return the broken ones.

        An empty list means every query is accounted for:

        * validate: ``records_in == records_out + records_quarantined``
        * dedup:  ``records_in == records_out + duplicates_removed``
        * parse:  ``records_in == records_out + syntax_errors +
          non_select + records_quarantined``
        * solve:  ``records_in == records_out + queries_removed``
        * parse cache (when enabled): ``parse_cache_hits +
          parse_cache_misses == parse.records_in`` — every statement
          entering the parse stage consults the cache exactly once.
        * lazy parse (when the counters exist): ``parse_lazy_hits +
          parse_eager == parse.records_out`` — every emitted query is
          either a lazy skeleton bind or a fully materialised parse.
        * cold parse (when the cache ran and the counter exists):
          ``parse_cold == parse_cache_misses`` — every cache miss goes
          through the full parser exactly once.
        * hand-offs: validate out == dedup in, dedup out == parse in,
          parse out == mine in == solve in.
        """
        violations: List[str] = []

        def check(law: str, left: Optional[int], right: Optional[int]) -> None:
            if left is None or right is None:
                return
            if left != right:
                violations.append(f"{law}: {left} != {right}")

        def counter(stage: str, name: str) -> Optional[int]:
            metrics = self.stages.get(stage)
            if metrics is None or name not in metrics.counters:
                return None
            return metrics.counters[name]

        validate_in = counter("validate", "records_in")
        validate_out = counter("validate", "records_out")
        validate_quarantined = counter("validate", "records_quarantined")
        if None not in (validate_in, validate_out, validate_quarantined):
            check(
                "validate: records_in == records_out + records_quarantined",
                validate_in,
                validate_out + validate_quarantined,
            )

        dedup_in = counter("dedup", "records_in")
        dedup_out = counter("dedup", "records_out")
        dups = counter("dedup", "duplicates_removed")
        if None not in (dedup_in, dedup_out, dups):
            check(
                "dedup: records_in == records_out + duplicates_removed",
                dedup_in,
                dedup_out + dups,
            )

        parse_in = counter("parse", "records_in")
        parse_out = counter("parse", "records_out")
        syntax = counter("parse", "syntax_errors")
        non_select = counter("parse", "non_select")
        # Pre-quarantine ledgers have no records_quarantined counter;
        # treat its absence as zero so old ledgers still validate.
        parse_quarantined = counter("parse", "records_quarantined") or 0
        if None not in (parse_in, parse_out, syntax, non_select):
            check(
                "parse: records_in == records_out + syntax_errors"
                " + non_select + records_quarantined",
                parse_in,
                parse_out + syntax + non_select + parse_quarantined,
            )

        cache_hits = counter("parse", "parse_cache_hits") or 0
        cache_misses = counter("parse", "parse_cache_misses") or 0
        if cache_hits + cache_misses:
            # Zero traffic means the cache was disabled (or a pre-cache
            # ledger); the law only binds when the fast path ran.
            check(
                "parse-cache: parse_cache_hits + parse_cache_misses"
                " == parse.records_in",
                cache_hits + cache_misses,
                parse_in,
            )

        cold = counter("parse", "parse_cold")
        if cache_hits + cache_misses and cold is not None:
            # Ledgers from before parse engine v3 have no parse_cold
            # counter; the law binds only when both sides were booked.
            check(
                "cold-parse: parse_cold == parse_cache_misses",
                cold,
                cache_misses,
            )

        lazy_hits = counter("parse", "parse_lazy_hits") or 0
        eager = counter("parse", "parse_eager") or 0
        if lazy_hits + eager:
            # Like the cache law: zero traffic means a ledger from
            # before the lazy fast path (or one assembled by hand) —
            # the law only binds when the parse stage booked emissions.
            check(
                "lazy-parse: parse_lazy_hits + parse_eager"
                " == parse.records_out",
                lazy_hits + eager,
                parse_out,
            )

        solve_in = counter("solve", "records_in")
        solve_out = counter("solve", "records_out")
        removed = counter("solve", "queries_removed")
        if None not in (solve_in, solve_out, removed):
            check(
                "solve: records_in == records_out + queries_removed",
                solve_in,
                solve_out + removed,
            )

        check("hand-off: validate.records_out == dedup.records_in",
              validate_out, dedup_in)
        check("hand-off: dedup.records_out == parse.records_in",
              dedup_out, parse_in)
        check("hand-off: parse.records_out == mine.queries_in",
              parse_out, counter("mine", "queries_in"))
        check("hand-off: parse.records_out == solve.records_in",
              parse_out, solve_in)
        return violations
