"""repro.obs — unified pipeline observability.

Counters, span-style stage traces and per-stage wall times for every
execution path of the cleaning pipeline.  The package is standalone
(imports nothing from :mod:`repro.pipeline`); executors depend on it,
never the other way around.

* :class:`PipelineMetrics` / :class:`StageMetrics` — the per-stage
  accounting ledger of one run, with the executor-independent
  :meth:`~PipelineMetrics.comparable` view and the
  :meth:`~PipelineMetrics.conservation_violations` checks.
* :class:`Recorder` — aggregates the ledger and streams span events to
  pluggable sinks (:class:`NullSink`, :class:`InMemorySink`,
  :class:`JsonlSink`).
* :data:`NULL` / :class:`NullRecorder` — the disabled recorder every
  instrumented function defaults to.
"""

from .metrics import (
    SHARED_STAGES,
    STAGE_COUNTERS,
    STAGES,
    PipelineMetrics,
    StageMetrics,
)
from .recorder import (
    NULL,
    InMemorySink,
    JsonlSink,
    NullRecorder,
    NullSink,
    Recorder,
    Sink,
)

__all__ = [
    "STAGES",
    "SHARED_STAGES",
    "STAGE_COUNTERS",
    "PipelineMetrics",
    "StageMetrics",
    "Recorder",
    "NullRecorder",
    "NULL",
    "Sink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
]
