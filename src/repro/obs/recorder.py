"""The recorder — how executors talk to the observability layer.

A :class:`Recorder` does two things:

1. **Aggregate** — every ``count`` / ``count_label`` / ``span`` call
   updates the run's :class:`~repro.obs.metrics.PipelineMetrics` ledger
   in memory.  This is always on and cheap: a handful of dict updates
   per stage entry, never per record.
2. **Stream** — span-style trace events (stage enter/exit with wall
   time) are emitted to pluggable :class:`Sink` objects as they happen,
   so a long run can be watched live.  With no sinks attached nothing is
   emitted.

The :class:`NullRecorder` singleton (:data:`NULL`) is the disabled
variant every instrumented function falls back to when no recorder is
passed — its methods are no-ops and its ``enabled`` flag lets hot paths
skip metric-only work (e.g. the streaming cleaner's per-block pattern
segmentation) entirely.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, List, Mapping, Optional, Sequence, Union

from .metrics import PipelineMetrics


class Sink:
    """Receives trace events (plain dicts) from a :class:`Recorder`."""

    def emit(self, event: Mapping[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: Mapping[str, object]) -> None:
        pass


class InMemorySink(Sink):
    """Keeps every event in a list — the test / debugging sink."""

    def __init__(self) -> None:
        self.events: List[Mapping[str, object]] = []

    def emit(self, event: Mapping[str, object]) -> None:
        self.events.append(dict(event))

    def spans(self, stage: Optional[str] = None) -> List[Mapping[str, object]]:
        """The span events seen so far, optionally for one stage."""
        return [
            event
            for event in self.events
            if event.get("event") == "span"
            and (stage is None or event.get("stage") == stage)
        ]


class JsonlSink(Sink):
    """Writes one JSON object per line to a path or an open text stream.

    A path is opened lazily and closed by :meth:`close`; a stream passed
    in stays the caller's responsibility.
    """

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        self._target = target
        self._handle: Optional[IO[str]] = None
        self._owns_handle = isinstance(target, str)

    def _ensure_handle(self) -> "IO[str]":
        if self._handle is None:
            if self._owns_handle:
                parent = Path(self._target).parent
                parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self._target, "w", encoding="utf-8")
            else:
                self._handle = self._target  # type: ignore[assignment]
        return self._handle

    def emit(self, event: Mapping[str, object]) -> None:
        handle = self._ensure_handle()
        handle.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._owns_handle and self._handle is not None:
            self._handle.close()
            self._handle = None


class Recorder:
    """Aggregates a :class:`PipelineMetrics` ledger and streams spans.

    :param sinks: trace-event receivers; empty by default.
    :param clock: monotonic clock used for span timing (injectable for
        deterministic tests).
    """

    enabled = True

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        *,
        clock=time.perf_counter,
    ) -> None:
        self.metrics = PipelineMetrics()
        self.sinks = tuple(sinks)
        self._clock = clock
        self._seq = 0

    # ------------------------------------------------------------------
    # Counters

    def count(self, stage: str, counter: str, value: int = 1) -> None:
        """Add ``value`` to ``counter`` of ``stage``."""
        self.metrics.stage(stage).count(counter, value)

    def count_label(
        self, stage: str, counter: str, label: str, value: int = 1
    ) -> None:
        """Add ``value`` to the ``label`` bucket of ``stage``'s counter."""
        self.metrics.stage(stage).count_label(counter, label, value)

    def add_seconds(self, stage: str, seconds: float, calls: int = 0) -> None:
        """Credit wall time measured outside a :meth:`span`."""
        metrics = self.metrics.stage(stage)
        metrics.wall_seconds += seconds
        metrics.calls += calls

    def ensure_counters(self) -> None:
        """Pre-create the canonical shared-stage counters at zero."""
        self.metrics.ensure_counters()

    # ------------------------------------------------------------------
    # Spans

    @contextmanager
    def span(self, stage: str, **fields: object) -> Iterator[None]:
        """Time the enclosed block as one entry of ``stage``.

        Wall time and the call count land in the ledger; if sinks are
        attached, one ``span`` trace event is emitted on exit (extra
        ``fields`` are carried verbatim into the event).
        """
        started = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - started
            metrics = self.metrics.stage(stage)
            metrics.wall_seconds += elapsed
            metrics.calls += 1
            if self.sinks:
                event = {
                    "event": "span",
                    "stage": stage,
                    "seconds": elapsed,
                    "seq": self._seq,
                }
                event.update(fields)
                self._seq += 1
                self.emit(event)

    # ------------------------------------------------------------------
    # Sinks

    def emit(self, event: Mapping[str, object]) -> None:
        """Forward one event to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    def absorb(self, metrics: PipelineMetrics) -> None:
        """Merge a worker's ledger into this recorder's (parallel runs)."""
        self.metrics.merge(metrics)

    def close(self) -> None:
        """Emit the final ``metrics`` summary event and close the sinks."""
        if self.sinks:
            self.emit({"event": "metrics", **self.metrics.as_dict()})
        for sink in self.sinks:
            sink.close()


class _NullSpan:
    """A reusable no-op context manager."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder(Recorder):
    """The disabled recorder: every operation is a no-op.

    Shares one empty (and intentionally never-populated) ledger; hot
    paths may consult :attr:`enabled` to skip metric-only computation.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def count(self, stage: str, counter: str, value: int = 1) -> None:
        pass

    def count_label(
        self, stage: str, counter: str, label: str, value: int = 1
    ) -> None:
        pass

    def add_seconds(self, stage: str, seconds: float, calls: int = 0) -> None:
        pass

    def ensure_counters(self) -> None:
        pass

    def span(self, stage: str, **fields: object) -> "_NullSpan":  # type: ignore[override]
        return _NULL_SPAN

    def emit(self, event: Mapping[str, object]) -> None:
        pass

    def absorb(self, metrics: PipelineMetrics) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled recorder — the default of every instrumented function.
NULL = NullRecorder()
