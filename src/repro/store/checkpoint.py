"""Checkpointable streaming runs: :class:`RunCheckpoint` and the
chunk-at-a-time driver behind ``repro.clean(source, checkpoint_dir=...)``.

A checkpointed run processes the source chunk by chunk.  After every
chunk it writes two things into the checkpoint directory:

``chunk-XXXXX.jsonl``
    the clean records that chunk emitted (the *spill*), one JSON object
    per line;
``state.json``
    everything needed to continue: chunk progress, the streaming
    cleaner's full mutable state (counters, dedup map, open blocks as
    source records, interner fingerprints, quarantine entries, parse
    cache baselines — see ``StreamingCleaner.export_state``), the
    recorder's metrics ledger, and the source/config identity the
    state belongs to.

**Atomicity rules.**  Every file is written via a temp file +
``os.replace``, so a kill can never leave a torn file.  The spill is
written *before* the state that references it; a kill between the two
leaves a state that still points at the previous chunk, so resume
re-processes exactly one chunk — deterministically, overwriting the
orphaned spill with identical bytes.  ``state.json`` is therefore always
internally consistent, and the invariant "spills ``0..chunks_done-1``
match the state" holds at every instant.

**Resume semantics.**  ``--resume`` loads the state, refuses to continue
when the source fingerprint or config digest changed, restores the
cleaner and recorder, re-reads the spilled clean records of the finished
chunks, and continues from chunk ``chunks_done``.  The resumed run's
clean log is byte-identical to the uninterrupted run's and its
``comparable()`` ledger is equal; only the executor-dependent parse
cache counters may differ (the resumed run restarts with a cold cache —
the cache conservation law still holds, additively across the restore).

Checkpointing is **streaming-only**: batch needs the whole log resident
for its global artifacts and parallel holds per-shard state inside
worker processes, so neither has a bounded, serialisable mid-run state.
``repro.clean`` rejects ``checkpoint_dir`` for those modes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..log.io import record_as_dict, record_from_dict
from ..log.models import LogRecord, QueryLog
from ..obs import PipelineMetrics, Recorder
from ..pipeline.config import PipelineConfig
from ..pipeline.streaming import StreamingCleaner
from .sources import LogSource

PathLike = Union[str, Path]

#: Bumped whenever the state layout changes incompatibly.
STATE_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint cannot be used: missing, torn by a version change,
    or belonging to a different source / configuration."""


def config_digest(config: PipelineConfig) -> str:
    """Deterministic digest of a pipeline configuration.

    A resumed run must use the configuration the checkpoint was written
    under — silently continuing with, say, a different dedup threshold
    would corrupt the run's invariants.  The digest walks the config
    dataclasses into JSON-able data; sets are rendered as *sorted*
    member lists (``repr(frozenset)`` iterates in hash order, which is
    randomised per process) and non-data values (detector instances)
    contribute their type name.
    """
    payload = json.dumps(
        _digest_value(config), sort_keys=True, default=str
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _digest_value(value: object) -> object:
    if isinstance(value, (frozenset, set)):
        return sorted(repr(member) for member in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _digest_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _digest_value(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_digest_value(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return type(value).__name__


def _write_text_atomic(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


class RunCheckpoint:
    """One run's checkpoint directory: atomic state + per-chunk spills."""

    STATE_FILE = "state.json"

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    @property
    def state_path(self) -> Path:
        return self.directory / self.STATE_FILE

    def has_state(self) -> bool:
        return self.state_path.is_file()

    def load_state(self) -> Dict[str, object]:
        if not self.has_state():
            raise CheckpointError(
                f"nothing to resume: {self.state_path} does not exist"
            )
        state = json.loads(self.state_path.read_text(encoding="utf-8"))
        if state.get("version") != STATE_VERSION:
            raise CheckpointError(
                f"checkpoint {self.state_path} has state version "
                f"{state.get('version')!r}; this build reads {STATE_VERSION}"
            )
        return state

    def save_state(self, state: Dict[str, object]) -> None:
        _write_text_atomic(
            self.state_path, json.dumps(state, sort_keys=True) + "\n"
        )

    # ------------------------------------------------------------------
    # Spills

    def spill_path(self, index: int) -> Path:
        return self.directory / f"chunk-{index:05d}.jsonl"

    def spill_chunk(self, index: int, records: List[LogRecord]) -> None:
        lines = [
            json.dumps(record_as_dict(record), ensure_ascii=False)
            for record in records
        ]
        _write_text_atomic(
            self.spill_path(index), "".join(line + "\n" for line in lines)
        )

    def load_spill(self, index: int) -> List[LogRecord]:
        path = self.spill_path(index)
        if not path.is_file():
            raise CheckpointError(
                f"checkpoint is missing spill file {path}"
            )
        records = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(record_from_dict(json.loads(line)))
        return records


def clean_streaming_source(
    source: LogSource,
    config: PipelineConfig,
    recorder: Recorder,
    *,
    checkpoint_dir: Optional[PathLike] = None,
    resume: bool = False,
    template_witnesses: Optional[Sequence[str]] = None,
) -> Tuple[QueryLog, StreamingCleaner]:
    """Stream-clean ``source`` chunk by chunk, optionally checkpointed.

    Without ``checkpoint_dir`` this is the out-of-core equivalent of
    ``StreamingCleaner.run`` — same clean log, same stats, bounded by
    one chunk plus the open blocks instead of the whole log.  With it,
    per-chunk progress is persisted as described in the module docs;
    with ``resume=True`` the run continues from the last completed
    chunk.  Returns the clean log and the driving cleaner (for its
    ``stats`` and ``quarantine``).

    ``template_witnesses`` pre-warms the cleaner's parse cache (see
    :class:`~repro.pipeline.streaming.StreamingCleaner`); a resumed run
    additionally preloads the witness list its checkpoint carried, so
    the restored cache is as warm as the dead run's was.
    """
    cleaner = StreamingCleaner(
        config, recorder=recorder, template_witnesses=template_witnesses
    )
    checkpoint = (
        RunCheckpoint(checkpoint_dir) if checkpoint_dir is not None else None
    )
    digest = config_digest(config)
    fingerprint = source.fingerprint()
    clean_records: List[LogRecord] = []
    start_chunk = 0

    if resume:
        if checkpoint is None:
            raise CheckpointError("resume=True requires a checkpoint_dir")
        state = checkpoint.load_state()
        if state["source_fingerprint"] != fingerprint:
            raise CheckpointError(
                "checkpoint belongs to a different source "
                f"(expected {state['source_fingerprint']!r}, "
                f"got {fingerprint!r})"
            )
        if state["config_digest"] != digest:
            raise CheckpointError(
                "checkpoint was written under a different configuration"
            )
        cleaner.restore_state(state["cleaner"])  # type: ignore[arg-type]
        if recorder.enabled and state["metrics"] is not None:
            recorder.absorb(
                PipelineMetrics.from_dict(state["metrics"])  # type: ignore[arg-type]
            )
        start_chunk = int(state["chunks_done"])  # type: ignore[arg-type]
        for index in range(start_chunk):
            clean_records.extend(checkpoint.load_spill(index))
        if state.get("complete"):
            # The interrupted run had actually finished: the tail spill
            # (end-of-stream block closes) sits at index ``chunks_done``.
            clean_records.extend(checkpoint.load_spill(start_chunk))
            return QueryLog(clean_records), cleaner

    def save(chunks_done: int, complete: bool) -> None:
        assert checkpoint is not None
        cleaner_state = cleaner.export_state()  # flushes counters first
        metrics_state = (
            recorder.metrics.as_dict() if recorder.enabled else None
        )
        checkpoint.save_state(
            {
                "version": STATE_VERSION,
                "source_fingerprint": fingerprint,
                "config_digest": digest,
                "chunks_done": chunks_done,
                "complete": complete,
                "cleaner": cleaner_state,
                "metrics": metrics_state,
            }
        )

    index = start_chunk
    for chunk in source.open_chunks(start_chunk=start_chunk):
        emitted = list(cleaner.feed(chunk))
        clean_records.extend(emitted)
        if checkpoint is not None:
            checkpoint.spill_chunk(index, emitted)
            save(chunks_done=index + 1, complete=False)
        index += 1

    tail = list(cleaner.finish())
    clean_records.extend(tail)
    if checkpoint is not None:
        checkpoint.spill_chunk(index, tail)
        save(chunks_done=index, complete=True)
    return QueryLog(clean_records), cleaner
