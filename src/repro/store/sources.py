"""The unified log-input API: :class:`LogSource` and :func:`open_log`.

Log input used to be fragmented — ``QueryLog.from_statements``,
``read_csv``, ``read_jsonl``, raw record lists — each with slightly
different ``errors=`` / ``channel=`` plumbing.  A :class:`LogSource` is
the one shape every consumer (``repro.clean``, the CLI, the checkpoint
layer) programs against:

* ``open_chunks()`` — iterate the log as bounded-size record chunks in
  **stable order**: two iterations of the same source yield identical
  chunk boundaries and contents, which is what makes checkpoint resume
  deterministic;
* ``count_hint()`` — the record count when cheaply known (sizing
  progress reports and shard plans), ``None`` otherwise;
* ``close()`` — release any held handles (all sources here open files
  per ``open_chunks`` call, so it is a no-op, but the protocol keeps the
  slot for sources that hold connections).

Adapters: :class:`InMemorySource` (a :class:`QueryLog` or record list),
:class:`CsvSource`, :class:`JsonlSource`, :class:`ColumnarSource`.
:func:`open_log` sniffs the on-disk format (``.csv`` / ``.jsonl`` /
columnar store directory) and returns the right adapter;
:func:`as_source` additionally accepts an in-memory log or an existing
source, and is how ``repro.clean`` resolves its ``log`` argument.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import QuarantineChannel, validate_error_policy
from ..log.io import iter_csv_records, iter_jsonl_records
from ..log.models import LogRecord, QueryLog
from .columnar import is_columnar_store, iter_columnar_chunks, read_manifest

PathLike = Union[str, Path]

#: Default records per chunk for row-oriented sources (the columnar
#: source uses the store's own chunking).
DEFAULT_CHUNK_RECORDS = 8192


class LogSource:
    """Base class / protocol of every log input.

    Subclasses implement :meth:`open_chunks` (and usually
    :meth:`count_hint` / :meth:`fingerprint`); everything else —
    :meth:`read`, iteration, context management — is derived.
    """

    def open_chunks(
        self, *, start_chunk: int = 0
    ) -> Iterator[Sequence[LogRecord]]:
        """Yield the log as record chunks in stable order.

        ``start_chunk`` skips that many leading chunks (the checkpoint
        layer's resume path); the default implementation of a subclass
        may simply discard them, sources with random access (the
        columnar store) seek instead.
        """
        raise NotImplementedError

    def count_hint(self) -> Optional[int]:
        """The record count when cheaply known, else ``None``."""
        return None

    def close(self) -> None:
        """Release held resources (no-op for file-per-iteration sources)."""

    def fingerprint(self) -> str:
        """Identity string stored in checkpoints: a resumed run refuses
        to continue when the source's fingerprint changed underneath it.
        File-backed sources include path, size and mtime; the in-memory
        source can only offer a weak length-based identity."""
        hint = self.count_hint()
        return f"{type(self).__name__}:{hint if hint is not None else '?'}"

    def read(self) -> QueryLog:
        """Materialise the whole source as a :class:`QueryLog`."""
        records: List[LogRecord] = []
        for chunk in self.open_chunks():
            records.extend(chunk)
        return QueryLog(records)

    def __iter__(self) -> Iterator[LogRecord]:
        for chunk in self.open_chunks():
            yield from chunk

    def __enter__(self) -> "LogSource":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemorySource(LogSource):
    """A :class:`QueryLog` (or record sequence) served in chunks."""

    def __init__(
        self,
        log: Union[QueryLog, Sequence[LogRecord]],
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> None:
        self._records: Sequence[LogRecord] = (
            log.records() if isinstance(log, QueryLog) else list(log)
        )
        self.chunk_records = _validated_chunk_records(chunk_records)

    def open_chunks(
        self, *, start_chunk: int = 0
    ) -> Iterator[Sequence[LogRecord]]:
        records = self._records
        size = self.chunk_records
        for offset in range(start_chunk * size, len(records), size):
            yield records[offset : offset + size]

    def count_hint(self) -> Optional[int]:
        return len(self._records)

    def fingerprint(self) -> str:
        return f"inmemory:{len(self._records)}"


class _FileSource(LogSource):
    """Shared plumbing of the row-oriented file adapters."""

    format_name = "?"

    def __init__(
        self,
        path: PathLike,
        *,
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
        errors: str = "strict",
        channel: Optional[QuarantineChannel] = None,
    ) -> None:
        self.path = Path(path)
        self.chunk_records = _validated_chunk_records(chunk_records)
        self.errors = validate_error_policy(errors)
        self.channel = channel

    def _iter_records(self) -> Iterator[LogRecord]:
        raise NotImplementedError

    def open_chunks(
        self, *, start_chunk: int = 0
    ) -> Iterator[Sequence[LogRecord]]:
        chunk: List[LogRecord] = []
        index = 0
        for record in self._iter_records():
            chunk.append(record)
            if len(chunk) >= self.chunk_records:
                if index >= start_chunk:
                    yield chunk
                index += 1
                chunk = []
        if chunk and index >= start_chunk:
            yield chunk

    def fingerprint(self) -> str:
        stat = self.path.stat()
        return (
            f"{self.format_name}:{self.path.resolve()}"
            f":{stat.st_size}:{stat.st_mtime_ns}"
        )


class CsvSource(_FileSource):
    """Chunked reader over a CSV log (see :data:`repro.log.io.CSV_FIELDS`)."""

    format_name = "csv"

    def _iter_records(self) -> Iterator[LogRecord]:
        return iter_csv_records(
            self.path, errors=self.errors, channel=self.channel
        )


class JsonlSource(_FileSource):
    """Chunked reader over a JSON-lines log."""

    format_name = "jsonl"

    def _iter_records(self) -> Iterator[LogRecord]:
        return iter_jsonl_records(
            self.path, errors=self.errors, channel=self.channel
        )


class ColumnarSource(LogSource):
    """Chunked reader over a columnar store directory.

    Chunk boundaries are the store's own chunks, so ``start_chunk``
    seeks — skipped chunks are never read or decompressed.
    """

    format_name = "columnar"

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._manifest = read_manifest(self.path)

    def open_chunks(
        self, *, start_chunk: int = 0
    ) -> Iterator[Sequence[LogRecord]]:
        return iter_columnar_chunks(self.path, start_chunk=start_chunk)

    def count_hint(self) -> Optional[int]:
        return int(self._manifest["record_count"])  # type: ignore[arg-type]

    def chunk_count(self) -> int:
        return len(self._manifest["chunks"])  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        stat = (self.path / "manifest.json").stat()
        return (
            f"columnar:{self.path.resolve()}"
            f":{self._manifest['record_count']}:{stat.st_mtime_ns}"
        )

    def template_witnesses(self) -> List[str]:
        """The store's template witness texts (see
        :func:`repro.store.columnar.load_template_witnesses`); empty for
        stores written before parse engine v3."""
        from .columnar import load_template_witnesses

        try:
            return load_template_witnesses(self.path)
        except (OSError, ValueError, KeyError, zlib.error):
            # A store with a damaged dictionary still *reads* (chunks
            # carrying verbatim statements don't touch it); witnesses
            # are an acceleration layer, so degrade to a cold start.
            return []


def _validated_chunk_records(chunk_records: int) -> int:
    if chunk_records < 1:
        raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
    return chunk_records


# ----------------------------------------------------------------------
# Entry points


def sniff_format(path: PathLike) -> str:
    """The on-disk format of ``path``: ``csv`` / ``jsonl`` / ``columnar``.

    A directory holding a store manifest is columnar; files are sniffed
    by extension.  Raises ``ValueError`` when nothing matches.
    """
    target = Path(path)
    if target.is_dir():
        if is_columnar_store(target):
            return "columnar"
        raise ValueError(
            f"{path} is a directory but not a columnar store "
            "(no valid manifest.json)"
        )
    suffix = target.suffix.lower()
    if suffix == ".csv":
        return "csv"
    if suffix == ".jsonl":
        return "jsonl"
    raise ValueError(
        f"cannot sniff the log format of {path}: expected a .csv or "
        ".jsonl file or a columnar store directory "
        "(pass format= explicitly)"
    )


def open_log(
    path: PathLike,
    *,
    format: Optional[str] = None,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> LogSource:
    """Open the log at ``path`` as a :class:`LogSource`.

    The single entry point for reading any on-disk log:
    ``open_log(path).read()`` materialises it, ``open_log(path)
    .open_chunks()`` streams it in bounded memory, and
    ``repro.clean(path)`` accepts the path (or the source) directly.

    :param format: ``"csv"`` / ``"jsonl"`` / ``"columnar"``; sniffed
        from the path when ``None``.
    :param errors: row-level error policy for the row-oriented formats
        (:data:`repro.errors.ERROR_POLICIES`); the columnar store has no
        malformed rows by construction.
    :param channel: quarantine channel receiving unreadable rows under
        ``errors="quarantine"``.
    :param chunk_records: records per chunk for the row-oriented
        formats (the columnar store streams its own chunks).
    """
    resolved = format or sniff_format(path)
    if resolved == "csv":
        return CsvSource(
            path, chunk_records=chunk_records, errors=errors, channel=channel
        )
    if resolved == "jsonl":
        return JsonlSource(
            path, chunk_records=chunk_records, errors=errors, channel=channel
        )
    if resolved == "columnar":
        return ColumnarSource(path)
    raise ValueError(
        f"unknown log format {resolved!r}; "
        "expected 'csv', 'jsonl' or 'columnar'"
    )


def as_source(
    log: Union[QueryLog, Sequence[LogRecord], PathLike, LogSource],
    *,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
    errors: str = "strict",
    channel: Optional[QuarantineChannel] = None,
) -> Tuple[LogSource, bool]:
    """Resolve any accepted log input to a source.

    Returns ``(source, owned)`` — ``owned`` is ``True`` when this call
    created the source (the caller should close it), ``False`` when the
    caller passed an existing :class:`LogSource` in (its lifecycle stays
    with whoever built it).
    """
    if isinstance(log, LogSource):
        return log, False
    if isinstance(log, (str, Path)):
        return (
            open_log(
                log,
                errors=errors,
                channel=channel,
                chunk_records=chunk_records,
            ),
            True,
        )
    return InMemorySource(log, chunk_records=chunk_records), True
