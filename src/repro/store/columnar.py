"""The on-disk columnar log format (template dictionary + constant
vectors, chunk-compressed).

"Query Log Compression for Workload Analytics" observes that an SQL log
is a template dictionary plus per-record constant vectors: the number of
distinct statement *shapes* grows orders of magnitude slower than the
log, so storing each record as ``(template_id, constants...)`` removes
almost all of the redundancy before generic compression even starts.
This module is that representation on disk:

``<store>/``
  ``manifest.json``   format marker, record/chunk counts, chunk sizes
  ``templates.bin``   zlib(JSON) template dictionary — the id-ordered
                      template ``texts`` plus one first-seen *witness*
                      statement per template (see below)
  ``chunk-00000.bin`` zlib(JSON dict of per-record columns)
  ``chunk-00001.bin`` …

Each chunk holds up to ``chunk_records`` records in **file order** as
parallel columns — ``seq`` / ``timestamp`` / ``user`` / ``ip`` /
``session`` / ``rows`` / ``template`` (dictionary ids) / ``constants``
(one constant vector per record) — so a reader materialises one chunk at
a time and never the whole log.

**Templating is text-level and unconditionally lossless.**  The store
cannot reuse the lexer's canonical fingerprints (they normalise away the
original spelling), so it extracts string literals (``'...'`` with
``''`` escapes) and standalone numbers with a guarded regex, replaces
each with a ``"\\x00"`` marker, and splices them back verbatim on read.
A statement that itself contains the marker byte — which never occurs in
real SQL text — is stored whole under the reserved template id ``-1``.
The round trip is the exact inverse of the extraction, so
``read(write(log)) == log`` holds for *any* input, however unparsable.

Since parse engine v3 ``templates.bin`` additionally carries one
**witness** statement per template — the first record text that interned
it.  :func:`load_template_witnesses` hands these to the parse engine's
template-dictionary preload
(:meth:`repro.skeleton.cache.TemplateCache.preload`), so re-cleaning a
store the pipeline has seen before starts with a warm parse cache.
Witnesses are re-parsed on load, never trusted, so they affect speed
only; stores written before v3 simply yield no witnesses.

Every file is written atomically (temp file + ``os.replace``) and the
manifest is written **last**, so a directory with a manifest is always a
complete, readable store; a crashed writer leaves no manifest behind.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import struct
import tempfile
import zlib
from array import array
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..log.models import LogRecord
from ..skeleton.interner import TemplateInterner

PathLike = Union[str, Path]

#: Format marker checked by the reader (and by ``open_log`` sniffing).
FORMAT_NAME = "repro-columnar"
FORMAT_VERSION = 1

#: Placeholder spliced into templates where a constant was lifted out.
MARKER = "\x00"

#: Reserved template id for statements stored verbatim (text contains
#: the marker byte, so the splice inverse would be ambiguous).
VERBATIM_TEMPLATE = -1

#: One extraction pass: string literals first (so digits inside them are
#: never touched), then standalone numeric literals.  The lookbehind
#: keeps digits that are part of an identifier (``t1``, ``objID2``) or a
#: dotted name in the template.  Extraction quality only affects the
#: compression ratio — losslessness comes from the splice being the
#: exact inverse, not from what the regex matches.
_CONSTANT_RE = re.compile(
    r"'(?:[^']|'')*'"
    r"|(?<![\w.])\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
)

_CHUNK_COLUMNS = ("seq", "timestamp", "user", "ip", "session", "rows")


# ----------------------------------------------------------------------
# Text-level template codec


def encode_sql(sql: str) -> Tuple[str, List[str]]:
    """Split ``sql`` into a marker template and its constant vector.

    ``decode_sql`` restores the original text exactly.  Raises
    ``ValueError`` when the text contains the marker byte — callers
    handle that case with :data:`VERBATIM_TEMPLATE`.
    """
    if MARKER in sql:
        raise ValueError("statement contains the template marker byte")
    constants: List[str] = []

    def lift(match: "re.Match[str]") -> str:
        constants.append(match.group(0))
        return MARKER

    return _CONSTANT_RE.sub(lift, sql), constants


def decode_sql(template: str, constants: Sequence[str]) -> str:
    """Splice ``constants`` back into ``template`` (inverse of
    :func:`encode_sql`)."""
    parts = template.split(MARKER)
    if len(parts) != len(constants) + 1:
        raise ValueError(
            f"template has {len(parts) - 1} slots but "
            f"{len(constants)} constants"
        )
    pieces = [parts[0]]
    for constant, part in zip(constants, parts[1:]):
        pieces.append(constant)
        pieces.append(part)
    return "".join(pieces)


# ----------------------------------------------------------------------
# Atomic binary files


def _write_bytes_atomic(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _dump_compressed(path: Path, payload: object) -> None:
    raw = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    _write_bytes_atomic(path, zlib.compress(raw, 6))


def _load_compressed(path: Path) -> object:
    return json.loads(zlib.decompress(path.read_bytes()).decode("utf-8"))


def chunk_file_name(index: int) -> str:
    return f"chunk-{index:05d}.bin"


# ----------------------------------------------------------------------
# Writer


class ColumnarWriter:
    """Incremental store writer: append records, then :meth:`close`.

    Records are buffered up to ``chunk_records`` and flushed as one
    compressed chunk file; ``close`` writes the template dictionary and
    finally the manifest.  Until the manifest lands the directory is not
    a valid store, which is the crash-safety contract.
    """

    def __init__(self, path: PathLike, *, chunk_records: int = 8192) -> None:
        if chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.path.mkdir(parents=True, exist_ok=True)
        self._templates = TemplateInterner()
        #: first-seen statement text per template id (the witness).
        self._witnesses: List[str] = []
        self._buffer: Dict[str, list] = {
            name: [] for name in _CHUNK_COLUMNS
        }
        self._buffer["template"] = []
        self._buffer["constants"] = []
        self._chunk_sizes: List[int] = []
        self._record_count = 0
        self._closed = False

    def append(self, record: LogRecord) -> None:
        buffer = self._buffer
        buffer["seq"].append(record.seq)
        buffer["timestamp"].append(record.timestamp)
        buffer["user"].append(record.user)
        buffer["ip"].append(record.ip)
        buffer["session"].append(record.session)
        buffer["rows"].append(record.rows)
        sql = record.sql
        try:
            template, constants = encode_sql(sql)
        except ValueError:
            buffer["template"].append(VERBATIM_TEMPLATE)
            buffer["constants"].append([sql])
        else:
            template_id = self._templates.intern(template)
            buffer["template"].append(template_id)
            buffer["constants"].append(constants)
            if template_id == len(self._witnesses):
                # First record of a new template: its verbatim text is
                # the template's witness (verbatim statements carry the
                # marker byte and are skipped — they would not parse).
                self._witnesses.append(sql)
        self._record_count += 1
        if len(buffer["seq"]) >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        size = len(self._buffer["seq"])
        if not size:
            return
        _dump_compressed(
            self.path / chunk_file_name(len(self._chunk_sizes)), self._buffer
        )
        self._chunk_sizes.append(size)
        for column in self._buffer.values():
            column.clear()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_chunk()
        _dump_compressed(
            self.path / "templates.bin",
            {
                "texts": list(self._templates.fingerprints()),
                "witnesses": self._witnesses,
            },
        )
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "record_count": self._record_count,
            "chunk_records": self.chunk_records,
            "chunks": self._chunk_sizes,
            "template_count": len(self._templates),
        }
        _write_bytes_atomic(
            self.path / "manifest.json",
            (json.dumps(manifest, indent=2) + "\n").encode("utf-8"),
        )
        self._closed = True

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def write_columnar(
    records: Iterable[LogRecord],
    path: PathLike,
    *,
    chunk_records: int = 8192,
) -> None:
    """Write ``records`` (any iterable, file order preserved) as a
    columnar store directory at ``path``."""
    with ColumnarWriter(path, chunk_records=chunk_records) as writer:
        writer.extend(records)


# ----------------------------------------------------------------------
# Reader


def is_columnar_store(path: PathLike) -> bool:
    """``True`` when ``path`` is a directory holding a store manifest."""
    manifest = Path(path) / "manifest.json"
    if not manifest.is_file():
        return False
    try:
        data = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(data, dict) and data.get("format") == FORMAT_NAME


def read_manifest(path: PathLike) -> Dict[str, object]:
    """Load and validate the manifest of the store at ``path``."""
    manifest_path = Path(path) / "manifest.json"
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a columnar store (no manifest.json)")
    data = json.loads(manifest_path.read_text(encoding="utf-8"))
    if data.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path} is not a {FORMAT_NAME} store "
            f"(format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
        )
    return data


def load_templates(path: PathLike) -> List[str]:
    """The store's template dictionary, id-ordered.

    Reads both layouts: the v3 ``{"texts", "witnesses"}`` dict and the
    original plain list (stores written before witnesses existed).
    """
    payload = _load_compressed(Path(path) / "templates.bin")
    if isinstance(payload, dict):
        return payload["texts"]  # type: ignore[return-value]
    return payload  # type: ignore[return-value]


def load_template_witnesses(path: PathLike) -> List[str]:
    """One first-seen witness statement text per store template.

    Feed these to
    :meth:`repro.skeleton.cache.TemplateCache.preload` to warm-start a
    re-run over the store.  Empty for stores written before parse
    engine v3 — the reader treats witnesses as an optional acceleration
    layer, never a requirement.
    """
    payload = _load_compressed(Path(path) / "templates.bin")
    if isinstance(payload, dict):
        witnesses = payload.get("witnesses", [])
        if isinstance(witnesses, list):
            return witnesses
    return []


def read_chunk(
    path: PathLike, index: int, templates: Sequence[str]
) -> List[LogRecord]:
    """Materialise one chunk of the store as records in file order."""
    columns = _load_compressed(Path(path) / chunk_file_name(index))
    records: List[LogRecord] = []
    append = records.append
    template_ids = columns["template"]  # type: ignore[index]
    constant_vectors = columns["constants"]  # type: ignore[index]
    for position in range(len(template_ids)):
        template_id = template_ids[position]
        constants = constant_vectors[position]
        if template_id == VERBATIM_TEMPLATE:
            sql = constants[0]
        else:
            sql = decode_sql(templates[template_id], constants)
        append(
            LogRecord(
                seq=columns["seq"][position],  # type: ignore[index]
                sql=sql,
                timestamp=columns["timestamp"][position],  # type: ignore[index]
                user=columns["user"][position],  # type: ignore[index]
                ip=columns["ip"][position],  # type: ignore[index]
                session=columns["session"][position],  # type: ignore[index]
                rows=columns["rows"][position],  # type: ignore[index]
            )
        )
    return records


def iter_columnar_chunks(
    path: PathLike, *, start_chunk: int = 0
) -> Iterator[List[LogRecord]]:
    """Stream the store chunk by chunk (bounded memory), optionally
    skipping the first ``start_chunk`` chunks without reading them."""
    manifest = read_manifest(path)
    templates: Optional[List[str]] = None
    for index in range(start_chunk, len(manifest["chunks"])):  # type: ignore[arg-type]
        if templates is None:
            templates = load_templates(path)
        yield read_chunk(path, index, templates)


def store_size_bytes(path: PathLike) -> int:
    """Total size of the store's data files (compression reporting)."""
    base = Path(path)
    total = 0
    for name in os.listdir(base):
        if name == "manifest.json" or name == "templates.bin" or (
            name.startswith("chunk-") and name.endswith(".bin")
        ):
            total += (base / name).stat().st_size
    return total


# ----------------------------------------------------------------------
# In-memory shard codec (the parallel executor's wire format)
#
# Same template-dictionary idea as the on-disk store, but tuned for IPC
# rather than persistence: one shard of records becomes ONE contiguous
# ``bytes`` blob of packed numeric columns and concatenated UTF-8 string
# sections.  A blob ships to a worker either as a single pickle-5 bytes
# object (no per-record object overhead) or as a ``SharedMemory``
# segment the worker attaches to (no copy at all); ``decode_shard``
# reconstructs the records lazily, straight into the parse fast path.
#
# The format is process-local by design — native endianness, no
# versioned persistence contract beyond the magic/version check — and
# unconditionally lossless for *canonical* records (the field types
# ``LogRecord`` documents).  A record with any off-type field (sql=None,
# an integer sql, a non-float timestamp, an out-of-int64-range seq…)
# cannot ride the packed columns exactly, so it travels in a pickled
# "oddball" side list keyed by its position; such rows exist precisely
# so poisoned logs reach the workers' validate stage unmangled.

SHARD_MAGIC = b"RSH1"
SHARD_FORMAT_VERSION = 1

#: Section count of the shard blob (fixed layout, see ``encode_shard``).
_SHARD_SECTIONS = 20

_SHARD_HEADER = struct.Struct("<4sHqq")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _is_canonical_record(record: LogRecord) -> bool:
    """True when every field fits the packed columns *exactly*.

    Deliberately `type(...) is` — not ``isinstance`` — so subclasses,
    bools, ints-as-timestamps and other lossy coercions all take the
    pickled oddball path and round-trip bit for bit.
    """
    return (
        type(record) is LogRecord
        and type(record.seq) is int
        and _INT64_MIN <= record.seq <= _INT64_MAX
        and type(record.sql) is str
        and type(record.timestamp) is float
        and (record.user is None or type(record.user) is str)
        and (record.ip is None or type(record.ip) is str)
        and (record.session is None or type(record.session) is str)
        and (
            record.rows is None
            or (
                type(record.rows) is int
                and _INT64_MIN <= record.rows <= _INT64_MAX
            )
        )
    )


class _StringDictColumn:
    """Dictionary-encoded optional-string column (user / ip / session)."""

    __slots__ = ("ids", "index", "parts")

    def __init__(self) -> None:
        self.ids = array("i")
        self.index: Dict[str, int] = {}
        self.parts: List[bytes] = []

    def add(self, value: Optional[str]) -> None:
        if value is None:
            self.ids.append(-1)
            return
        assigned = self.index.get(value)
        if assigned is None:
            assigned = len(self.parts)
            self.index[value] = assigned
            self.parts.append(value.encode("utf-8"))
        self.ids.append(assigned)

    def sections(self) -> List[bytes]:
        offsets = array("Q", [0])
        total = 0
        for part in self.parts:
            total += len(part)
            offsets.append(total)
        return [self.ids.tobytes(), offsets.tobytes(), b"".join(self.parts)]


def _decode_string_dict(
    ids_bytes: bytes, offsets_bytes: bytes, blob: bytes
) -> Tuple[array, List[Optional[str]]]:
    ids = array("i")
    ids.frombytes(ids_bytes)
    offsets = array("Q")
    offsets.frombytes(offsets_bytes)
    values = [
        blob[offsets[i]:offsets[i + 1]].decode("utf-8")
        for i in range(len(offsets) - 1)
    ]
    return ids, values


def encode_shard(records: Sequence[LogRecord]) -> bytes:
    """Pack one shard of records into a single contiguous buffer.

    Layout: a fixed header (magic, version, total record count,
    canonical record count) followed by 20 length-prefixed sections —
    ``seq``/``timestamp``/``template-id`` int64/float64 columns, the
    per-record constant counts plus cumulative constant offsets and one
    concatenated constants blob, the shard-local template dictionary
    (offsets + blob), three dictionary-encoded string columns
    (user/ip/session), a rows presence+value pair, and the pickled
    oddball side list.  ``decode_shard`` is the exact inverse.
    """
    seqs = array("q")
    timestamps = array("d")
    template_ids = array("q")
    constant_counts = array("I")
    constant_offsets = array("Q", [0])
    constant_parts: List[bytes] = []
    constant_total = 0
    template_index: Dict[str, int] = {}
    template_parts: List[bytes] = []
    users = _StringDictColumn()
    ips = _StringDictColumn()
    sessions = _StringDictColumn()
    rows_flags = bytearray()
    rows_values = array("q")
    oddballs: List[Tuple[int, LogRecord]] = []
    # Exact-text memo: logs repeat statement texts heavily, so most
    # records skip the constant-extraction regex entirely.
    memo: Dict[str, Tuple[int, Tuple[str, ...]]] = {}

    for position, record in enumerate(records):
        if not _is_canonical_record(record):
            oddballs.append((position, record))
            continue
        sql = record.sql
        encoded = memo.get(sql)
        if encoded is None:
            try:
                template, constants = encode_sql(sql)
            except ValueError:
                template_id, constants = VERBATIM_TEMPLATE, [sql]
            else:
                template_id = template_index.get(template)
                if template_id is None:
                    template_id = len(template_parts)
                    template_index[template] = template_id
                    template_parts.append(template.encode("utf-8"))
            encoded = (template_id, tuple(constants))
            memo[sql] = encoded
        template_id, constants = encoded
        seqs.append(record.seq)
        timestamps.append(record.timestamp)
        template_ids.append(template_id)
        constant_counts.append(len(constants))
        for constant in constants:
            part = constant.encode("utf-8")
            constant_total += len(part)
            constant_offsets.append(constant_total)
            constant_parts.append(part)
        users.add(record.user)
        ips.add(record.ip)
        sessions.add(record.session)
        if record.rows is None:
            rows_flags.append(0)
            rows_values.append(0)
        else:
            rows_flags.append(1)
            rows_values.append(record.rows)

    template_offsets = array("Q", [0])
    template_total = 0
    for part in template_parts:
        template_total += len(part)
        template_offsets.append(template_total)

    sections = [
        seqs.tobytes(),
        timestamps.tobytes(),
        template_ids.tobytes(),
        constant_counts.tobytes(),
        constant_offsets.tobytes(),
        b"".join(constant_parts),
        template_offsets.tobytes(),
        b"".join(template_parts),
        *users.sections(),
        *ips.sections(),
        *sessions.sections(),
        bytes(rows_flags),
        rows_values.tobytes(),
        pickle.dumps(oddballs, protocol=pickle.HIGHEST_PROTOCOL),
    ]
    assert len(sections) == _SHARD_SECTIONS
    header = _SHARD_HEADER.pack(
        SHARD_MAGIC, SHARD_FORMAT_VERSION, len(records), len(seqs)
    )
    lengths = struct.pack(
        "<%dq" % _SHARD_SECTIONS, *(len(section) for section in sections)
    )
    return b"".join([header, lengths, *sections])


def shard_record_count(buffer) -> int:
    """Total records in an encoded shard (header peek, no decode)."""
    view = memoryview(buffer)
    magic, version, total, _ = _SHARD_HEADER.unpack_from(view, 0)
    view.release()
    if magic != SHARD_MAGIC or version != SHARD_FORMAT_VERSION:
        raise ValueError("not an encoded shard buffer")
    return total


def decode_shard(buffer) -> Iterator[LogRecord]:
    """Decode an :func:`encode_shard` blob back into records, lazily.

    Accepts any buffer object (``bytes``, ``memoryview``,
    ``SharedMemory.buf`` slices).  All reads from the buffer happen
    *before* the first record is yielded, so a caller may release the
    underlying memory (e.g. close a shared-memory segment) as soon as
    this function returns, and iterate at leisure.
    """
    view = memoryview(buffer)
    try:
        magic, version, total, canonical = _SHARD_HEADER.unpack_from(view, 0)
        if magic != SHARD_MAGIC or version != SHARD_FORMAT_VERSION:
            raise ValueError("not an encoded shard buffer")
        offset = _SHARD_HEADER.size
        lengths = struct.unpack_from("<%dq" % _SHARD_SECTIONS, view, offset)
        offset += 8 * _SHARD_SECTIONS
        sections: List[bytes] = []
        for length in lengths:
            sections.append(bytes(view[offset:offset + length]))
            offset += length
    finally:
        view.release()

    seqs = array("q")
    seqs.frombytes(sections[0])
    timestamps = array("d")
    timestamps.frombytes(sections[1])
    template_ids = array("q")
    template_ids.frombytes(sections[2])
    constant_counts = array("I")
    constant_counts.frombytes(sections[3])
    constant_offsets = array("Q")
    constant_offsets.frombytes(sections[4])
    constant_blob = sections[5]
    template_offsets = array("Q")
    template_offsets.frombytes(sections[6])
    template_blob = sections[7]
    templates = [
        template_blob[
            template_offsets[i]:template_offsets[i + 1]
        ].decode("utf-8")
        for i in range(len(template_offsets) - 1)
    ]
    user_ids, user_dict = _decode_string_dict(*sections[8:11])
    ip_ids, ip_dict = _decode_string_dict(*sections[11:14])
    session_ids, session_dict = _decode_string_dict(*sections[14:17])
    rows_flags = sections[17]
    rows_values = array("q")
    rows_values.frombytes(sections[18])
    oddballs: List[Tuple[int, LogRecord]] = pickle.loads(sections[19])
    if len(seqs) != canonical:
        raise ValueError("corrupt shard buffer: column length mismatch")

    def generate() -> Iterator[LogRecord]:
        oddball_at = dict(oddballs)
        column = 0
        constant_base = 0
        for position in range(total):
            oddball = oddball_at.get(position)
            if oddball is not None:
                yield oddball
                continue
            template_id = template_ids[column]
            count = constant_counts[column]
            constants = [
                constant_blob[
                    constant_offsets[constant_base + j]:
                    constant_offsets[constant_base + j + 1]
                ].decode("utf-8")
                for j in range(count)
            ]
            constant_base += count
            if template_id == VERBATIM_TEMPLATE:
                sql = constants[0]
            else:
                sql = decode_sql(templates[template_id], constants)
            user_id = user_ids[column]
            ip_id = ip_ids[column]
            session_id = session_ids[column]
            yield LogRecord(
                seq=seqs[column],
                sql=sql,
                timestamp=timestamps[column],
                user=None if user_id < 0 else user_dict[user_id],
                ip=None if ip_id < 0 else ip_dict[ip_id],
                session=(
                    None if session_id < 0 else session_dict[session_id]
                ),
                rows=rows_values[column] if rows_flags[column] else None,
            )
            column += 1

    return generate()
