"""The on-disk columnar log format (template dictionary + constant
vectors, chunk-compressed).

"Query Log Compression for Workload Analytics" observes that an SQL log
is a template dictionary plus per-record constant vectors: the number of
distinct statement *shapes* grows orders of magnitude slower than the
log, so storing each record as ``(template_id, constants...)`` removes
almost all of the redundancy before generic compression even starts.
This module is that representation on disk:

``<store>/``
  ``manifest.json``   format marker, record/chunk counts, chunk sizes
  ``templates.bin``   zlib(JSON list of template texts), id = position
  ``chunk-00000.bin`` zlib(JSON dict of per-record columns)
  ``chunk-00001.bin`` …

Each chunk holds up to ``chunk_records`` records in **file order** as
parallel columns — ``seq`` / ``timestamp`` / ``user`` / ``ip`` /
``session`` / ``rows`` / ``template`` (dictionary ids) / ``constants``
(one constant vector per record) — so a reader materialises one chunk at
a time and never the whole log.

**Templating is text-level and unconditionally lossless.**  The store
cannot reuse the lexer's canonical fingerprints (they normalise away the
original spelling), so it extracts string literals (``'...'`` with
``''`` escapes) and standalone numbers with a guarded regex, replaces
each with a ``"\\x00"`` marker, and splices them back verbatim on read.
A statement that itself contains the marker byte — which never occurs in
real SQL text — is stored whole under the reserved template id ``-1``.
The round trip is the exact inverse of the extraction, so
``read(write(log)) == log`` holds for *any* input, however unparsable.

Every file is written atomically (temp file + ``os.replace``) and the
manifest is written **last**, so a directory with a manifest is always a
complete, readable store; a crashed writer leaves no manifest behind.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..log.models import LogRecord
from ..skeleton.interner import TemplateInterner

PathLike = Union[str, Path]

#: Format marker checked by the reader (and by ``open_log`` sniffing).
FORMAT_NAME = "repro-columnar"
FORMAT_VERSION = 1

#: Placeholder spliced into templates where a constant was lifted out.
MARKER = "\x00"

#: Reserved template id for statements stored verbatim (text contains
#: the marker byte, so the splice inverse would be ambiguous).
VERBATIM_TEMPLATE = -1

#: One extraction pass: string literals first (so digits inside them are
#: never touched), then standalone numeric literals.  The lookbehind
#: keeps digits that are part of an identifier (``t1``, ``objID2``) or a
#: dotted name in the template.  Extraction quality only affects the
#: compression ratio — losslessness comes from the splice being the
#: exact inverse, not from what the regex matches.
_CONSTANT_RE = re.compile(
    r"'(?:[^']|'')*'"
    r"|(?<![\w.])\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
)

_CHUNK_COLUMNS = ("seq", "timestamp", "user", "ip", "session", "rows")


# ----------------------------------------------------------------------
# Text-level template codec


def encode_sql(sql: str) -> Tuple[str, List[str]]:
    """Split ``sql`` into a marker template and its constant vector.

    ``decode_sql`` restores the original text exactly.  Raises
    ``ValueError`` when the text contains the marker byte — callers
    handle that case with :data:`VERBATIM_TEMPLATE`.
    """
    if MARKER in sql:
        raise ValueError("statement contains the template marker byte")
    constants: List[str] = []

    def lift(match: "re.Match[str]") -> str:
        constants.append(match.group(0))
        return MARKER

    return _CONSTANT_RE.sub(lift, sql), constants


def decode_sql(template: str, constants: Sequence[str]) -> str:
    """Splice ``constants`` back into ``template`` (inverse of
    :func:`encode_sql`)."""
    parts = template.split(MARKER)
    if len(parts) != len(constants) + 1:
        raise ValueError(
            f"template has {len(parts) - 1} slots but "
            f"{len(constants)} constants"
        )
    pieces = [parts[0]]
    for constant, part in zip(constants, parts[1:]):
        pieces.append(constant)
        pieces.append(part)
    return "".join(pieces)


# ----------------------------------------------------------------------
# Atomic binary files


def _write_bytes_atomic(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _dump_compressed(path: Path, payload: object) -> None:
    raw = json.dumps(payload, ensure_ascii=False).encode("utf-8")
    _write_bytes_atomic(path, zlib.compress(raw, 6))


def _load_compressed(path: Path) -> object:
    return json.loads(zlib.decompress(path.read_bytes()).decode("utf-8"))


def chunk_file_name(index: int) -> str:
    return f"chunk-{index:05d}.bin"


# ----------------------------------------------------------------------
# Writer


class ColumnarWriter:
    """Incremental store writer: append records, then :meth:`close`.

    Records are buffered up to ``chunk_records`` and flushed as one
    compressed chunk file; ``close`` writes the template dictionary and
    finally the manifest.  Until the manifest lands the directory is not
    a valid store, which is the crash-safety contract.
    """

    def __init__(self, path: PathLike, *, chunk_records: int = 8192) -> None:
        if chunk_records < 1:
            raise ValueError(
                f"chunk_records must be >= 1, got {chunk_records}"
            )
        self.path = Path(path)
        self.chunk_records = chunk_records
        self.path.mkdir(parents=True, exist_ok=True)
        self._templates = TemplateInterner()
        self._buffer: Dict[str, list] = {
            name: [] for name in _CHUNK_COLUMNS
        }
        self._buffer["template"] = []
        self._buffer["constants"] = []
        self._chunk_sizes: List[int] = []
        self._record_count = 0
        self._closed = False

    def append(self, record: LogRecord) -> None:
        buffer = self._buffer
        buffer["seq"].append(record.seq)
        buffer["timestamp"].append(record.timestamp)
        buffer["user"].append(record.user)
        buffer["ip"].append(record.ip)
        buffer["session"].append(record.session)
        buffer["rows"].append(record.rows)
        sql = record.sql
        try:
            template, constants = encode_sql(sql)
        except ValueError:
            buffer["template"].append(VERBATIM_TEMPLATE)
            buffer["constants"].append([sql])
        else:
            buffer["template"].append(self._templates.intern(template))
            buffer["constants"].append(constants)
        self._record_count += 1
        if len(buffer["seq"]) >= self.chunk_records:
            self._flush_chunk()

    def extend(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        size = len(self._buffer["seq"])
        if not size:
            return
        _dump_compressed(
            self.path / chunk_file_name(len(self._chunk_sizes)), self._buffer
        )
        self._chunk_sizes.append(size)
        for column in self._buffer.values():
            column.clear()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_chunk()
        _dump_compressed(
            self.path / "templates.bin", list(self._templates.fingerprints())
        )
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "record_count": self._record_count,
            "chunk_records": self.chunk_records,
            "chunks": self._chunk_sizes,
            "template_count": len(self._templates),
        }
        _write_bytes_atomic(
            self.path / "manifest.json",
            (json.dumps(manifest, indent=2) + "\n").encode("utf-8"),
        )
        self._closed = True

    def __enter__(self) -> "ColumnarWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def write_columnar(
    records: Iterable[LogRecord],
    path: PathLike,
    *,
    chunk_records: int = 8192,
) -> None:
    """Write ``records`` (any iterable, file order preserved) as a
    columnar store directory at ``path``."""
    with ColumnarWriter(path, chunk_records=chunk_records) as writer:
        writer.extend(records)


# ----------------------------------------------------------------------
# Reader


def is_columnar_store(path: PathLike) -> bool:
    """``True`` when ``path`` is a directory holding a store manifest."""
    manifest = Path(path) / "manifest.json"
    if not manifest.is_file():
        return False
    try:
        data = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(data, dict) and data.get("format") == FORMAT_NAME


def read_manifest(path: PathLike) -> Dict[str, object]:
    """Load and validate the manifest of the store at ``path``."""
    manifest_path = Path(path) / "manifest.json"
    if not manifest_path.is_file():
        raise ValueError(f"{path} is not a columnar store (no manifest.json)")
    data = json.loads(manifest_path.read_text(encoding="utf-8"))
    if data.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path} is not a {FORMAT_NAME} store "
            f"(format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
        )
    return data


def load_templates(path: PathLike) -> List[str]:
    """The store's template dictionary, id-ordered."""
    return _load_compressed(Path(path) / "templates.bin")  # type: ignore[return-value]


def read_chunk(
    path: PathLike, index: int, templates: Sequence[str]
) -> List[LogRecord]:
    """Materialise one chunk of the store as records in file order."""
    columns = _load_compressed(Path(path) / chunk_file_name(index))
    records: List[LogRecord] = []
    append = records.append
    template_ids = columns["template"]  # type: ignore[index]
    constant_vectors = columns["constants"]  # type: ignore[index]
    for position in range(len(template_ids)):
        template_id = template_ids[position]
        constants = constant_vectors[position]
        if template_id == VERBATIM_TEMPLATE:
            sql = constants[0]
        else:
            sql = decode_sql(templates[template_id], constants)
        append(
            LogRecord(
                seq=columns["seq"][position],  # type: ignore[index]
                sql=sql,
                timestamp=columns["timestamp"][position],  # type: ignore[index]
                user=columns["user"][position],  # type: ignore[index]
                ip=columns["ip"][position],  # type: ignore[index]
                session=columns["session"][position],  # type: ignore[index]
                rows=columns["rows"][position],  # type: ignore[index]
            )
        )
    return records


def iter_columnar_chunks(
    path: PathLike, *, start_chunk: int = 0
) -> Iterator[List[LogRecord]]:
    """Stream the store chunk by chunk (bounded memory), optionally
    skipping the first ``start_chunk`` chunks without reading them."""
    manifest = read_manifest(path)
    templates: Optional[List[str]] = None
    for index in range(start_chunk, len(manifest["chunks"])):  # type: ignore[arg-type]
        if templates is None:
            templates = load_templates(path)
        yield read_chunk(path, index, templates)


def store_size_bytes(path: PathLike) -> int:
    """Total size of the store's data files (compression reporting)."""
    base = Path(path)
    total = 0
    for name in os.listdir(base):
        if name == "manifest.json" or name == "templates.bin" or (
            name.startswith("chunk-") and name.endswith(".bin")
        ):
            total += (base / name).stat().st_size
    return total
