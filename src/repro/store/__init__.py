"""repro.store — out-of-core log input: sources, the columnar store,
and run checkpoints.

* :mod:`~repro.store.sources` — the :class:`LogSource` protocol and its
  adapters (:class:`InMemorySource`, :class:`CsvSource`,
  :class:`JsonlSource`, :class:`ColumnarSource`), plus :func:`open_log`,
  the single entry point for reading any on-disk log.
* :mod:`~repro.store.columnar` — the ``repro-columnar`` on-disk format:
  a template dictionary plus zlib-compressed per-record column chunks —
  and the in-memory shard codec (:func:`encode_shard` /
  :func:`decode_shard`) the parallel executor ships to workers.
* :mod:`~repro.store.checkpoint` — :class:`RunCheckpoint` and the
  chunked streaming driver behind ``repro.clean(source,
  checkpoint_dir=...)`` / ``--resume``.
"""

from .checkpoint import (
    CheckpointError,
    RunCheckpoint,
    clean_streaming_source,
    config_digest,
)
from .columnar import (
    ColumnarWriter,
    decode_shard,
    decode_sql,
    encode_shard,
    encode_sql,
    is_columnar_store,
    read_manifest,
    shard_record_count,
    store_size_bytes,
    write_columnar,
)
from .sources import (
    DEFAULT_CHUNK_RECORDS,
    ColumnarSource,
    CsvSource,
    InMemorySource,
    JsonlSource,
    LogSource,
    as_source,
    open_log,
    sniff_format,
)

__all__ = [
    "LogSource",
    "InMemorySource",
    "CsvSource",
    "JsonlSource",
    "ColumnarSource",
    "open_log",
    "as_source",
    "sniff_format",
    "DEFAULT_CHUNK_RECORDS",
    "ColumnarWriter",
    "write_columnar",
    "is_columnar_store",
    "read_manifest",
    "store_size_bytes",
    "encode_sql",
    "decode_sql",
    "encode_shard",
    "decode_shard",
    "shard_record_count",
    "RunCheckpoint",
    "CheckpointError",
    "clean_streaming_source",
    "config_digest",
]
