"""Render an AST back to SQL text.

Rendering is *canonical*: keyword case, spacing and parenthesisation are
normalised, so two structurally equal trees always render to the same
string.  The cleaning pipeline relies on this in two places:

* skeleton strings (Definition 5 skeleton equality reduces to string
  equality of the rendered skeletons, which is both fast and auditable),
* the rewriter (solved antipatterns are emitted back into the clean log as
  SQL text, like Table 3 of the paper).

``format_sql(parse(sql))`` round-trips: re-parsing the output yields a tree
equal to the original — the property-based test suite asserts this.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .tokens import KEYWORDS

#: Precedence levels used to decide where parentheses are required when an
#: expression is rendered inside another one.  Higher binds tighter.
_PRECEDENCE = {
    ast.Or: 1,
    ast.And: 2,
    ast.Not: 3,
    ast.Comparison: 4,
    ast.InList: 4,
    ast.InSubquery: 4,
    ast.Between: 4,
    ast.IsNull: 4,
    ast.Like: 4,
    ast.BinaryOp: 5,  # refined per operator in _precedence()
    ast.UnaryOp: 7,
}

_ADDITIVE_OPS = ("+", "-", "||")


def _precedence(node: ast.Expression) -> int:
    if isinstance(node, ast.BinaryOp):
        return 5 if node.op in _ADDITIVE_OPS else 6
    for node_type, level in _PRECEDENCE.items():
        if isinstance(node, node_type):
            return level
    return 10  # primaries never need parentheses


def _quote_identifier(name: str) -> str:
    """Bracket-quote an identifier when it cannot be written bare."""
    if name and not name[0].isdigit():
        bare = name.replace("_", "")
        if "#" in bare or "$" in bare:
            bare = bare.replace("#", "").replace("$", "")
        if bare.isalnum() and name.upper() not in KEYWORDS:
            return name
    return f"[{name}]"


def _quote_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def format_expression(node: ast.Expression) -> str:
    """Render one expression subtree."""
    return _Formatter().expression(node)


def format_sql(statement: ast.Statement) -> str:
    """Render a full statement."""
    return _Formatter().statement(statement)


class _Formatter:
    """Stateless visitor turning AST nodes into canonical SQL text."""

    # ------------------------------------------------------------------
    # Statements

    def statement(self, node: ast.Statement) -> str:
        if isinstance(node, ast.SelectStatement):
            return self.select(node)
        if isinstance(node, ast.Union):
            keyword = "UNION ALL" if node.all else "UNION"
            return f"{self.statement(node.left)} {keyword} {self.statement(node.right)}"
        raise TypeError(f"cannot format {type(node).__name__}")

    def select(self, node: ast.SelectStatement) -> str:
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        if node.top is not None:
            top = f"TOP {self.expression(node.top.count)}"
            if node.top.percent:
                top += " PERCENT"
            parts.append(top)
        parts.append(", ".join(self.select_item(item) for item in node.items))
        if node.from_sources:
            parts.append("FROM")
            parts.append(
                ", ".join(self.source(source) for source in node.from_sources)
            )
        if node.where is not None:
            parts.append("WHERE")
            parts.append(self.expression(node.where))
        if node.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.expression(e) for e in node.group_by))
        if node.having is not None:
            parts.append("HAVING")
            parts.append(self.expression(node.having))
        if node.order_by:
            parts.append("ORDER BY")
            parts.append(", ".join(self.order_item(item) for item in node.order_by))
        return " ".join(parts)

    def select_item(self, item: ast.SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            return f"{text} AS {_quote_identifier(item.alias)}"
        return text

    def order_item(self, item: ast.OrderItem) -> str:
        text = self.expression(item.expr)
        return f"{text} DESC" if item.descending else text

    # ------------------------------------------------------------------
    # FROM sources

    def source(self, node: ast.TableSource) -> str:
        if isinstance(node, ast.TableName):
            name = _quote_identifier(node.name)
            if node.schema:
                name = f"{node.schema}.{name}"
            if node.alias:
                return f"{name} AS {_quote_identifier(node.alias)}"
            return name
        if isinstance(node, ast.FunctionTable):
            text = self.expression(node.call)
            if node.alias:
                return f"{text} AS {_quote_identifier(node.alias)}"
            return text
        if isinstance(node, ast.DerivedTable):
            text = f"({self.select(node.select)})"
            if node.alias:
                return f"{text} AS {_quote_identifier(node.alias)}"
            return text
        if isinstance(node, ast.Join):
            return self.join(node)
        raise TypeError(f"cannot format {type(node).__name__}")

    def join(self, node: ast.Join) -> str:
        left = self.source(node.left)
        right = self.source(node.right)
        if isinstance(node.right, ast.Join):
            right = f"({right})"
        if node.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        if node.kind == "CROSS APPLY":
            return f"{left} CROSS APPLY {right}"
        keyword = {
            "INNER": "INNER JOIN",
            "LEFT": "LEFT OUTER JOIN",
            "RIGHT": "RIGHT OUTER JOIN",
            "FULL": "FULL OUTER JOIN",
        }[node.kind]
        text = f"{left} {keyword} {right}"
        if node.condition is not None:
            text += f" ON {self.expression(node.condition)}"
        return text

    # ------------------------------------------------------------------
    # Expressions

    def expression(self, node: ast.Expression) -> str:
        handler = getattr(self, f"_expr_{type(node).__name__}", None)
        if handler is None:
            raise TypeError(f"cannot format {type(node).__name__}")
        return handler(node)

    def _child(self, child: ast.Expression, parent_precedence: int) -> str:
        """Render a child, parenthesising if it binds looser than parent."""
        text = self.expression(child)
        if _precedence(child) < parent_precedence:
            return f"({text})"
        return text

    def _expr_Literal(self, node: ast.Literal) -> str:
        if node.kind == "string":
            return _quote_string(node.value)
        if node.kind == "null":
            return "NULL"
        return node.value

    def _expr_Placeholder(self, node: ast.Placeholder) -> str:
        return {
            "number": "<num>",
            "string": "<str>",
            "null": "<null>",
            "var": "<var>",
        }.get(node.kind, f"<{node.kind}>")

    def _expr_Variable(self, node: ast.Variable) -> str:
        return f"@{node.name}"

    def _expr_ColumnRef(self, node: ast.ColumnRef) -> str:
        name = _quote_identifier(node.name)
        if node.table:
            return f"{node.table}.{name}"
        return name

    def _expr_Star(self, node: ast.Star) -> str:
        return f"{node.table}.*" if node.table else "*"

    def _expr_FunctionCall(self, node: ast.FunctionCall) -> str:
        name = node.name if node.schema is None else f"{node.schema}.{node.name}"
        inner = ", ".join(self.expression(arg) for arg in node.args)
        if node.distinct:
            inner = f"DISTINCT {inner}"
        return f"{name}({inner})"

    def _expr_UnaryOp(self, node: ast.UnaryOp) -> str:
        return f"{node.op}{self._child(node.operand, _PRECEDENCE[ast.UnaryOp])}"

    def _expr_BinaryOp(self, node: ast.BinaryOp) -> str:
        level = _precedence(node)
        left = self._child(node.left, level)
        # right child at same level needs parens to preserve associativity
        right = self.expression(node.right)
        if _precedence(node.right) <= level and not isinstance(
            node.right, (ast.Literal, ast.ColumnRef, ast.Variable)
        ):
            right = f"({right})"
        return f"{left} {node.op} {right}"

    def _expr_Comparison(self, node: ast.Comparison) -> str:
        level = _PRECEDENCE[ast.Comparison]
        return (
            f"{self._child(node.left, level + 1)} {node.op} "
            f"{self._child(node.right, level + 1)}"
        )

    def _expr_And(self, node: ast.And) -> str:
        # parenthesise a right child at the same level so right-nested
        # trees survive the round trip (the parser is left-associative)
        level = _PRECEDENCE[ast.And]
        return (
            f"{self._child(node.left, level)} AND "
            f"{self._child(node.right, level + 1)}"
        )

    def _expr_Or(self, node: ast.Or) -> str:
        level = _PRECEDENCE[ast.Or]
        return (
            f"{self._child(node.left, level)} OR "
            f"{self._child(node.right, level + 1)}"
        )

    def _expr_Not(self, node: ast.Not) -> str:
        return f"NOT {self._child(node.operand, _PRECEDENCE[ast.Not])}"

    def _expr_InList(self, node: ast.InList) -> str:
        target = self._child(node.expr, _PRECEDENCE[ast.InList] + 1)
        items = ", ".join(self.expression(item) for item in node.items)
        keyword = "NOT IN" if node.negated else "IN"
        return f"{target} {keyword} ({items})"

    def _expr_InSubquery(self, node: ast.InSubquery) -> str:
        target = self._child(node.expr, _PRECEDENCE[ast.InSubquery] + 1)
        keyword = "NOT IN" if node.negated else "IN"
        return f"{target} {keyword} ({self.select(node.subquery)})"

    def _expr_Between(self, node: ast.Between) -> str:
        level = _PRECEDENCE[ast.Between] + 1
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{self._child(node.expr, level)} {keyword} "
            f"{self._child(node.low, level)} AND {self._child(node.high, level)}"
        )

    def _expr_IsNull(self, node: ast.IsNull) -> str:
        target = self._child(node.expr, _PRECEDENCE[ast.IsNull] + 1)
        return f"{target} IS NOT NULL" if node.negated else f"{target} IS NULL"

    def _expr_Like(self, node: ast.Like) -> str:
        level = _PRECEDENCE[ast.Like] + 1
        keyword = "NOT LIKE" if node.negated else "LIKE"
        return f"{self._child(node.expr, level)} {keyword} {self._child(node.pattern, level)}"

    def _expr_Exists(self, node: ast.Exists) -> str:
        prefix = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{prefix} ({self.select(node.subquery)})"

    def _expr_CaseExpression(self, node: ast.CaseExpression) -> str:
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(self.expression(node.operand))
        for when in node.whens:
            parts.append(
                f"WHEN {self.expression(when.condition)} "
                f"THEN {self.expression(when.result)}"
            )
        if node.else_result is not None:
            parts.append(f"ELSE {self.expression(node.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def _expr_Cast(self, node: ast.Cast) -> str:
        return f"CAST({self.expression(node.expr)} AS {node.type_name})"

    def _expr_ScalarSubquery(self, node: ast.ScalarSubquery) -> str:
        return f"({self.select(node.select)})"
