"""SQL front end: lexer, parser, AST and canonical formatter.

Typical use::

    from repro.sqlparser import parse, format_sql

    tree = parse("SELECT name FROM Employee WHERE empId = 8")
    print(format_sql(tree))
"""

from .errors import LexerError, ParseError, SqlError, UnsupportedStatementError
from .lexer import StatementFingerprint, fingerprint_statement, tokenize
from .parser import parse, parse_select, parse_tokens
from .formatter import format_expression, format_sql
from . import ast_nodes as ast

__all__ = [
    "LexerError",
    "ParseError",
    "SqlError",
    "UnsupportedStatementError",
    "StatementFingerprint",
    "fingerprint_statement",
    "tokenize",
    "parse",
    "parse_select",
    "parse_tokens",
    "format_expression",
    "format_sql",
    "ast",
]
