"""Recursive-descent parser for the SkyServer SELECT dialect.

The grammar (simplified)::

    statement   := select_stmt (UNION [ALL] select_stmt)* [';']
    select_stmt := SELECT [DISTINCT] [TOP number [PERCENT]] select_list
                   [FROM source (',' source)*]
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list]
    source      := primary_source (join_clause)*
    join_clause := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]|CROSS]
                   JOIN primary_source [ON expr]
                 | CROSS APPLY primary_source
    expr        := or_expr  (standard precedence: OR < AND < NOT <
                   predicate < additive < multiplicative < unary < primary)

Non-SELECT statements (INSERT/UPDATE/CREATE/…) raise
:class:`UnsupportedStatementError`; anything malformed raises
:class:`ParseError`.  Both are subclasses of :class:`SqlError`, so the
pipeline's "parse statements" stage (Section 5.3) needs a single handler.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    And,
    Between,
    BinaryOp,
    CaseExpression,
    Cast,
    ColumnRef,
    Comparison,
    DerivedTable,
    Exists,
    Expression,
    FunctionCall,
    FunctionTable,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableName,
    TableSource,
    TopClause,
    UnaryOp,
    Union,
    Variable,
    WhenClause,
)
from .errors import ParseError, UnsupportedStatementError
from .lexer import tokenize
from .tokens import Token, TokenKind

_NON_SELECT_OPENERS = frozenset(
    {
        "INSERT",
        "UPDATE",
        "DELETE",
        "CREATE",
        "DROP",
        "ALTER",
        "TRUNCATE",
        "EXEC",
        "EXECUTE",
        "MERGE",
        "GRANT",
        "REVOKE",
        "DECLARE",
        "SET",
        "USE",
        "WITH",
    }
)

_JOIN_OPENERS = frozenset({"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"})

#: Keywords that terminate a FROM source without an explicit alias.
_CLAUSE_BOUNDARY = frozenset(
    {"WHERE", "GROUP", "HAVING", "ORDER", "ON", "UNION", "INTO"}
) | _JOIN_OPENERS


class Parser:
    """Single-use parser over one statement's token stream."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token stream helpers

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(
                f"expected {name}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind is kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, description: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {description}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Entry point

    def parse_statement(self) -> Statement:
        """Parse exactly one statement and require EOF afterwards."""
        first = self._peek()
        if first.kind is TokenKind.EOF:
            raise ParseError("empty statement", first.line, first.column)
        if first.kind is TokenKind.KEYWORD and first.value in _NON_SELECT_OPENERS:
            raise UnsupportedStatementError(
                f"{first.value} statements are outside the SELECT-only dialect",
                first.line,
                first.column,
            )
        statement = self._parse_union()
        self._accept(TokenKind.SEMICOLON)
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected trailing input {trailing.value!r}",
                trailing.line,
                trailing.column,
            )
        return statement

    def _parse_union(self) -> Statement:
        statement: Statement = self._parse_select()
        while self._accept_keyword("UNION"):
            all_flag = bool(self._accept_keyword("ALL"))
            right = self._parse_select()
            statement = Union(left=statement, right=right, all=all_flag)
        return statement

    # ------------------------------------------------------------------
    # SELECT statement

    def _parse_select(self) -> SelectStatement:
        if self._accept(TokenKind.LPAREN):
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return select
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        if self._accept_keyword("ALL"):
            distinct = False
        top = self._parse_top()
        items = self._parse_select_list()
        if self._accept_keyword("INTO"):
            # SELECT ... INTO #temp: consume the target name; the log
            # cleaner still treats the statement as a read of its sources.
            self._parse_qualified_name()
        from_sources: Tuple[TableSource, ...] = ()
        if self._accept_keyword("FROM"):
            from_sources = self._parse_from_list()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by: Tuple[Expression, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_expression_list()
        having = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expression()
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_list()
        return SelectStatement(
            items=items,
            from_sources=from_sources,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            top=top,
        )

    def _parse_top(self) -> Optional[TopClause]:
        if not self._accept_keyword("TOP"):
            return None
        if self._accept(TokenKind.LPAREN):
            count = self._parse_expression()
            self._expect(TokenKind.RPAREN, "')'")
        else:
            token = self._peek()
            if token.kind is TokenKind.NUMBER:
                self._advance()
                count: Expression = Literal(token.value, "number")
            elif token.kind is TokenKind.VARIABLE:
                self._advance()
                count = Variable(token.value)
            else:
                raise self._error("expected row count after TOP")
        percent = bool(self._accept_keyword("PERCENT"))
        return TopClause(count=count, percent=percent)

    def _parse_select_list(self) -> Tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        # `alias = expr` T-SQL style aliasing.
        if (
            token.kind is TokenKind.IDENTIFIER
            and self._peek(1).kind is TokenKind.OPERATOR
            and self._peek(1).value == "="
        ):
            self._advance()
            self._advance()
            expr = self._parse_expression()
            return SelectItem(expr=expr, alias=token.value)
        expr = self._parse_expression()
        alias = self._parse_optional_alias()
        return SelectItem(expr=expr, alias=alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.kind in (TokenKind.IDENTIFIER, TokenKind.STRING):
                self._advance()
                return token.value
            raise self._error("expected alias name after AS")
        token = self._peek()
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return token.value
        return None

    def _parse_order_list(self) -> Tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        return OrderItem(expr=expr, descending=descending)

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        items = [self._parse_expression()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_expression())
        return tuple(items)

    # ------------------------------------------------------------------
    # FROM clause

    def _parse_from_list(self) -> Tuple[TableSource, ...]:
        sources = [self._parse_joined_source()]
        while self._accept(TokenKind.COMMA):
            sources.append(self._parse_joined_source())
        return tuple(sources)

    def _parse_joined_source(self) -> TableSource:
        source = self._parse_primary_source()
        while True:
            join = self._parse_join_tail(source)
            if join is None:
                return source
            source = join

    def _parse_join_tail(self, left: TableSource) -> Optional[Join]:
        token = self._peek()
        if token.kind is not TokenKind.KEYWORD or token.value not in _JOIN_OPENERS:
            return None
        kind = "INNER"
        if self._accept_keyword("INNER"):
            kind = "INNER"
        elif self._accept_keyword("LEFT"):
            kind = "LEFT"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("RIGHT"):
            kind = "RIGHT"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("FULL"):
            kind = "FULL"
            self._accept_keyword("OUTER")
        elif self._accept_keyword("CROSS"):
            if self._accept_keyword("APPLY"):
                right = self._parse_primary_source()
                return Join(left=left, right=right, kind="CROSS APPLY")
            kind = "CROSS"
        self._expect_keyword("JOIN")
        right = self._parse_primary_source()
        condition = None
        if kind != "CROSS":
            self._expect_keyword("ON")
            condition = self._parse_expression()
        return Join(left=left, right=right, kind=kind, condition=condition)

    def _parse_primary_source(self) -> TableSource:
        if self._accept(TokenKind.LPAREN):
            if self._peek().is_keyword("SELECT"):
                select = self._parse_select()
                self._expect(TokenKind.RPAREN, "')'")
                alias = self._parse_source_alias()
                return DerivedTable(select=select, alias=alias)
            source = self._parse_joined_source()
            self._expect(TokenKind.RPAREN, "')'")
            return source
        parts = self._parse_qualified_name()
        if self._peek().kind is TokenKind.LPAREN:
            call = self._finish_function_call(parts)
            alias = self._parse_source_alias()
            return FunctionTable(call=call, alias=alias)
        schema = ".".join(parts[:-1]) if len(parts) > 1 else None
        alias = self._parse_source_alias()
        return TableName(name=parts[-1], schema=schema, alias=alias)

    def _parse_source_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            token = self._expect(TokenKind.IDENTIFIER, "alias name")
            return token.value
        token = self._peek()
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return token.value
        return None

    def _parse_qualified_name(self) -> Tuple[str, ...]:
        parts = [self._expect(TokenKind.IDENTIFIER, "name").value]
        while self._accept(TokenKind.DOT):
            parts.append(self._expect(TokenKind.IDENTIFIER, "name").value)
        return tuple(parts)

    def _finish_function_call(self, parts: Tuple[str, ...]) -> FunctionCall:
        """Parse the argument list of a call whose name is already read."""
        self._expect(TokenKind.LPAREN, "'('")
        schema = ".".join(parts[:-1]) if len(parts) > 1 else None
        name = parts[-1]
        distinct = False
        args: List[Expression] = []
        if not self._accept(TokenKind.RPAREN):
            if self._accept_keyword("DISTINCT"):
                distinct = True
            if self._peek().kind is TokenKind.OPERATOR and self._peek().value == "*":
                self._advance()
                args.append(Star())
            else:
                args.append(self._parse_expression())
                while self._accept(TokenKind.COMMA):
                    args.append(self._parse_expression())
            self._expect(TokenKind.RPAREN, "')'")
        return FunctionCall(
            name=name, args=tuple(args), schema=schema, distinct=distinct
        )

    # ------------------------------------------------------------------
    # Expressions, precedence-climbing

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = Or(left=left, right=right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = And(left=left, right=right)
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return Not(operand=self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()

        negated = False
        if token.is_keyword("NOT"):
            follower = self._peek(1)
            if follower.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._peek()

        if token.is_keyword("IS"):
            self._advance()
            is_negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return IsNull(expr=left, negated=is_negated)

        if token.is_keyword("IN"):
            self._advance()
            return self._finish_in(left, negated)

        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(expr=left, low=low, high=high, negated=negated)

        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_additive()
            return Like(expr=left, pattern=pattern, negated=negated)

        if token.kind is TokenKind.OPERATOR and token.value in (
            "=",
            "<>",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            right = self._parse_additive()
            return Comparison(op=op, left=left, right=right)

        return left

    def _finish_in(self, left: Expression, negated: bool) -> Expression:
        self._expect(TokenKind.LPAREN, "'(' after IN")
        if self._peek().is_keyword("SELECT"):
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return InSubquery(expr=left, subquery=select, negated=negated)
        items = [self._parse_expression()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_expression())
        self._expect(TokenKind.RPAREN, "')'")
        return InList(expr=left, items=tuple(items), negated=negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in ("+", "-", "||"):
                self._advance()
                right = self._parse_multiplicative()
                left = BinaryOp(op=token.value, left=left, right=right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                right = self._parse_unary()
                left = BinaryOp(op=token.value, left=left, right=right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.value in ("-", "+"):
            self._advance()
            operand = self._parse_unary()
            # Fold unary minus into numeric literals so `-5` skeletonises
            # exactly like `5` (both are a single <num> placeholder).
            if token.value == "-" and isinstance(operand, Literal):
                if operand.kind == "number":
                    return Literal("-" + operand.value, "number")
            if token.value == "+":
                return operand
            return UnaryOp(op=token.value, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()

        if token.kind is TokenKind.NUMBER:
            self._advance()
            return Literal(token.value, "number")
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value, "string")
        if token.is_keyword("NULL"):
            self._advance()
            return Literal("NULL", "null")
        if token.kind is TokenKind.VARIABLE:
            self._advance()
            return Variable(token.value)

        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenKind.LPAREN, "'(' after EXISTS")
            select = self._parse_select()
            self._expect(TokenKind.RPAREN, "')'")
            return Exists(subquery=select)

        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._peek().is_keyword("SELECT"):
                select = self._parse_select()
                self._expect(TokenKind.RPAREN, "')'")
                return ScalarSubquery(select=select)
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN, "')'")
            return expr

        if token.kind is TokenKind.OPERATOR and token.value == "*":
            self._advance()
            return Star()

        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_name_expression()

        # A handful of keywords double as bare function names (LEFT, RIGHT)
        # in real logs; we do not support that usage and report it clearly.
        raise self._error(f"unexpected token {token.value or 'end of input'!r}")

    def _parse_name_expression(self) -> Expression:
        parts = [self._expect(TokenKind.IDENTIFIER, "name").value]
        while self._peek().kind is TokenKind.DOT:
            follower = self._peek(1)
            if follower.kind is TokenKind.OPERATOR and follower.value == "*":
                # qualified star: table.* (or schema.table.*)
                self._advance()
                self._advance()
                return Star(table=parts[-1])
            self._advance()
            parts.append(self._expect(TokenKind.IDENTIFIER, "name").value)
        if self._peek().kind is TokenKind.LPAREN:
            return self._finish_function_call(tuple(parts))
        if len(parts) == 1:
            return ColumnRef(name=parts[0])
        if len(parts) == 2:
            return ColumnRef(name=parts[1], table=parts[0])
        # schema.table.column — keep the last two components, the cleaner
        # only reasons about table-qualified columns.
        return ColumnRef(name=parts[-1], table=parts[-2])

    def _parse_case(self) -> Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._peek().is_keyword("WHEN"):
            operand = self._parse_expression()
        whens: List[WhenClause] = []
        while self._accept_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append(WhenClause(condition=condition, result=result))
        if not whens:
            raise self._error("CASE requires at least one WHEN arm")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        return CaseExpression(
            whens=tuple(whens), operand=operand, else_result=else_result
        )

    def _parse_cast(self) -> Expression:
        self._expect_keyword("CAST")
        self._expect(TokenKind.LPAREN, "'(' after CAST")
        expr = self._parse_expression()
        self._expect_keyword("AS")
        type_parts = [self._expect(TokenKind.IDENTIFIER, "type name").value]
        if self._accept(TokenKind.LPAREN):
            size = self._expect(TokenKind.NUMBER, "type size").value
            type_parts.append(f"({size})")
            self._expect(TokenKind.RPAREN, "')'")
        self._expect(TokenKind.RPAREN, "')'")
        return Cast(expr=expr, type_name="".join(type_parts))


def parse(sql: str) -> Statement:
    """Parse one SQL statement string into an AST.

    :raises LexerError: on invalid characters / unterminated literals.
    :raises UnsupportedStatementError: for non-SELECT statements.
    :raises ParseError: on malformed SELECT syntax.
    """
    return Parser(tokenize(sql)).parse_statement()


def parse_select(sql: str) -> SelectStatement:
    """Parse ``sql`` and require a plain (non-UNION) SELECT statement."""
    statement = parse(sql)
    if not isinstance(statement, SelectStatement):
        raise UnsupportedStatementError(
            "expected a plain SELECT statement, found a UNION"
        )
    return statement
