"""Recursive-descent parser for the SkyServer SELECT dialect.

The grammar (simplified)::

    statement   := select_stmt (UNION [ALL] select_stmt)* [';']
    select_stmt := SELECT [DISTINCT] [TOP number [PERCENT]] select_list
                   [FROM source (',' source)*]
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list]
    source      := primary_source (join_clause)*
    join_clause := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]|CROSS]
                   JOIN primary_source [ON expr]
                 | CROSS APPLY primary_source
    expr        := or_expr  (standard precedence: OR < AND < NOT <
                   predicate < additive < multiplicative < unary < primary)

Non-SELECT statements (INSERT/UPDATE/CREATE/…) raise
:class:`UnsupportedStatementError`; anything malformed raises
:class:`ParseError`.  Both are subclasses of :class:`SqlError`, so the
pipeline's "parse statements" stage (Section 5.3) needs a single handler.

Parse engine v4 made this module the cold path's second pillar (the
scanner being the first), so its token plumbing is tuned accordingly:
the parser tracks the *current* token in ``self._cur`` — every
would-be ``_peek()`` call on the hot paths is a single attribute load —
and single-keyword tests go through :meth:`_accept_kw`, which skips the
varargs tuple the general :meth:`_accept_keyword` builds per call.  The
construction path is pre-tokenized first: :func:`parse_tokens` consumes
an existing EOF-terminated token list (the scanner's own output, so a
cold statement is lexed exactly once), and :func:`parse` remains as the
thin text shim that tokenizes and delegates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    And,
    Between,
    BinaryOp,
    CaseExpression,
    Cast,
    ColumnRef,
    Comparison,
    DerivedTable,
    Exists,
    Expression,
    FunctionCall,
    FunctionTable,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    Not,
    Or,
    OrderItem,
    ScalarSubquery,
    SelectItem,
    SelectStatement,
    Star,
    Statement,
    TableName,
    TableSource,
    TopClause,
    UnaryOp,
    Union,
    Variable,
    WhenClause,
)
from .errors import ParseError, UnsupportedStatementError
from .scanner import tokenize
from .tokens import Token, TokenKind

_NON_SELECT_OPENERS = frozenset(
    {
        "INSERT",
        "UPDATE",
        "DELETE",
        "CREATE",
        "DROP",
        "ALTER",
        "TRUNCATE",
        "EXEC",
        "EXECUTE",
        "MERGE",
        "GRANT",
        "REVOKE",
        "DECLARE",
        "SET",
        "USE",
        "WITH",
    }
)

_JOIN_OPENERS = frozenset({"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"})

#: Keywords that terminate a FROM source without an explicit alias.
_CLAUSE_BOUNDARY = frozenset(
    {"WHERE", "GROUP", "HAVING", "ORDER", "ON", "UNION", "INTO"}
) | _JOIN_OPENERS

#: Comparison operators accepted by ``_parse_predicate``.
_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})

# Token kinds hoisted to module constants: one global load instead of a
# global-plus-attribute pair on every hot-path membership test.
_KEYWORD = TokenKind.KEYWORD
_IDENTIFIER = TokenKind.IDENTIFIER
_NUMBER = TokenKind.NUMBER
_STRING = TokenKind.STRING
_VARIABLE = TokenKind.VARIABLE
_OPERATOR = TokenKind.OPERATOR
_COMMA = TokenKind.COMMA
_DOT = TokenKind.DOT
_LPAREN = TokenKind.LPAREN
_RPAREN = TokenKind.RPAREN
_SEMICOLON = TokenKind.SEMICOLON
_EOF = TokenKind.EOF


class Parser:
    """Single-use parser over one statement's token stream.

    ``tokens`` must be EOF-terminated, exactly as produced by the
    scanner — :class:`Parser` never re-lexes, so feeding it
    ``Scan.tokens`` directly makes cold cache misses single-lex.
    """

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._cur = tokens[0]

    # ------------------------------------------------------------------
    # Token stream helpers

    def _peek(self, offset: int = 0) -> Token:
        index = self._pos + offset
        tokens = self._tokens
        return tokens[index] if index < len(tokens) else tokens[-1]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not _EOF:
            pos = self._pos + 1
            self._pos = pos
            self._cur = self._tokens[pos]
        return token

    def _accept_kw(self, name: str) -> Optional[Token]:
        """Accept one specific keyword — the varargs-free hot path."""
        token = self._cur
        if token.kind is _KEYWORD and token.value == name:
            self._advance()
            return token
        return None

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        token = self._cur
        if token.kind is _KEYWORD and token.value in names:
            self._advance()
            return token
        return None

    def _expect_keyword(self, name: str) -> Token:
        token = self._cur
        if token.kind is not _KEYWORD or token.value != name:
            raise ParseError(
                f"expected {name}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        token = self._cur
        if token.kind is kind and (value is None or token.value == value):
            self._advance()
            return token
        return None

    def _expect(self, kind: TokenKind, description: str) -> Token:
        token = self._cur
        if token.kind is not kind:
            raise ParseError(
                f"expected {description}, found {token.value or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._cur
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Entry point

    def parse_statement(self) -> Statement:
        """Parse exactly one statement and require EOF afterwards."""
        first = self._cur
        if first.kind is _EOF:
            raise ParseError("empty statement", first.line, first.column)
        if first.kind is _KEYWORD and first.value in _NON_SELECT_OPENERS:
            raise UnsupportedStatementError(
                f"{first.value} statements are outside the SELECT-only dialect",
                first.line,
                first.column,
            )
        statement = self._parse_union()
        self._accept(_SEMICOLON)
        trailing = self._cur
        if trailing.kind is not _EOF:
            raise ParseError(
                f"unexpected trailing input {trailing.value!r}",
                trailing.line,
                trailing.column,
            )
        return statement

    def _parse_union(self) -> Statement:
        statement: Statement = self._parse_select()
        while self._accept_kw("UNION"):
            all_flag = self._accept_kw("ALL") is not None
            right = self._parse_select()
            statement = Union(statement, right, all_flag)
        return statement

    # ------------------------------------------------------------------
    # SELECT statement

    def _parse_select(self) -> SelectStatement:
        if self._cur.kind is _LPAREN:
            self._advance()
            select = self._parse_select()
            self._expect(_RPAREN, "')'")
            return select
        self._expect_keyword("SELECT")
        distinct = self._accept_kw("DISTINCT") is not None
        if self._accept_kw("ALL"):
            distinct = False
        top = self._parse_top()
        items = self._parse_select_list()
        if self._accept_kw("INTO"):
            # SELECT ... INTO #temp: consume the target name; the log
            # cleaner still treats the statement as a read of its sources.
            self._parse_qualified_name()
        from_sources: Tuple[TableSource, ...] = ()
        if self._accept_kw("FROM"):
            from_sources = self._parse_from_list()
        where = None
        if self._accept_kw("WHERE"):
            where = self._parse_expression()
        group_by: Tuple[Expression, ...] = ()
        if self._accept_kw("GROUP"):
            self._expect_keyword("BY")
            group_by = self._parse_expression_list()
        having = None
        if self._accept_kw("HAVING"):
            having = self._parse_expression()
        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_kw("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_list()
        return SelectStatement(
            items,
            from_sources,
            where,
            group_by,
            having,
            order_by,
            distinct,
            top,
        )

    def _parse_top(self) -> Optional[TopClause]:
        if not self._accept_kw("TOP"):
            return None
        if self._accept(_LPAREN):
            count = self._parse_expression()
            self._expect(_RPAREN, "')'")
        else:
            token = self._cur
            if token.kind is _NUMBER:
                self._advance()
                count: Expression = Literal(token.value, "number")
            elif token.kind is _VARIABLE:
                self._advance()
                count = Variable(token.value)
            else:
                raise self._error("expected row count after TOP")
        percent = self._accept_kw("PERCENT") is not None
        return TopClause(count, percent)

    def _parse_select_list(self) -> Tuple[SelectItem, ...]:
        items = [self._parse_select_item()]
        while self._accept(_COMMA):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self._cur
        # `alias = expr` T-SQL style aliasing.
        if token.kind is _IDENTIFIER:
            follower = self._peek(1)
            if follower.kind is _OPERATOR and follower.value == "=":
                self._advance()
                self._advance()
                expr = self._parse_expression()
                return SelectItem(expr, token.value)
        expr = self._parse_expression()
        alias = self._parse_optional_alias()
        return SelectItem(expr, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_kw("AS"):
            token = self._cur
            if token.kind is _IDENTIFIER or token.kind is _STRING:
                self._advance()
                return token.value
            raise self._error("expected alias name after AS")
        token = self._cur
        if token.kind is _IDENTIFIER:
            self._advance()
            return token.value
        return None

    def _parse_order_list(self) -> Tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self._accept(_COMMA):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._accept_kw("DESC"):
            descending = True
        else:
            self._accept_kw("ASC")
        return OrderItem(expr, descending)

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        items = [self._parse_expression()]
        while self._accept(_COMMA):
            items.append(self._parse_expression())
        return tuple(items)

    # ------------------------------------------------------------------
    # FROM clause

    def _parse_from_list(self) -> Tuple[TableSource, ...]:
        sources = [self._parse_joined_source()]
        while self._accept(_COMMA):
            sources.append(self._parse_joined_source())
        return tuple(sources)

    def _parse_joined_source(self) -> TableSource:
        source = self._parse_primary_source()
        while True:
            join = self._parse_join_tail(source)
            if join is None:
                return source
            source = join

    def _parse_join_tail(self, left: TableSource) -> Optional[Join]:
        token = self._cur
        if token.kind is not _KEYWORD or token.value not in _JOIN_OPENERS:
            return None
        kind = "INNER"
        if self._accept_kw("INNER"):
            kind = "INNER"
        elif self._accept_kw("LEFT"):
            kind = "LEFT"
            self._accept_kw("OUTER")
        elif self._accept_kw("RIGHT"):
            kind = "RIGHT"
            self._accept_kw("OUTER")
        elif self._accept_kw("FULL"):
            kind = "FULL"
            self._accept_kw("OUTER")
        elif self._accept_kw("CROSS"):
            if self._accept_kw("APPLY"):
                right = self._parse_primary_source()
                return Join(left, right, "CROSS APPLY")
            kind = "CROSS"
        self._expect_keyword("JOIN")
        right = self._parse_primary_source()
        condition = None
        if kind != "CROSS":
            self._expect_keyword("ON")
            condition = self._parse_expression()
        return Join(left, right, kind, condition)

    def _parse_primary_source(self) -> TableSource:
        if self._accept(_LPAREN):
            if self._cur.is_keyword("SELECT"):
                select = self._parse_select()
                self._expect(_RPAREN, "')'")
                alias = self._parse_source_alias()
                return DerivedTable(select, alias)
            source = self._parse_joined_source()
            self._expect(_RPAREN, "')'")
            return source
        parts = self._parse_qualified_name()
        if self._cur.kind is _LPAREN:
            call = self._finish_function_call(parts)
            alias = self._parse_source_alias()
            return FunctionTable(call, alias)
        schema = ".".join(parts[:-1]) if len(parts) > 1 else None
        alias = self._parse_source_alias()
        return TableName(parts[-1], schema, alias)

    def _parse_source_alias(self) -> Optional[str]:
        if self._accept_kw("AS"):
            token = self._expect(_IDENTIFIER, "alias name")
            return token.value
        token = self._cur
        if token.kind is _IDENTIFIER:
            self._advance()
            return token.value
        return None

    def _parse_qualified_name(self) -> Tuple[str, ...]:
        parts = [self._expect(_IDENTIFIER, "name").value]
        while self._accept(_DOT):
            parts.append(self._expect(_IDENTIFIER, "name").value)
        return tuple(parts)

    def _finish_function_call(self, parts: Tuple[str, ...]) -> FunctionCall:
        """Parse the argument list of a call whose name is already read."""
        self._expect(_LPAREN, "'('")
        schema = ".".join(parts[:-1]) if len(parts) > 1 else None
        name = parts[-1]
        distinct = False
        args: List[Expression] = []
        if not self._accept(_RPAREN):
            if self._accept_kw("DISTINCT"):
                distinct = True
            token = self._cur
            if token.kind is _OPERATOR and token.value == "*":
                self._advance()
                args.append(Star())
            else:
                args.append(self._parse_expression())
                while self._accept(_COMMA):
                    args.append(self._parse_expression())
            self._expect(_RPAREN, "')'")
        return FunctionCall(name, tuple(args), schema, distinct)

    # ------------------------------------------------------------------
    # Expressions, precedence-climbing

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_kw("OR"):
            right = self._parse_and()
            left = Or(left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_kw("AND"):
            right = self._parse_not()
            left = And(left, right)
        return left

    def _parse_not(self) -> Expression:
        if self._accept_kw("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._cur

        if token.kind is not _KEYWORD:
            if token.kind is _OPERATOR and token.value in _COMPARISON_OPS:
                self._advance()
                op = "<>" if token.value == "!=" else token.value
                right = self._parse_additive()
                return Comparison(op, left, right)
            return left

        negated = False
        if token.value == "NOT":
            follower = self._peek(1)
            if follower.is_keyword("IN", "BETWEEN", "LIKE"):
                self._advance()
                negated = True
                token = self._cur

        value = token.value
        if value == "IS":
            self._advance()
            is_negated = self._accept_kw("NOT") is not None
            self._expect_keyword("NULL")
            return IsNull(left, is_negated)

        if value == "IN":
            self._advance()
            return self._finish_in(left, negated)

        if value == "BETWEEN":
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)

        if value == "LIKE":
            self._advance()
            pattern = self._parse_additive()
            return Like(left, pattern, negated)

        return left

    def _finish_in(self, left: Expression, negated: bool) -> Expression:
        self._expect(_LPAREN, "'(' after IN")
        if self._cur.is_keyword("SELECT"):
            select = self._parse_select()
            self._expect(_RPAREN, "')'")
            return InSubquery(left, select, negated)
        items = [self._parse_expression()]
        while self._accept(_COMMA):
            items.append(self._parse_expression())
        self._expect(_RPAREN, "')'")
        return InList(left, tuple(items), negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._cur
            if token.kind is _OPERATOR and (
                token.value == "+" or token.value == "-" or token.value == "||"
            ):
                self._advance()
                right = self._parse_multiplicative()
                left = BinaryOp(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._cur
            if token.kind is _OPERATOR and (
                token.value == "*" or token.value == "/" or token.value == "%"
            ):
                self._advance()
                right = self._parse_unary()
                left = BinaryOp(token.value, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._cur
        if token.kind is _OPERATOR and (
            token.value == "-" or token.value == "+"
        ):
            self._advance()
            operand = self._parse_unary()
            # Fold unary minus into numeric literals so `-5` skeletonises
            # exactly like `5` (both are a single <num> placeholder).
            if token.value == "-" and isinstance(operand, Literal):
                if operand.kind == "number":
                    return Literal("-" + operand.value, "number")
            if token.value == "+":
                return operand
            return UnaryOp(token.value, operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._cur
        kind = token.kind

        if kind is _NUMBER:
            self._advance()
            return Literal(token.value, "number")
        if kind is _IDENTIFIER:
            return self._parse_name_expression()
        if kind is _STRING:
            self._advance()
            return Literal(token.value, "string")
        if kind is _VARIABLE:
            self._advance()
            return Variable(token.value)

        if kind is _KEYWORD:
            value = token.value
            if value == "NULL":
                self._advance()
                return Literal("NULL", "null")
            if value == "CASE":
                return self._parse_case()
            if value == "CAST":
                return self._parse_cast()
            if value == "EXISTS":
                self._advance()
                self._expect(_LPAREN, "'(' after EXISTS")
                select = self._parse_select()
                self._expect(_RPAREN, "')'")
                return Exists(select)

        elif kind is _LPAREN:
            self._advance()
            if self._cur.is_keyword("SELECT"):
                select = self._parse_select()
                self._expect(_RPAREN, "')'")
                return ScalarSubquery(select)
            expr = self._parse_expression()
            self._expect(_RPAREN, "')'")
            return expr

        elif kind is _OPERATOR and token.value == "*":
            self._advance()
            return Star()

        # A handful of keywords double as bare function names (LEFT, RIGHT)
        # in real logs; we do not support that usage and report it clearly.
        raise self._error(f"unexpected token {token.value or 'end of input'!r}")

    def _parse_name_expression(self) -> Expression:
        parts = [self._expect(_IDENTIFIER, "name").value]
        while self._cur.kind is _DOT:
            follower = self._peek(1)
            if follower.kind is _OPERATOR and follower.value == "*":
                # qualified star: table.* (or schema.table.*)
                self._advance()
                self._advance()
                return Star(parts[-1])
            self._advance()
            parts.append(self._expect(_IDENTIFIER, "name").value)
        if self._cur.kind is _LPAREN:
            return self._finish_function_call(tuple(parts))
        if len(parts) == 1:
            return ColumnRef(parts[0])
        if len(parts) == 2:
            return ColumnRef(parts[1], parts[0])
        # schema.table.column — keep the last two components, the cleaner
        # only reasons about table-qualified columns.
        return ColumnRef(parts[-1], parts[-2])

    def _parse_case(self) -> Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._cur.is_keyword("WHEN"):
            operand = self._parse_expression()
        whens: List[WhenClause] = []
        while self._accept_kw("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append(WhenClause(condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN arm")
        else_result = None
        if self._accept_kw("ELSE"):
            else_result = self._parse_expression()
        self._expect_keyword("END")
        return CaseExpression(tuple(whens), operand, else_result)

    def _parse_cast(self) -> Expression:
        self._expect_keyword("CAST")
        self._expect(_LPAREN, "'(' after CAST")
        expr = self._parse_expression()
        self._expect_keyword("AS")
        type_parts = [self._expect(_IDENTIFIER, "type name").value]
        if self._accept(_LPAREN):
            size = self._expect(_NUMBER, "type size").value
            type_parts.append(f"({size})")
            self._expect(_RPAREN, "')'")
        self._expect(_RPAREN, "')'")
        return Cast(expr, "".join(type_parts))


def parse_tokens(tokens: List[Token]) -> Statement:
    """Parse a pre-lexed, EOF-terminated token stream into an AST.

    The single-lex entry point: feed it ``Scan.tokens`` and the
    statement is never scanned a second time.

    :raises UnsupportedStatementError: for non-SELECT statements.
    :raises ParseError: on malformed SELECT syntax.
    """
    return Parser(tokens).parse_statement()


def parse(sql: str) -> Statement:
    """Parse one SQL statement string into an AST.

    A thin shim over :func:`parse_tokens` for callers that start from
    text: it pays one scanner pass, exactly like the cache's cold path.

    :raises LexerError: on invalid characters / unterminated literals.
    :raises UnsupportedStatementError: for non-SELECT statements.
    :raises ParseError: on malformed SELECT syntax.
    """
    return parse_tokens(tokenize(sql))


def parse_select(sql: str) -> SelectStatement:
    """Parse ``sql`` and require a plain (non-UNION) SELECT statement."""
    statement = parse(sql)
    if not isinstance(statement, SelectStatement):
        raise UnsupportedStatementError(
            "expected a plain SELECT statement, found a UNION"
        )
    return statement
