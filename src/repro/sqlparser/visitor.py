"""Generic AST rebuilding utilities.

:func:`transform` applies a bottom-up rewrite function over a tree,
reconstructing the frozen dataclass nodes only along changed paths.  Both
the skeletonizer (constants → placeholders) and the antipattern rewrites
are expressed with it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, TypeVar

from .ast_nodes import Node

NodeT = TypeVar("NodeT", bound=Node)

#: A rewrite callback: receives each (already child-rewritten) node and
#: returns a replacement, or None to keep the node unchanged.
Rewriter = Callable[[Node], Optional[Node]]


def transform(node: NodeT, rewrite: Rewriter) -> NodeT:
    """Rebuild ``node`` bottom-up, applying ``rewrite`` at every node.

    Children are transformed first; then ``rewrite`` is offered the node
    (with its new children).  Returning ``None`` keeps the node.  Untouched
    subtrees are shared, not copied.
    """
    changes = {}
    for node_field in dataclasses.fields(node):
        value = getattr(node, node_field.name)
        if isinstance(value, Node):
            new_value = transform(value, rewrite)
            if new_value is not value:
                changes[node_field.name] = new_value
        elif isinstance(value, tuple) and any(
            isinstance(item, Node) for item in value
        ):
            new_items = tuple(
                transform(item, rewrite) if isinstance(item, Node) else item
                for item in value
            )
            if any(a is not b for a, b in zip(new_items, value)):
                changes[node_field.name] = new_items

    rebuilt = dataclasses.replace(node, **changes) if changes else node
    replacement = rewrite(rebuilt)
    return rebuilt if replacement is None else replacement  # type: ignore[return-value]
