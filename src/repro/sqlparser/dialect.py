"""Dialect knowledge shared by the analyser and the execution engine.

Keeping this in the parser package (rather than the engine) lets the purely
static analyses — skeleton features, antipattern detection — reason about
aggregates and table-valued functions without importing the engine.
"""

from __future__ import annotations

from . import ast_nodes as ast

#: Aggregate function names (lower-cased).
AGGREGATE_FUNCTIONS = frozenset(
    {"count", "sum", "avg", "min", "max", "stdev", "var"}
)

#: SkyServer table-valued functions the workload generator emits and the
#: engine implements.  Maps lower-cased name -> tuple of output columns.
TABLE_VALUED_FUNCTIONS = {
    "fgetnearbyobjeq": ("objid", "run", "camcol", "field", "rerun", "type",
                        "cx", "cy", "cz", "htmid", "distance"),
    "fgetnearestobjeq": ("objid", "run", "camcol", "field", "rerun", "type",
                         "cx", "cy", "cz", "htmid", "distance"),
    "fgetobjfromrect": ("objid", "run", "camcol", "field", "rerun", "type",
                        "cx", "cy", "cz", "htmid"),
}

#: Scalar builtins the engine evaluates.
SCALAR_FUNCTIONS = frozenset(
    {"abs", "round", "floor", "ceiling", "power", "sqrt", "log", "log10",
     "upper", "lower", "len", "ltrim", "rtrim", "str", "isnull", "coalesce",
     "sign", "exp"}
)


def is_aggregate_call(node: ast.Expression) -> bool:
    """True if ``node`` is a call to an aggregate function."""
    return (
        isinstance(node, ast.FunctionCall)
        and node.name.lower() in AGGREGATE_FUNCTIONS
    )


def contains_aggregate(node: ast.Node) -> bool:
    """True if any aggregate call appears in ``node``'s subtree, without
    descending into subqueries (their aggregates are theirs).

    Traverses every child node (including non-expression carriers like
    CASE's WHEN arms) but stops at subquery boundaries.
    """
    if is_aggregate_call(node):
        return True
    if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
        return False
    return any(contains_aggregate(child) for child in node.children())
