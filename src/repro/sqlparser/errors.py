"""Exception hierarchy for the SQL front end.

Every failure while tokenizing or parsing a statement raises a subclass of
:class:`SqlError`.  The pipeline treats these as "syntactically incorrect
statement" (Section 5.3 of the paper): the statement is excluded from
further processing and counted in the run statistics, never silently
dropped.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL front-end failures.

    :param message: human-readable description of the failure.
    :param line: 1-based line of the offending character/token.
    :param column: 1-based column of the offending character/token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")


class LexerError(SqlError):
    """Raised when the input contains a character sequence that is not a
    valid token (e.g. an unterminated string literal)."""


class ParseError(SqlError):
    """Raised when the token stream does not form a valid statement of the
    supported dialect."""


class UnsupportedStatementError(ParseError):
    """Raised for statements that are recognizably SQL but outside the
    SELECT-only dialect the cleaning framework analyses (DML/DDL).

    The pipeline distinguishes these from genuine syntax errors so that the
    "Count of Select queries" statistic of Table 5 can be reported.
    """
