"""One-pass dispatch-driven scanner: tokens + statement fingerprint together.

Parse engine v3 collapsed the per-character lexer and the fingerprint
master-regex into one table-driven pass whose table was compiled into a
single alternation regex — one C-level match per lexeme, but every match
still walked the alternation's branch list and paid backtracking on
literal edges (the ``'a''`` escape-run resync was the visible scar).

Parse engine v4 removes the alternation entirely.  The inner loop is a
**first-character dispatch**: one dict probe on the lead character
selects the lexeme class, and each class handler finds its extent with
plain ``str`` machinery —

* ``str.find`` for strings (the escape-pairing find-loop computes the
  exact extent natively, so the v3 ``_string_resync`` repair pass is
  gone), bracket/double-quoted identifiers, and both comment styles,
* a digit walk with explicit fraction/exponent steps for numbers,
* direct character probes for operators and punctuation,
* a single-character-class run matcher for identifier/keyword tails —
  the one compiled pattern left, and it is a pure character-class scan
  (a DFA step per character, no alternatives, no backtracking).

The loop produces *both* products at once, exactly as v3 did:

* the token list the parser consumes (byte-identical to the legacy
  lexer, including error messages and 1-based positions),
* the :class:`StatementFingerprint` the template cache keys on
  (canonical token-stream key, literal vector, literal source spans).

One behavioral refinement hides here: v3 certified fingerprint safety
with a *second* full-text regex pass (``_FP_UNSAFE.search(text)``) after
the scan.  v4 folds that check into the only places a non-whitespace
control character can legally appear — string/comment bodies and
delimited identifiers; anywhere else the dispatch table already rejects
it as ``unexpected character`` — so the redundant pass disappears while
the certified-fingerprint set stays identical.

The scanner is pinned against three references by the differential
Hypothesis fuzz in ``tests/property/test_scanner_differential.py``: the
pinned per-character lexer (now a frozen test fixture), the frozen
pre-v3 module and the frozen v3 alternation scanner, both exec'd out of
git history, comparing tokens, error messages/positions and
fingerprints on structured SQL and adversarial character soup.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from .errors import LexerError
from .tokens import KEYWORDS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#"
)

_DIGITS = frozenset("0123456789")

_WHITESPACE = frozenset(" \t\r\n\f\v")

#: Common keyword spellings resolved with one dict probe instead of an
#: upper-case + set-membership pair (mirrors the legacy lexer's table).
_KEYWORD_CASES = {}
for _kw in KEYWORDS:
    for _spelling in (_kw, _kw.lower(), _kw.capitalize()):
        _KEYWORD_CASES[_spelling] = _kw

_PUNCT_KINDS = {
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
}

#: Identifier/keyword tail: the sole compiled pattern in the scanner.
#: A bare character class matched at a fixed position is a straight DFA
#: run in the regex engine — one C call returns the word's extent, which
#: beats a Python per-character walk for everything longer than a couple
#: of characters (SkyServer identifiers routinely run 10-20).
_WORD_RUN = re.compile(r"[A-Za-z0-9_\#\$]*").match

# ----------------------------------------------------------------------
# First-character dispatch.  One dict probe classifies the lexeme; the
# handler codes are ordered by workload frequency so the dispatch
# chain's early arms cover almost every lexeme.  Characters absent from
# the table (controls, ``$``, ``?``, non-ASCII, …) fall to ``_ERR`` and
# produce the exact ``unexpected character`` error the lexer raised.

(
    _ERR,
    _WORD,
    _WS,
    _PUNCT,
    _NUM,
    _OP,
    _LT,
    _GT,
    _MINUS,
    _SLASH,
    _DOT,
    _STR,
    _VAR,
    _BRACKET,
    _DQUOTE,
    _BANG,
    _PIPE,
) = range(17)

_DISPATCH = {}
for _c in "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#":
    _DISPATCH[_c] = _WORD
for _c in " \t\r\n\f\v":
    _DISPATCH[_c] = _WS
for _c in ",();":
    _DISPATCH[_c] = _PUNCT
for _c in "0123456789":
    _DISPATCH[_c] = _NUM
for _c in "=+*%":
    _DISPATCH[_c] = _OP
_DISPATCH["<"] = _LT
_DISPATCH[">"] = _GT
_DISPATCH["-"] = _MINUS
_DISPATCH["/"] = _SLASH
_DISPATCH["."] = _DOT
_DISPATCH["'"] = _STR
_DISPATCH["@"] = _VAR
_DISPATCH["["] = _BRACKET
_DISPATCH['"'] = _DQUOTE
_DISPATCH["!"] = _BANG
_DISPATCH["|"] = _PIPE


# ----------------------------------------------------------------------
# Statement fingerprint (the legacy module re-exports these names for
# compatibility).

#: Placeholder / tag bytes used inside fingerprint keys.  They can never
#: collide with statement content because the fingerprint is discarded
#: for any input containing a non-whitespace control character.
_FP_NUMBER = "\x03"
_FP_STRING = "\x04"
_FP_IDENT = "\x02"
_FP_VARIABLE = "\x05"
_FP_SEP = "\x1f"

#: Non-whitespace control characters.  \t\n\v\f\r (0x09-0x0d) are legal
#: whitespace; everything else below 0x20 would threaten the injectivity
#: of the join-based key, so such statements get no fingerprint (they
#: still tokenize — control characters are legal inside string literals,
#: comments and delimited identifiers, the only lexemes whose bodies this
#: pattern is run against; anywhere else they fail to tokenize at all).
_FP_UNSAFE = re.compile("[\x00-\x08\x0e-\x1f]")
_FP_UNSAFE_SEARCH = _FP_UNSAFE.search

#: Keywords that *end* an operand, so a following ``-`` is binary
#: subtraction; after any other keyword a ``-`` starts a negative number.
_OPERAND_END_KEYWORDS = frozenset({"NULL", "END"})


class StatementFingerprint(NamedTuple):
    """The raw-statement fingerprint captured by one scanner pass.

    :param key: canonical token-stream key — whitespace/comments dropped,
        keyword case folded, literals replaced by typed placeholders.
        Identifiers and variables are kept verbatim (their case survives
        into formatted output, so folding them would break byte-identical
        clean logs), and delimited identifiers additionally keep their
        opening delimiter so ``[objid]``, ``"objid"`` and ``objid`` can
        never share a key.
    :param constants: the literal vector, in token order, as
        ``(kind, value)`` pairs with ``kind`` in ``{'number', 'string'}``
        and ``value`` exactly what the parser's :class:`Literal` would
        carry (numbers keep source text, a folded unary minus included;
        strings are unquoted with ``''`` collapsed).
    :param spans: the ``(start, end)`` source position of each literal
        token, parallel to ``constants``.  A folded unary minus is *not*
        part of its number's span — the span is the literal token alone,
        which lets the cache's raw-template memo prove positionally that
        a cheap regex strip extracted exactly the scanner's literals.
    """

    key: str
    constants: Tuple[Tuple[str, str], ...]
    spans: Tuple[Tuple[int, int], ...] = ()


class Scan(NamedTuple):
    """Everything one scanner pass produces.

    Exactly one of ``tokens`` / ``error`` is set.  ``fingerprint`` is
    ``None`` whenever the statement cannot be certified for the parse
    fast path (lexical error, or control characters that would threaten
    key injectivity); the tokens are still valid in the latter case.
    """

    tokens: Optional[List[Token]]
    error: Optional[LexerError]
    fingerprint: Optional[StatementFingerprint]


def scan(text: str) -> Scan:  # noqa: C901 - one deliberately flat hot loop
    """Scan ``text`` once, producing tokens and fingerprint together.

    Never raises: lexical errors come back in ``Scan.error`` carrying
    the exact message and 1-based position the legacy lexer raises.
    """
    tokens: List[Token] = []
    parts: List[str] = []
    constants: List[Tuple[str, str]] = []
    spans: List[Tuple[int, int]] = []
    append_token = tokens.append
    append_part = parts.append
    add_constant = constants.append
    add_span = spans.append
    dispatch_get = _DISPATCH.get
    keyword_cases = _KEYWORD_CASES
    keywords = KEYWORDS
    punct_kinds = _PUNCT_KINDS
    word_run = _WORD_RUN
    ident_start = _IDENT_START
    digits = _DIGITS
    whitespace = _WHITESPACE
    unsafe = _FP_UNSAFE_SEARCH
    find = text.find
    tnew = tuple.__new__
    token_cls = Token
    kw_kind = TokenKind.KEYWORD
    ident_kind = TokenKind.IDENTIFIER
    num_kind = TokenKind.NUMBER
    str_kind = TokenKind.STRING
    var_kind = TokenKind.VARIABLE
    op_kind = TokenKind.OPERATOR

    error: Optional[LexerError] = None
    pos = 0
    length = len(text)
    line = 1
    line_start = 0  # source index where the current line begins
    # True while the fingerprint is still certifiable: flipped off when a
    # literal/comment body carries a non-whitespace control character.
    fp_ok = True
    # ``-`` in operand position is held back: if a number follows it is
    # folded into the constant (mirroring the parser, which folds unary
    # minus into the Literal), otherwise it is emitted as an operator.
    pending_minus = False
    # True when the *next* token sits in operand position, i.e. a ``-``
    # here would be unary.  Any disagreement with the parser is caught
    # by the cache's build-time literal check and falls back per key.
    unary_next = True

    while pos < length:
        char = text[pos]
        code = dispatch_get(char, _ERR)

        if code == _WORD:
            end = word_run(text, pos + 1).end()
            word = text[pos:end]
            keyword = keyword_cases.get(word)
            if keyword is None:
                upper = word.upper()
                if upper in keywords:
                    keyword = upper
            if pending_minus:
                append_part("-")
                pending_minus = False
            if keyword is not None:
                append_token(
                    tnew(
                        token_cls,
                        (kw_kind, keyword, line, pos - line_start + 1),
                    )
                )
                append_part(keyword)
                unary_next = keyword not in _OPERAND_END_KEYWORDS
            else:
                append_token(
                    tnew(
                        token_cls,
                        (ident_kind, word, line, pos - line_start + 1),
                    )
                )
                append_part(_FP_IDENT + word)
                unary_next = False
            pos = end

        elif code == _WS:
            end = pos + 1
            if char == " " and (end == length or text[end] not in whitespace):
                pos = end  # the dominant case: one space between lexemes
                continue
            while end < length and text[end] in whitespace:
                end += 1
            run = text[pos:end]
            newline = run.rfind("\n")
            if newline != -1:
                line += run.count("\n")
                line_start = pos + newline + 1
            pos = end

        elif code == _PUNCT:
            append_token(
                tnew(
                    token_cls,
                    (punct_kinds[char], char, line, pos - line_start + 1),
                )
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(char)
            unary_next = char == "(" or char == ","
            pos += 1

        elif code == _NUM or code == _DOT:
            start = pos
            if code == _DOT:
                after = pos + 1
                if after >= length or text[after] not in digits:
                    # A bare ``.`` is ordinary punctuation.
                    append_token(
                        tnew(
                            token_cls,
                            (
                                punct_kinds["."],
                                ".",
                                line,
                                pos - line_start + 1,
                            ),
                        )
                    )
                    if pending_minus:
                        append_part("-")
                        pending_minus = False
                    append_part(".")
                    unary_next = False
                    pos = after
                    continue
                end = after + 1
                while end < length and text[end] in digits:
                    end += 1
            else:
                end = pos + 1
                while end < length and text[end] in digits:
                    end += 1
                # A fraction dot is consumed only when not followed by a
                # second dot (``1..2`` is NUMBER DOT DOT NUMBER).
                if (
                    end < length
                    and text[end] == "."
                    and text[end + 1 : end + 2] != "."
                ):
                    end += 1
                    while end < length and text[end] in digits:
                        end += 1
            if end < length and (text[end] == "e" or text[end] == "E"):
                lookahead = end + 1
                if lookahead < length and (
                    text[lookahead] == "+" or text[lookahead] == "-"
                ):
                    lookahead += 1
                if lookahead < length and text[lookahead] in digits:
                    end = lookahead + 1
                    while end < length and text[end] in digits:
                        end += 1
            token_text = text[start:end]
            if end < length and text[end] in ident_start:
                # `1abc` — malformed literal, error at the number start.
                error = LexerError(
                    f"malformed numeric literal {token_text + text[end]!r}",
                    line,
                    pos - line_start + 1,
                )
                break
            append_token(
                tnew(
                    token_cls,
                    (num_kind, token_text, line, pos - line_start + 1),
                )
            )
            if pending_minus:
                add_constant(("number", "-" + token_text))
                pending_minus = False
            else:
                add_constant(("number", token_text))
            add_span((start, end))
            append_part(_FP_NUMBER)
            unary_next = False
            pos = end

        elif code == _OP:
            append_token(
                tnew(token_cls, (op_kind, char, line, pos - line_start + 1))
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(char)
            unary_next = True
            pos += 1

        elif code == _LT or code == _GT:
            after = text[pos + 1 : pos + 2]
            if after == "=":
                op = "<=" if code == _LT else ">="
                end = pos + 2
            elif code == _LT and after == ">":
                op = "<>"
                end = pos + 2
            else:
                op = char
                end = pos + 1
            append_token(
                tnew(token_cls, (op_kind, op, line, pos - line_start + 1))
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(op)
            unary_next = True
            pos = end

        elif code == _MINUS:
            if text[pos + 1 : pos + 2] == "-":
                # Line comment: runs to end of line, never contains the
                # newline itself.  Control characters in the body kill
                # the fingerprint (v3 caught them via the full-text
                # pass), never the tokens.
                newline = find("\n", pos + 2)
                if newline == -1:
                    body = text[pos:]
                    pos = length
                else:
                    body = text[pos:newline]
                    pos = newline
                if fp_ok and unsafe(body):
                    fp_ok = False
                continue
            append_token(
                tnew(token_cls, (op_kind, "-", line, pos - line_start + 1))
            )
            if pending_minus:
                append_part("-")
            if unary_next:
                pending_minus = True
            else:
                pending_minus = False
                append_part("-")
                unary_next = True
            pos += 1

        elif code == _SLASH:
            if text[pos + 1 : pos + 2] == "*":
                close = find("*/", pos + 2)
                if close == -1:
                    error = LexerError(
                        "unterminated block comment",
                        line,
                        pos - line_start + 1,
                    )
                    break
                body = text[pos : close + 2]
                if fp_ok and unsafe(body):
                    fp_ok = False
                newline = body.rfind("\n")
                if newline != -1:
                    line += body.count("\n")
                    line_start = pos + newline + 1
                pos = close + 2
                continue
            append_token(
                tnew(token_cls, (op_kind, "/", line, pos - line_start + 1))
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part("/")
            unary_next = True
            pos += 1

        elif code == _STR:
            column = pos - line_start + 1
            search = pos + 1
            while True:
                quote = find("'", search)
                if quote == -1:
                    error = LexerError(
                        "unterminated string literal", line, column
                    )
                    break
                if text[quote + 1 : quote + 2] == "'":  # escaped quote
                    search = quote + 2
                    continue
                break
            if error is not None:
                break
            end = quote + 1
            token_text = text[pos:end]
            value = token_text[1:-1].replace("''", "'")
            append_token(tnew(token_cls, (str_kind, value, line, column)))
            if pending_minus:
                append_part("-")
                pending_minus = False
            add_constant(("string", value))
            add_span((pos, end))
            append_part(_FP_STRING)
            unary_next = False
            if fp_ok and unsafe(token_text):
                fp_ok = False
            newline = token_text.rfind("\n")
            if newline != -1:
                line += token_text.count("\n")
                line_start = pos + newline + 1
            pos = end

        elif code == _VAR:
            column = pos - line_start + 1
            name_start = pos + 1
            if text[name_start : name_start + 1] == "@":
                name_start += 1  # @@rowcount style system variables
            if (
                name_start >= length
                or text[name_start] not in ident_start
            ):
                error = LexerError("malformed variable name", line, column)
                break
            end = word_run(text, name_start + 1).end()
            name = text[pos + 1 : end]
            append_token(tnew(token_cls, (var_kind, name, line, column)))
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(_FP_VARIABLE + name)
            unary_next = False
            pos = end

        elif code == _BRACKET or code == _DQUOTE:
            column = pos - line_start + 1
            closer = "]" if code == _BRACKET else '"'
            close = find(closer, pos + 1)
            if close == -1:
                error = LexerError(
                    "unterminated [identifier]"
                    if code == _BRACKET
                    else 'unterminated "identifier"',
                    line,
                    column,
                )
                break
            name = text[pos + 1 : close]
            append_token(tnew(token_cls, (ident_kind, name, line, column)))
            if pending_minus:
                append_part("-")
                pending_minus = False
            # The delimiter kind is part of the key: ``[objid]``,
            # ``"objid"`` and ``objid`` parse to the same AST today, but
            # folding them onto one key would splice one form's text
            # against another form's prototype.  Keeping the opening
            # delimiter is injective — a bare word can never start with
            # ``[`` or ``"``, so the three forms occupy disjoint keys.
            append_part(_FP_IDENT + char + name)
            unary_next = False
            if fp_ok and unsafe(name):
                fp_ok = False
            newline = name.rfind("\n")
            if newline != -1:
                line += name.count("\n")
                line_start = pos + 1 + newline + 1
            pos = close + 1

        elif code == _BANG:
            if text[pos + 1 : pos + 2] == "=":
                append_token(
                    tnew(
                        token_cls, (op_kind, "!=", line, pos - line_start + 1)
                    )
                )
                if pending_minus:
                    append_part("-")
                    pending_minus = False
                append_part("!=")
                unary_next = True
                pos += 2
            else:
                error = LexerError(
                    f"unexpected character {char!r}",
                    line,
                    pos - line_start + 1,
                )
                break

        elif code == _PIPE:
            if text[pos + 1 : pos + 2] == "|":
                append_token(
                    tnew(
                        token_cls, (op_kind, "||", line, pos - line_start + 1)
                    )
                )
                if pending_minus:
                    append_part("-")
                    pending_minus = False
                append_part("||")
                unary_next = True
                pos += 2
            else:
                error = LexerError(
                    f"unexpected character {char!r}",
                    line,
                    pos - line_start + 1,
                )
                break

        else:  # _ERR
            error = LexerError(
                f"unexpected character {char!r}", line, pos - line_start + 1
            )
            break

    if error is not None:
        return Scan(None, error, None)
    append_token(
        tnew(token_cls, (TokenKind.EOF, "", line, pos - line_start + 1))
    )
    if not fp_ok:
        return Scan(tokens, None, None)
    if pending_minus:
        append_part("-")
    return Scan(
        tokens,
        None,
        StatementFingerprint(
            _FP_SEP.join(parts), tuple(constants), tuple(spans)
        ),
    )


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return its tokens (EOF-terminated)."""
    result = scan(text)
    if result.error is not None:
        raise result.error
    return result.tokens  # type: ignore[return-value]


def fingerprint_statement(text: str) -> Optional[StatementFingerprint]:
    """Fingerprint ``text`` in one pass, or return ``None`` to punt.

    ``None`` means "take the full parse path": the input contains
    something the fast path cannot certify (unexpected characters,
    unterminated comments/strings, malformed numbers, non-whitespace
    control characters).  Never raises.
    """
    return scan(text).fingerprint
