"""One-pass table-driven scanner: tokens + statement fingerprint together.

Parse engine v3 replaces two separate passes over every cold statement —
the per-character :class:`~repro.sqlparser.lexer.Lexer` inner loop and
the fingerprint master-regex — with a single scanner built from a
declarative token-class table.  The table is compiled into one
alternation regex (one DFA-backed match per lexeme), and a single
dispatch loop over its matches produces *both* products at once:

* the token list the parser consumes (byte-identical to the
  hand-written lexer, including error messages and 1-based positions),
* the :class:`StatementFingerprint` the template cache keys on
  (canonical token-stream key, literal vector, literal source spans).

Fingerprinting therefore stops being a separate regex pass, and a
statement the fingerprint machinery cannot certify (control characters,
lexical errors) falls back to the full parse path without any duplicate
scanning: the same tokens feed the parser directly.

The scanner is pinned against the legacy lexer by a differential
Hypothesis fuzz (``tests/property/test_scanner_differential.py``) that
compares tokens, error messages/positions and fingerprints on both
structured SQL and adversarial character soup.  The legacy per-character
path remains available for one release behind ``REPRO_LEGACY_LEXER=1``.

One deliberate subtlety: the string-literal alternative is greedy over
``''`` escape pairs, so on an *unterminated* string with escapes (e.g.
``'a''``) the regex backtracks to a shorter, well-formed prefix the
hand-written lexer would reject.  That situation is detectable locally —
the character after the match is another quote, which the lexer would
have paired as an escape — and :func:`_string_resync` re-runs the
lexer's find-loop from the opening quote to recover the exact extent or
the exact error the lexer raises.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from .errors import LexerError
from .tokens import KEYWORDS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#"
)

#: Common keyword spellings resolved with one dict probe instead of an
#: upper-case + set-membership pair (mirrors the legacy lexer's table).
_KEYWORD_CASES = {}
for _kw in KEYWORDS:
    for _spelling in (_kw, _kw.lower(), _kw.capitalize()):
        _KEYWORD_CASES[_spelling] = _kw

_PUNCT_KINDS = {
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
}

# ----------------------------------------------------------------------
# The token-class table.  One row per lexeme class; the rows are
# compiled, in order, into a single alternation regex.  Order matters
# exactly as it did for the legacy master-regex: words before numbers
# (``abc1``), numbers before DOT (``.5``), comments before operators
# (``--``, ``/*``).  Each row is a flat group — no nested captures — so
# ``Match.lastindex`` identifies the class as a 1-based index into the
# table and the dispatch loop never touches group names.

_SCAN_TABLE: Tuple[Tuple[str, str], ...] = (
    ("ws", r"[ \t\r\n\f\v]+"),
    ("lc", r"--[^\n]*"),
    ("bc", r"/\*.*?\*/"),
    ("word", r"[A-Za-z_\#][A-Za-z0-9_\#\$]*"),
    ("num", r"(?:[0-9]+(?:\.(?!\.)[0-9]*)?|\.[0-9]+)(?:[eE][+-]?[0-9]+)?"),
    ("str", r"'[^']*(?:''[^']*)*'"),
    ("bracket", r"\[[^\]]*\]"),
    ("dquote", r'"[^"]*"'),
    ("var", r"@@?[A-Za-z_\#][A-Za-z0-9_\#\$]*"),
    ("op", r"<>|!=|<=|>=|\|\||[=<>+\-*/%]"),
    ("punct", r"[,.();]"),
)

_SCANNER = re.compile(
    "|".join("(%s)" % pattern for _, pattern in _SCAN_TABLE), re.DOTALL
)

# Class indices (``Match.lastindex`` values), kept as module constants so
# the dispatch loop compares small ints.
(
    _WS,
    _LC,
    _BC,
    _WORD,
    _NUM,
    _STR,
    _BRACKET,
    _DQUOTE,
    _VAR,
    _OP,
    _PUNCT,
) = range(1, len(_SCAN_TABLE) + 1)


# ----------------------------------------------------------------------
# Statement fingerprint (moved here from ``lexer.py``; the legacy module
# re-exports these names for compatibility).

#: Placeholder / tag bytes used inside fingerprint keys.  They can never
#: collide with statement content because the fingerprint is discarded
#: for any input containing a non-whitespace control character.
_FP_NUMBER = "\x03"
_FP_STRING = "\x04"
_FP_IDENT = "\x02"
_FP_VARIABLE = "\x05"
_FP_SEP = "\x1f"

#: Non-whitespace control characters.  \t\n\v\f\r (0x09-0x0d) are legal
#: whitespace; everything else below 0x20 would threaten the injectivity
#: of the join-based key, so such statements get no fingerprint (they
#: still tokenize — control characters are legal inside string literals
#: and delimited identifiers).
_FP_UNSAFE = re.compile("[\x00-\x08\x0e-\x1f]")

#: Keywords that *end* an operand, so a following ``-`` is binary
#: subtraction; after any other keyword a ``-`` starts a negative number.
_OPERAND_END_KEYWORDS = frozenset({"NULL", "END"})


class StatementFingerprint(NamedTuple):
    """The raw-statement fingerprint captured by one scanner pass.

    :param key: canonical token-stream key — whitespace/comments dropped,
        keyword case folded, literals replaced by typed placeholders.
        Identifiers and variables are kept verbatim (their case survives
        into formatted output, so folding them would break byte-identical
        clean logs), and delimited identifiers additionally keep their
        opening delimiter so ``[objid]``, ``"objid"`` and ``objid`` can
        never share a key.
    :param constants: the literal vector, in token order, as
        ``(kind, value)`` pairs with ``kind`` in ``{'number', 'string'}``
        and ``value`` exactly what the parser's :class:`Literal` would
        carry (numbers keep source text, a folded unary minus included;
        strings are unquoted with ``''`` collapsed).
    :param spans: the ``(start, end)`` source position of each literal
        token, parallel to ``constants``.  A folded unary minus is *not*
        part of its number's span — the span is the literal token alone,
        which lets the cache's raw-template memo prove positionally that
        a cheap regex strip extracted exactly the scanner's literals.
    """

    key: str
    constants: Tuple[Tuple[str, str], ...]
    spans: Tuple[Tuple[int, int], ...] = ()


class Scan(NamedTuple):
    """Everything one scanner pass produces.

    Exactly one of ``tokens`` / ``error`` is set.  ``fingerprint`` is
    ``None`` whenever the statement cannot be certified for the parse
    fast path (lexical error, or control characters that would threaten
    key injectivity); the tokens are still valid in the latter case.
    """

    tokens: Optional[List[Token]]
    error: Optional[LexerError]
    fingerprint: Optional[StatementFingerprint]


def _string_resync(text: str, start: int) -> int:
    """Re-run the lexer's string find-loop from the opening quote.

    Called only when the regex string match is followed by another
    quote — i.e. the regex backtracked where the lexer would have paired
    an escape.  Returns the position just past the closing quote, or
    ``-1`` if the string is unterminated.
    """
    length = len(text)
    pos = start + 1
    while True:
        quote = text.find("'", pos)
        if quote == -1:
            return -1
        if quote + 1 < length and text[quote + 1] == "'":
            pos = quote + 2
            continue
        return quote + 1


def scan(text: str) -> Scan:
    """Scan ``text`` once, producing tokens and fingerprint together.

    Never raises: lexical errors come back in ``Scan.error`` carrying
    the exact message and 1-based position the legacy lexer raises.
    """
    tokens: List[Token] = []
    parts: List[str] = []
    constants: List[Tuple[str, str]] = []
    spans: List[Tuple[int, int]] = []
    append_token = tokens.append
    append_part = parts.append
    add_constant = constants.append
    add_span = spans.append
    match = _SCANNER.match
    keyword_cases = _KEYWORD_CASES
    punct_kinds = _PUNCT_KINDS
    kw_kind = TokenKind.KEYWORD
    ident_kind = TokenKind.IDENTIFIER
    num_kind = TokenKind.NUMBER
    str_kind = TokenKind.STRING
    var_kind = TokenKind.VARIABLE
    op_kind = TokenKind.OPERATOR

    error: Optional[LexerError] = None
    pos = 0
    length = len(text)
    line = 1
    line_start = 0  # source index where the current line begins
    # ``-`` in operand position is held back: if a number follows it is
    # folded into the constant (mirroring the parser, which folds unary
    # minus into the Literal), otherwise it is emitted as an operator.
    pending_minus = False
    # True when the *next* token sits in operand position, i.e. a ``-``
    # here would be unary.  Any disagreement with the parser is caught
    # by the cache's build-time literal check and falls back per key.
    unary_next = True

    while pos < length:
        m = match(text, pos)
        if m is None:
            char = text[pos]
            if char == "'":
                message = "unterminated string literal"
            elif char == "[":
                message = "unterminated [identifier]"
            elif char == '"':
                message = 'unterminated "identifier"'
            elif char == "@":
                message = "malformed variable name"
            else:
                message = f"unexpected character {char!r}"
            error = LexerError(message, line, pos - line_start + 1)
            break
        index = m.lastindex
        end = m.end()
        token_text = m.group()
        if index == _WORD:
            keyword = keyword_cases.get(token_text)
            if keyword is None:
                upper = token_text.upper()
                keyword = upper if upper in KEYWORDS else None
            if pending_minus:
                append_part("-")
                pending_minus = False
            if keyword is not None:
                append_token(
                    Token(kw_kind, keyword, line, pos - line_start + 1)
                )
                append_part(keyword)
                unary_next = keyword not in _OPERAND_END_KEYWORDS
            else:
                append_token(
                    Token(ident_kind, token_text, line, pos - line_start + 1)
                )
                append_part(_FP_IDENT + token_text)
                unary_next = False
        elif index == _WS:
            newline = token_text.rfind("\n")
            if newline != -1:
                line += token_text.count("\n")
                line_start = pos + newline + 1
        elif index == _PUNCT:
            append_token(
                Token(
                    punct_kinds[token_text],
                    token_text,
                    line,
                    pos - line_start + 1,
                )
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(token_text)
            unary_next = token_text == "(" or token_text == ","
        elif index == _NUM:
            if end < length and text[end] in _IDENT_START:
                # `1abc` — malformed literal, error at the number start.
                error = LexerError(
                    f"malformed numeric literal {token_text + text[end]!r}",
                    line,
                    pos - line_start + 1,
                )
                break
            append_token(
                Token(num_kind, token_text, line, pos - line_start + 1)
            )
            if pending_minus:
                add_constant(("number", "-" + token_text))
                pending_minus = False
            else:
                add_constant(("number", token_text))
            add_span((pos, end))
            append_part(_FP_NUMBER)
            unary_next = False
        elif index == _OP:
            if token_text == "/" and end < length and text[end] == "*":
                # A terminated comment would have matched the ``bc``
                # alternative first, so ``/`` + ``*`` is unterminated.
                error = LexerError(
                    "unterminated block comment", line, pos - line_start + 1
                )
                break
            append_token(
                Token(op_kind, token_text, line, pos - line_start + 1)
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            if token_text == "-" and unary_next:
                pending_minus = True
            else:
                append_part(token_text)
                unary_next = True
        elif index == _STR:
            column = pos - line_start + 1
            if end < length and text[end] == "'":
                # Regex backtracked on an escape run; resync with the
                # lexer's pairing (see module docstring).
                resynced = _string_resync(text, pos)
                if resynced == -1:
                    error = LexerError(
                        "unterminated string literal", line, column
                    )
                    break
                end = resynced
                token_text = text[pos:end]
            value = token_text[1:-1].replace("''", "'")
            append_token(Token(str_kind, value, line, column))
            if pending_minus:
                append_part("-")
                pending_minus = False
            add_constant(("string", value))
            add_span((pos, end))
            append_part(_FP_STRING)
            unary_next = False
            newline = token_text.rfind("\n")
            if newline != -1:
                line += token_text.count("\n")
                line_start = pos + newline + 1
        elif index == _VAR:
            append_token(
                Token(var_kind, token_text[1:], line, pos - line_start + 1)
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            append_part(_FP_VARIABLE + token_text[1:])
            unary_next = False
        elif index == _LC:
            pass  # line comment — cannot contain a newline
        elif index == _BC:
            newline = token_text.rfind("\n")
            if newline != -1:
                line += token_text.count("\n")
                line_start = pos + newline + 1
        else:  # bracket / dquote identifiers — same token as a bare word
            append_token(
                Token(
                    ident_kind,
                    token_text[1:-1],
                    line,
                    pos - line_start + 1,
                )
            )
            if pending_minus:
                append_part("-")
                pending_minus = False
            # The delimiter kind is part of the key: ``[objid]``,
            # ``"objid"`` and ``objid`` parse to the same AST today, but
            # folding them onto one key would splice one form's text
            # against another form's prototype.  Keeping the opening
            # delimiter is injective — a bare word can never start with
            # ``[`` or ``"``, so the three forms occupy disjoint keys.
            append_part(_FP_IDENT + token_text[0] + token_text[1:-1])
            unary_next = False
            newline = token_text.rfind("\n")
            if newline != -1:
                line += token_text.count("\n")
                line_start = pos + newline + 1
        pos = end

    if error is not None:
        return Scan(None, error, None)
    append_token(Token(TokenKind.EOF, "", line, pos - line_start + 1))
    if _FP_UNSAFE.search(text):
        return Scan(tokens, None, None)
    if pending_minus:
        append_part("-")
    return Scan(
        tokens,
        None,
        StatementFingerprint(
            _FP_SEP.join(parts), tuple(constants), tuple(spans)
        ),
    )


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return its tokens (EOF-terminated)."""
    result = scan(text)
    if result.error is not None:
        raise result.error
    return result.tokens  # type: ignore[return-value]


def fingerprint_statement(text: str) -> Optional[StatementFingerprint]:
    """Fingerprint ``text`` in one pass, or return ``None`` to punt.

    ``None`` means "take the full parse path": the input contains
    something the fast path cannot certify (unexpected characters,
    unterminated comments/strings, malformed numbers, non-whitespace
    control characters).  Never raises.
    """
    return scan(text).fingerprint
