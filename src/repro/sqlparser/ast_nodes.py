"""Abstract syntax tree for the supported SQL dialect.

All nodes are slotted, hash-by-value dataclasses, so

* structural equality (``==``) is equality of the syntax trees, which is
  exactly the equality the paper's skeleton comparison (Definition 5)
  needs once constants are replaced by placeholders, and
* nodes are hashable and can key dictionaries (the template registry).

Nodes are immutable *by convention*, not by ``frozen=True``: parse
engine v4 traded the frozen guard for construction speed, because a
frozen ``__init__`` routes every field through ``object.__setattr__``
(~2.5× the cost of plain slot assignment) and the cold parse path mints
tens of nodes per statement.  Nothing in the codebase mutates a node
after construction — the cache and visitor layers already build changed
copies via ``dataclasses.replace`` — and the ``unsafe_hash`` contract
(never mutate a node that keys a dict) is exactly the discipline the
shared-prototype cache demanded under ``frozen`` too.

The tree is deliberately *syntactic*: ``count(*)`` is a
:class:`FunctionCall`, names keep their original spelling, and semantic
resolution (which table a column belongs to) happens later in
:mod:`repro.engine` and :mod:`repro.skeleton.features` where a catalog is
available.

Traversal: :meth:`Node.children` yields direct child nodes and
:meth:`Node.walk` yields the subtree in pre-order; both are derived from the
dataclass fields so new node types participate automatically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

# __slots__ on every node class: smaller trees and faster attribute
# access for the traversal-heavy skeleton/feature passes.  (The old
# 3.10 gate is gone with ``frozen`` — non-frozen slotted dataclasses
# pickle fine on every supported version.)
_node_dataclass = dataclass(unsafe_hash=True, slots=True)


@_node_dataclass
class Node:
    """Base class of every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes, in field order."""
        for node_field in dataclasses.fields(self):
            value = getattr(self, node_field.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ----------------------------------------------------------------------
# Expressions


@_node_dataclass
class Expression(Node):
    """Base class of value-producing nodes."""


@_node_dataclass
class Literal(Expression):
    """A constant.

    :param value: the literal's textual value.  For numbers this is the raw
        source text (``'0.125'``), for strings the unquoted content, and for
        NULL the canonical string ``'NULL'``.
    :param kind: one of ``'number'``, ``'string'``, ``'null'``.
    """

    value: str
    kind: str

    def python_value(self):
        """Return the literal as a Python value (int/float/str/None)."""
        if self.kind == "null":
            return None
        if self.kind == "number":
            try:
                return int(self.value)
            except ValueError:
                return float(self.value)
        return self.value


@_node_dataclass
class Placeholder(Expression):
    """A skeleton placeholder standing in for a constant (Section 4.1.2).

    :param kind: the replaced literal's kind (``'number'``/``'string'``/
        ``'null'``/``'var'``), rendered as ``<num>``, ``<str>``, … by the
        formatter so skeletons read like the paper's Example 8.
    """

    kind: str


@_node_dataclass
class Variable(Expression):
    """A T-SQL ``@name`` variable (SkyServer templates use these)."""

    name: str


@_node_dataclass
class ColumnRef(Expression):
    """A possibly qualified column reference ``[table.]column``."""

    name: str
    table: Optional[str] = None

    def key(self) -> Tuple[Optional[str], str]:
        """Case-insensitive identity of the reference."""
        return (self.table.lower() if self.table else None, self.name.lower())


@_node_dataclass
class Star(Expression):
    """``*`` or ``table.*`` in a SELECT list or in ``count(*)``."""

    table: Optional[str] = None


@_node_dataclass
class FunctionCall(Expression):
    """A function invocation, possibly schema-qualified (``dbo.fGetNearbyObjEq``).

    :param name: function name without qualifier.
    :param args: argument expressions (a lone :class:`Star` for ``count(*)``).
    :param schema: optional qualifier (``dbo``).
    :param distinct: True for ``count(DISTINCT x)``.
    """

    name: str
    args: Tuple[Expression, ...] = ()
    schema: Optional[str] = None
    distinct: bool = False


@_node_dataclass
class UnaryOp(Expression):
    """Unary ``-``/``+`` applied to an expression."""

    op: str
    operand: Expression


@_node_dataclass
class BinaryOp(Expression):
    """Arithmetic/string operator: ``+ - * / % ||``."""

    op: str
    left: Expression
    right: Expression


@_node_dataclass
class Comparison(Expression):
    """A comparison predicate: ``= <> != < <= > >=``.

    ``<>`` and ``!=`` are normalised to ``<>`` by the parser so that
    structurally identical predicates compare equal.
    """

    op: str
    left: Expression
    right: Expression


@_node_dataclass
class And(Expression):
    """Logical conjunction."""

    left: Expression
    right: Expression


@_node_dataclass
class Or(Expression):
    """Logical disjunction."""

    left: Expression
    right: Expression


@_node_dataclass
class Not(Expression):
    """Logical negation."""

    operand: Expression


@_node_dataclass
class InList(Expression):
    """``expr [NOT] IN (item, …)`` with literal/expression items.

    This node is also the *output* of the DW-Stifle rewrite (Example 10),
    which merges the equality constants of the stifled queries into one
    IN-list.
    """

    expr: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@_node_dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT …)``."""

    expr: Expression
    subquery: "SelectStatement"
    negated: bool = False


@_node_dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False


@_node_dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL`` — the *correct* form the SNC rewrite emits."""

    expr: Expression
    negated: bool = False


@_node_dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    expr: Expression
    pattern: Expression
    negated: bool = False


@_node_dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT …)``."""

    subquery: "SelectStatement"
    negated: bool = False


@_node_dataclass
class WhenClause(Node):
    """One ``WHEN condition THEN result`` arm of a CASE expression."""

    condition: Expression
    result: Expression


@_node_dataclass
class CaseExpression(Expression):
    """Searched or simple CASE expression."""

    whens: Tuple[WhenClause, ...]
    operand: Optional[Expression] = None
    else_result: Optional[Expression] = None


@_node_dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    expr: Expression
    type_name: str


@_node_dataclass
class ScalarSubquery(Expression):
    """A parenthesised SELECT used as a scalar value."""

    select: "SelectStatement"


# ----------------------------------------------------------------------
# FROM sources


@_node_dataclass
class TableSource(Node):
    """Base class of everything that can appear in a FROM clause."""

    def alias_name(self) -> Optional[str]:
        """The exposed correlation name, if any."""
        return getattr(self, "alias", None)


@_node_dataclass
class TableName(TableSource):
    """A base table, possibly schema-qualified, with optional alias."""

    name: str
    schema: Optional[str] = None
    alias: Optional[str] = None

    def qualified_name(self) -> str:
        """Lower-cased dotted name used for catalog lookup."""
        if self.schema:
            return f"{self.schema.lower()}.{self.name.lower()}"
        return self.name.lower()


@_node_dataclass
class FunctionTable(TableSource):
    """A table-valued function in FROM (``fGetNearbyObjEq(@ra,@dec,@r) n``)."""

    call: FunctionCall
    alias: Optional[str] = None


@_node_dataclass
class DerivedTable(TableSource):
    """A subquery in FROM with a correlation name."""

    select: "SelectStatement"
    alias: Optional[str] = None


@_node_dataclass
class Join(TableSource):
    """A join of two table sources.

    :param kind: ``'INNER'``, ``'LEFT'``, ``'RIGHT'``, ``'FULL'``,
        ``'CROSS'`` or ``'CROSS APPLY'``.
    :param condition: the ON expression (None for CROSS joins and for
        comma-style joins, which the parser flattens into CROSS).
    """

    left: TableSource
    right: TableSource
    kind: str = "INNER"
    condition: Optional[Expression] = None


# ----------------------------------------------------------------------
# Statements


@_node_dataclass
class SelectItem(Node):
    """One element of the SELECT list."""

    expr: Expression
    alias: Optional[str] = None

    def output_name(self) -> Optional[str]:
        """Name this item exposes in the result (alias or column name)."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return None


@_node_dataclass
class OrderItem(Node):
    """One element of the ORDER BY list."""

    expr: Expression
    descending: bool = False


@_node_dataclass
class Statement(Node):
    """Base class for parsed statements."""


@_node_dataclass
class TopClause(Node):
    """T-SQL ``TOP n [PERCENT]``."""

    count: Expression
    percent: bool = False


@_node_dataclass
class SelectStatement(Statement):
    """A full SELECT statement.

    The three clause subtrees the paper's definitions slice on —
    the SELECT list (SC), the FROM clause (FC) and the WHERE clause (WC) —
    are directly addressable as :attr:`items`, :attr:`from_sources`
    and :attr:`where`.
    """

    items: Tuple[SelectItem, ...]
    from_sources: Tuple[TableSource, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    distinct: bool = False
    top: Optional[TopClause] = None


@_node_dataclass
class Union(Statement):
    """``left UNION [ALL] right``."""

    left: Statement
    right: Statement
    all: bool = False


__all__ = [name for name in dir() if not name.startswith("_")]
