"""Token model for the SQL lexer.

The lexer produces a flat stream of :class:`Token` objects.  Token kinds are
deliberately coarse — the parser, not the lexer, decides whether ``count`` is
a function name or a column — with one exception: *keywords* are recognised
in the lexer because SQL keywords are reserved in the dialect we support
(T-SQL style, as used by SkyServer).
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    VARIABLE = "variable"  # T-SQL @name variables
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    SEMICOLON = "semicolon"
    EOF = "eof"


#: Reserved words of the supported dialect.  Matching is case-insensitive;
#: the lexer upper-cases the token value for keywords so the parser can
#: compare against these constants directly.
KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "TOP",
        "PERCENT",
        "AS",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "APPLY",
        "ON",
        "AND",
        "OR",
        "NOT",
        "IN",
        "IS",
        "NULL",
        "LIKE",
        "BETWEEN",
        "EXISTS",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "UNION",
        "ALL",
        "CAST",
        "CONVERT",
        "INTO",
        # Recognised so that non-SELECT statements are classified as
        # unsupported (not as syntax errors) — see Table 5's SELECT share.
        "INSERT",
        "UPDATE",
        "DELETE",
        "CREATE",
        "DROP",
        "ALTER",
        "TRUNCATE",
        "EXEC",
        "EXECUTE",
        "MERGE",
        "GRANT",
        "REVOKE",
        "DECLARE",
        "SET",
        "USE",
        "WITH",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS = frozenset("=<>+-*/%")


class Token(NamedTuple):
    """One lexical token.

    A ``NamedTuple`` rather than a dataclass: the scanner mints one of
    these per lexeme on the cold parse path, and tuple construction is
    roughly 3× cheaper than a frozen dataclass ``__init__`` (which pays
    ``object.__setattr__`` per field).  The hot loop goes further and
    builds tokens via ``tuple.__new__(Token, (...))``, skipping argument
    re-binding entirely.  Equality, hashing and immutability semantics
    are unchanged.

    :param kind: lexical category.
    :param value: textual value.  Keywords are upper-cased; string literals
        keep their *unquoted* content; identifiers keep original case
        (SQL identifier comparison elsewhere is case-insensitive).
    :param line: 1-based source line.
    :param column: 1-based source column.
    """

    kind: TokenKind
    value: str
    line: int = 0
    column: int = 0

    def is_keyword(self, *names: str) -> bool:
        """Return True iff this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r})"
