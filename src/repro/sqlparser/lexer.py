"""Hand-written lexer for the SkyServer SQL dialect.

The lexer turns a statement string into a list of :class:`Token` objects.
It understands:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping,
* numeric literals (integers, decimals, scientific notation, and numbers
  that start with a dot, e.g. ``.5``),
* regular identifiers, bracket-quoted identifiers (``[Full Name]``) and
  double-quoted identifiers (``"Full Name"``),
* T-SQL variables (``@ra``) — SkyServer templates are full of them,
* single- and multi-character operators.

Anything else raises :class:`~repro.sqlparser.errors.LexerError` with a
source position, which the pipeline records as a syntax error.

This module also hosts the parse fast path's *statement fingerprint*
(:func:`fingerprint_statement`): a single regex-driven pass that
canonicalizes whitespace, comments and keyword case, replaces number and
string literals with typed placeholders, and captures the constant
vector — without building tokens or an AST.  Two statements with the
same fingerprint key tokenize to the same token sequence up to literal
values, which is what the :class:`~repro.skeleton.cache.TemplateCache`
keys on.  The scanner is deliberately conservative: on anything it
cannot prove it mirrors exactly (unterminated comments, malformed
numbers, characters the lexer rejects, control characters that could
break key injectivity) it returns ``None`` and the caller takes the full
parse path.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Tuple

from .errors import LexerError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n\f\v")

# Precompiled lookup tables (module import time, not per statement):
# common keyword spellings resolved with one dict probe instead of an
# upper-case + set-membership pair, multi-character operators bucketed
# by first character, punctuation mapped straight to its token kind.
_KEYWORD_CASES = {}
for _kw in KEYWORDS:
    for _spelling in (_kw, _kw.lower(), _kw.capitalize()):
        _KEYWORD_CASES[_spelling] = _kw

_MULTI_BY_FIRST: dict = {}
for _op in MULTI_CHAR_OPERATORS:
    _MULTI_BY_FIRST.setdefault(_op[0], []).append(_op)
_MULTI_BY_FIRST = {first: tuple(ops) for first, ops in _MULTI_BY_FIRST.items()}

_PUNCT_KINDS = {
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
}


class Lexer:
    """Single-use tokenizer over one SQL statement string."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        tokens: List[Token] = []
        append = tokens.append
        length = len(self._text)
        while True:
            self._skip_trivia()
            if self._pos >= length:
                append(Token(TokenKind.EOF, "", self._line, self._column))
                return tokens
            append(self._next_token())

    # ------------------------------------------------------------------
    # Character helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _jump(self, new_pos: int) -> None:
        """Move to ``new_pos``, updating line/column over the skipped run."""
        text = self._text
        pos = self._pos
        chunk = text[pos:new_pos]
        newlines = chunk.count("\n")
        if newlines:
            self._line += newlines
            self._column = new_pos - (pos + chunk.rfind("\n"))
        else:
            self._column += new_pos - pos
        self._pos = new_pos

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (both styles)."""
        text = self._text
        length = len(text)
        while True:
            pos = self._pos
            if pos >= length:
                return
            char = text[pos]
            if char in _WHITESPACE:
                end = pos + 1
                while end < length and text[end] in _WHITESPACE:
                    end += 1
                self._jump(end)
            elif char == "-" and text.startswith("--", pos):
                end = text.find("\n", pos)
                self._jump(length if end == -1 else end)
            elif char == "/" and text.startswith("/*", pos):
                end = text.find("*/", pos + 2)
                if end == -1:
                    raise LexerError(
                        "unterminated block comment", self._line, self._column
                    )
                self._jump(end + 2)
            else:
                return

    # ------------------------------------------------------------------
    # Token producers

    def _next_token(self) -> Token:
        text = self._text
        pos = self._pos
        char = text[pos]
        line, column = self._line, self._column

        if char in _IDENT_START:
            length = len(text)
            end = pos + 1
            while end < length and text[end] in _IDENT_CONT:
                end += 1
            word = text[pos:end]
            self._column += end - pos
            self._pos = end
            keyword = _KEYWORD_CASES.get(word)
            if keyword is not None:
                return Token(TokenKind.KEYWORD, keyword, line, column)
            upper = word.upper()
            if upper in KEYWORDS:
                return Token(TokenKind.KEYWORD, upper, line, column)
            return Token(TokenKind.IDENTIFIER, word, line, column)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if char == "'":
            return self._lex_string(line, column)
        if char == "[":
            return self._lex_bracket_identifier(line, column)
        if char == '"':
            return self._lex_quoted_identifier(line, column)
        if char == "@":
            return self._lex_variable(line, column)

        punct = _PUNCT_KINDS.get(char)
        if punct is not None:
            self._pos = pos + 1
            self._column += 1
            return Token(punct, char, line, column)

        multi = _MULTI_BY_FIRST.get(char)
        if multi is not None:
            for operator in multi:
                if text.startswith(operator, pos):
                    self._pos = pos + len(operator)
                    self._column += len(operator)
                    return Token(TokenKind.OPERATOR, operator, line, column)
        if char in SINGLE_CHAR_OPERATORS:
            self._pos = pos + 1
            self._column += 1
            return Token(TokenKind.OPERATOR, char, line, column)

        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        text = self._text
        length = len(text)
        start = pos = self._pos
        while pos < length and text[pos] in _DIGITS:
            pos += 1
        if pos < length and text[pos] == "." and not text.startswith("..", pos):
            pos += 1
            while pos < length and text[pos] in _DIGITS:
                pos += 1
        if pos < length and text[pos] in "eE":
            lookahead = pos + 1
            if lookahead < length and text[lookahead] in "+-":
                lookahead += 1
            if lookahead < length and text[lookahead] in _DIGITS:
                pos = lookahead + 1
                while pos < length and text[pos] in _DIGITS:
                    pos += 1
        value = text[start:pos]
        self._column += pos - start
        self._pos = pos
        # `1abc` is a malformed literal, not a number followed by an
        # identifier; reject it here for a clear error position.
        if pos < length and text[pos] in _IDENT_START:
            raise LexerError(
                f"malformed numeric literal {value + text[pos]!r}",
                line,
                column,
            )
        return Token(TokenKind.NUMBER, value, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        text = self._text
        length = len(text)
        pos = self._pos + 1  # past the opening quote
        pieces: List[str] = []
        while True:
            quote = text.find("'", pos)
            if quote == -1:
                raise LexerError("unterminated string literal", line, column)
            pieces.append(text[pos:quote])
            if quote + 1 < length and text[quote + 1] == "'":  # escaped quote
                pieces.append("'")
                pos = quote + 2
                continue
            self._jump(quote + 1)
            return Token(TokenKind.STRING, "".join(pieces), line, column)

    def _lex_bracket_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening bracket
        start = self._pos
        while self._pos < len(self._text) and self._peek() != "]":
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError("unterminated [identifier]", line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing bracket
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < len(self._text) and self._peek() != '"':
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError('unterminated "identifier"', line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing quote
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_variable(self, line: int, column: int) -> Token:
        self._advance()  # the @ sign
        start = self._pos
        if self._peek() == "@":  # @@rowcount style system variables
            self._advance()
        if self._peek() not in _IDENT_START:
            raise LexerError("malformed variable name", line, column)
        while self._peek() in _IDENT_CONT:
            self._advance()
        return Token(
            TokenKind.VARIABLE, self._text[start : self._pos], line, column
        )


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return its tokens (EOF-terminated)."""
    return Lexer(text).tokenize()


# ----------------------------------------------------------------------
# Statement fingerprint (parse fast path)

#: Placeholder / tag bytes used inside fingerprint keys.  They can never
#: collide with statement content because :func:`fingerprint_statement`
#: bails out on any non-whitespace control character in the input.
_FP_NUMBER = "\x03"
_FP_STRING = "\x04"
_FP_IDENT = "\x02"
_FP_VARIABLE = "\x05"
_FP_SEP = "\x1f"

#: Non-whitespace control characters.  \t\n\v\f\r (0x09-0x0d) are legal
#: whitespace; everything else below 0x20 would threaten the injectivity
#: of the join-based key, so the scanner refuses such statements.
_FP_UNSAFE = re.compile("[\x00-\x08\x0e-\x1f]")

#: One alternative per lexeme class, mirroring the hand-written lexer
#: exactly.  Order matters: words before numbers (`` abc1``), numbers
#: before DOT (``.5``), comments before operators (``--``, ``/*``).
_FP_TOKEN = re.compile(
    r"""
      (?P<ws>[ \t\r\n\f\v]+)
    | (?P<lc>--[^\n]*)
    | (?P<bc>/\*.*?\*/)
    | (?P<word>[A-Za-z_\#][A-Za-z0-9_\#\$]*)
    | (?P<num>(?:[0-9]+(?:\.(?!\.)[0-9]*)?|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)
    | (?P<str>'(?:[^']|'')*')
    | (?P<bracket>\[[^\]]*\])
    | (?P<dquote>"[^"]*")
    | (?P<var>@@?[A-Za-z_\#][A-Za-z0-9_\#\$]*)
    | (?P<op><>|!=|<=|>=|\|\||[=<>+\-*/%])
    | (?P<punct>[,.();])
    """,
    re.VERBOSE | re.DOTALL,
)

#: Keywords that *end* an operand, so a following ``-`` is binary
#: subtraction; after any other keyword a ``-`` starts a negative number.
_OPERAND_END_KEYWORDS = frozenset({"NULL", "END"})


class StatementFingerprint(NamedTuple):
    """The raw-statement fingerprint captured by one scanner pass.

    :param key: canonical token-stream key — whitespace/comments dropped,
        keyword case folded, literals replaced by typed placeholders.
        Identifiers and variables are kept verbatim (their case survives
        into formatted output, so folding them would break byte-identical
        clean logs), and delimited identifiers additionally keep their
        opening delimiter so ``[objid]``, ``"objid"`` and ``objid`` can
        never share a key.
    :param constants: the literal vector, in token order, as
        ``(kind, value)`` pairs with ``kind`` in ``{'number', 'string'}``
        and ``value`` exactly what the parser's :class:`Literal` would
        carry (numbers keep source text, a folded unary minus included;
        strings are unquoted with ``''`` collapsed).
    :param spans: the ``(start, end)`` source position of each literal
        token, parallel to ``constants``.  A folded unary minus is *not*
        part of its number's span — the span is the literal token alone,
        which lets the cache's raw-template memo prove positionally that
        a cheap regex strip extracted exactly the scanner's literals.
    """

    key: str
    constants: Tuple[Tuple[str, str], ...]
    spans: Tuple[Tuple[int, int], ...] = ()


def fingerprint_statement(text: str) -> Optional[StatementFingerprint]:
    """Fingerprint ``text`` in one pass, or return ``None`` to punt.

    ``None`` means "take the full parse path": the input contains
    something the scanner cannot prove it mirrors the lexer on
    (unexpected characters, unterminated comments/strings, malformed
    numbers, non-whitespace control characters).  Never raises.
    """
    if _FP_UNSAFE.search(text):
        return None
    parts: List[str] = []
    constants: List[Tuple[str, str]] = []
    spans: List[Tuple[int, int]] = []
    append = parts.append
    add_constant = constants.append
    add_span = spans.append
    match = _FP_TOKEN.match
    keyword_cases = _KEYWORD_CASES
    pos = 0
    length = len(text)
    # ``-`` in operand position is held back: if a number follows it is
    # folded into the constant (mirroring the parser, which folds unary
    # minus into the Literal), otherwise it is emitted as an operator.
    pending_minus = False
    # True when the *next* token sits in operand position, i.e. a ``-``
    # here would be unary.  Any disagreement with the parser is caught
    # by the cache's build-time literal check and falls back per key.
    unary_next = True
    while pos < length:
        m = match(text, pos)
        if m is None:
            return None  # character the lexer would reject
        group = m.lastgroup
        end = m.end()
        if group == "ws" or group == "lc" or group == "bc":
            pos = end
            continue
        token_text = m.group()
        if group == "num":
            if end < length and text[end] in _IDENT_START:
                return None  # `1abc` — malformed literal in the lexer
            if pending_minus:
                add_constant(("number", "-" + token_text))
                pending_minus = False
            else:
                add_constant(("number", token_text))
            add_span((m.start(), end))
            append(_FP_NUMBER)
            unary_next = False
        elif group == "word":
            if pending_minus:
                append("-")
                pending_minus = False
            keyword = keyword_cases.get(token_text)
            if keyword is None:
                upper = token_text.upper()
                keyword = upper if upper in KEYWORDS else None
            if keyword is not None:
                append(keyword)
                unary_next = keyword not in _OPERAND_END_KEYWORDS
            else:
                append(_FP_IDENT + token_text)
                unary_next = False
        elif group == "op":
            if token_text == "/" and text.startswith("/*", m.start()):
                return None  # unterminated block comment
            if pending_minus:
                append("-")
                pending_minus = False
            if token_text == "-" and unary_next:
                pending_minus = True
            else:
                append(token_text)
                unary_next = True
        elif group == "punct":
            if pending_minus:
                append("-")
                pending_minus = False
            append(token_text)
            unary_next = token_text == "(" or token_text == ","
        elif group == "str":
            if pending_minus:
                append("-")
                pending_minus = False
            add_constant(("string", token_text[1:-1].replace("''", "'")))
            add_span((m.start(), end))
            append(_FP_STRING)
            unary_next = False
        elif group == "var":
            if pending_minus:
                append("-")
                pending_minus = False
            append(_FP_VARIABLE + token_text[1:])
            unary_next = False
        else:  # bracket / dquote identifiers — same token as a bare word
            if pending_minus:
                append("-")
                pending_minus = False
            # The delimiter kind is part of the key: ``[objid]``,
            # ``"objid"`` and ``objid`` parse to the same AST today, but
            # folding them onto one key would splice one form's text
            # against another form's prototype.  Keeping the opening
            # delimiter is injective — a bare word can never start with
            # ``[`` or ``"``, so the three forms occupy disjoint keys.
            append(_FP_IDENT + token_text[0] + token_text[1:-1])
            unary_next = False
        pos = end
    if pending_minus:
        append("-")
    return StatementFingerprint(
        _FP_SEP.join(parts), tuple(constants), tuple(spans)
    )
