"""Compatibility façade over the production tokenizer.

Through parse engines v1–v3 this module held the hand-written
per-character ``Lexer``.  Since v3 the production tokenizer lives in
:mod:`repro.sqlparser.scanner` — a single table-driven pass that emits
tokens *and* the statement fingerprint together — and the per-character
loop survived one further release behind ``REPRO_LEGACY_LEXER=1``.
Parse engine v4 removed it: setting the variable now warns that the
legacy path is gone and proceeds with the scanner.  The reference
implementation itself lives on, verbatim, as the differential-fuzz
fixture ``tests/property/pinned_lexer.py``.

What remains here is the module's stable import surface:
:func:`tokenize` and the fingerprint names
(:class:`StatementFingerprint`, :func:`fingerprint_statement`, the
``_FP_*`` alphabet) that long-standing callers import from this path.
"""

from __future__ import annotations

import os
import warnings
from typing import List

from .scanner import (  # noqa: F401  (compatibility re-exports)
    _FP_IDENT,
    _FP_NUMBER,
    _FP_SEP,
    _FP_STRING,
    _FP_UNSAFE,
    _FP_VARIABLE,
    _OPERAND_END_KEYWORDS,
    StatementFingerprint,
    fingerprint_statement,
)
from .scanner import tokenize as _scanner_tokenize
from .tokens import Token

#: Read once at import, mirroring the escape hatch's historical
#: semantics (flipping it mid-process was never supported).
_USE_LEGACY = os.environ.get("REPRO_LEGACY_LEXER") == "1"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return its tokens (EOF-terminated).

    Forwards to the one-pass table-driven scanner.  The
    ``REPRO_LEGACY_LEXER=1`` escape hatch was removed in parse engine
    v4; setting it warns and proceeds with the scanner, whose output
    the differential fuzz suite pins bit-for-bit against the retired
    per-character reference.
    """
    if _USE_LEGACY:
        warnings.warn(
            "REPRO_LEGACY_LEXER=1 is ignored: the per-character legacy "
            "lexer was removed in parse engine v4; proceeding with the "
            "scanner (its differential-fuzzed replacement)",
            DeprecationWarning,
            stacklevel=2,
        )
    return _scanner_tokenize(text)
