"""Hand-written lexer for the SkyServer SQL dialect.

The lexer turns a statement string into a list of :class:`Token` objects.
It understands:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping,
* numeric literals (integers, decimals, scientific notation, and numbers
  that start with a dot, e.g. ``.5``),
* regular identifiers, bracket-quoted identifiers (``[Full Name]``) and
  double-quoted identifiers (``"Full Name"``),
* T-SQL variables (``@ra``) — SkyServer templates are full of them,
* single- and multi-character operators.

Anything else raises :class:`~repro.sqlparser.errors.LexerError` with a
source position, which the pipeline records as a syntax error.
"""

from __future__ import annotations

from typing import List

from .errors import LexerError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_#"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_WHITESPACE = frozenset(" \t\r\n\f\v")


class Lexer:
    """Single-use tokenizer over one SQL statement string."""

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenKind.EOF, "", self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Character helpers

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (both styles)."""
        while self._pos < len(self._text):
            char = self._peek()
            if char in _WHITESPACE:
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._column
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError(
                        "unterminated block comment", start_line, start_col
                    )
            else:
                return

    # ------------------------------------------------------------------
    # Token producers

    def _next_token(self) -> Token:
        char = self._peek()
        line, column = self._line, self._column

        if char in _IDENT_START:
            return self._lex_word(line, column)
        if char in _DIGITS or (char == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if char == "'":
            return self._lex_string(line, column)
        if char == "[":
            return self._lex_bracket_identifier(line, column)
        if char == '"':
            return self._lex_quoted_identifier(line, column)
        if char == "@":
            return self._lex_variable(line, column)
        if char == ",":
            self._advance()
            return Token(TokenKind.COMMA, ",", line, column)
        if char == ".":
            self._advance()
            return Token(TokenKind.DOT, ".", line, column)
        if char == "(":
            self._advance()
            return Token(TokenKind.LPAREN, "(", line, column)
        if char == ")":
            self._advance()
            return Token(TokenKind.RPAREN, ")", line, column)
        if char == ";":
            self._advance()
            return Token(TokenKind.SEMICOLON, ";", line, column)

        for operator in MULTI_CHAR_OPERATORS:
            if self._text.startswith(operator, self._pos):
                self._advance(len(operator))
                return Token(TokenKind.OPERATOR, operator, line, column)
        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenKind.OPERATOR, char, line, column)

        raise LexerError(f"unexpected character {char!r}", line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, line, column)
        return Token(TokenKind.IDENTIFIER, word, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead) in _DIGITS:
                self._advance(lookahead)
                while self._peek() in _DIGITS:
                    self._advance()
        text = self._text[start : self._pos]
        # `1abc` is a malformed literal, not a number followed by an
        # identifier; reject it here for a clear error position.
        if self._peek() in _IDENT_START:
            raise LexerError(
                f"malformed numeric literal {text + self._peek()!r}",
                line,
                column,
            )
        return Token(TokenKind.NUMBER, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise LexerError("unterminated string literal", line, column)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    pieces.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenKind.STRING, "".join(pieces), line, column)
            pieces.append(char)
            self._advance()

    def _lex_bracket_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening bracket
        start = self._pos
        while self._pos < len(self._text) and self._peek() != "]":
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError("unterminated [identifier]", line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing bracket
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self._pos
        while self._pos < len(self._text) and self._peek() != '"':
            self._advance()
        if self._pos >= len(self._text):
            raise LexerError('unterminated "identifier"', line, column)
        name = self._text[start : self._pos]
        self._advance()  # closing quote
        return Token(TokenKind.IDENTIFIER, name, line, column)

    def _lex_variable(self, line: int, column: int) -> Token:
        self._advance()  # the @ sign
        start = self._pos
        if self._peek() == "@":  # @@rowcount style system variables
            self._advance()
        if self._peek() not in _IDENT_START:
            raise LexerError("malformed variable name", line, column)
        while self._peek() in _IDENT_CONT:
            self._advance()
        return Token(
            TokenKind.VARIABLE, self._text[start : self._pos], line, column
        )


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` and return its tokens (EOF-terminated)."""
    return Lexer(text).tokenize()
