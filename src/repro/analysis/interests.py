"""User-interest hotspots: giving meaning to clusters (Section 6, goal 2).

The whole point of cleaning the log is that downstream interest analysis
becomes interpretable: the paper's experts confirmed that post-clean
clusters "refer to certain locations in the sky".  This module performs
that last step mechanically for the synthetic sky:

* each cluster's representative region is inspected for spatial
  constraints — either the ``_fn_ra``/``_fn_dec`` pseudo-columns the
  region extractor derives from ``fGetNearbyObjEq``-style calls, or
  direct ``ra``/``dec`` range predicates;
* spatial clusters are aggregated on a coarse sky grid into
  :class:`Hotspot` rows ranked by query count;
* :func:`match_hotspots` scores recovered hotspots against known centers
  (the workload's planted ``SKY_CLUSTERS``) — the reproduction's stand-in
  for the experts' "yes, these are meaningful sky locations".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .clustering import ClusteringResult
from .dataspace import Interval, Region

#: Column names that localise a query on the sky, with their kind.
_RA_COLUMNS = ("_fn_ra", "ra")
_DEC_COLUMNS = ("_fn_dec", "dec")


def _center_of(interval: Interval) -> Optional[float]:
    if interval.is_unbounded():
        return None
    return (interval.low + interval.high) / 2.0


def spatial_center(region: Region) -> Optional[Tuple[float, float]]:
    """(ra, dec) the region points at, or None for non-spatial regions."""
    numeric = region.numeric_map()
    points = region.points_map()

    def resolve(columns) -> Optional[float]:
        for column in columns:
            if column in numeric:
                center = _center_of(numeric[column])
                if center is not None:
                    return center
            if column in points and points[column]:
                values = sorted(points[column])
                return values[len(values) // 2]
        return None

    ra = resolve(_RA_COLUMNS)
    dec = resolve(_DEC_COLUMNS)
    if ra is None or dec is None:
        return None
    return (ra % 360.0, max(-90.0, min(90.0, dec)))


@dataclass
class Hotspot:
    """One aggregated sky region of user interest."""

    ra: float
    dec: float
    query_count: int = 0
    cluster_count: int = 0


def extract_hotspots(
    clustering: ClusteringResult, *, grid_degrees: float = 4.0
) -> List[Hotspot]:
    """Aggregate a clustering's spatial clusters into ranked hotspots.

    :param grid_degrees: aggregation cell size; nearby clusters (several
        searches of the same area with slightly different parameters)
        merge into one hotspot.
    """
    if grid_degrees <= 0:
        raise ValueError(f"grid_degrees must be > 0, got {grid_degrees}")
    cells: Dict[Tuple[int, int], Hotspot] = {}
    for cluster in clustering.clusters:
        center = spatial_center(cluster.representative_region)
        if center is None:
            continue
        ra, dec = center
        key = (int(ra // grid_degrees), int((dec + 90.0) // grid_degrees))
        spot = cells.get(key)
        if spot is None:
            spot = Hotspot(ra=0.0, dec=0.0)
            cells[key] = spot
        # running weighted centroid
        total = spot.query_count + cluster.size
        spot.ra = (spot.ra * spot.query_count + ra * cluster.size) / total
        spot.dec = (spot.dec * spot.query_count + dec * cluster.size) / total
        spot.query_count = total
        spot.cluster_count += 1
    ranked = sorted(cells.values(), key=lambda spot: -spot.query_count)
    return ranked


def _sky_distance_deg(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    d_ra = min(abs(a[0] - b[0]), 360.0 - abs(a[0] - b[0]))
    return math.hypot(d_ra, a[1] - b[1])


@dataclass
class HotspotMatch:
    """How well recovered hotspots cover a set of known centers."""

    recovered: int
    total: int
    matches: List[Tuple[Tuple[float, float], Optional[Hotspot]]] = field(
        default_factory=list
    )

    @property
    def recall(self) -> float:
        return self.recovered / self.total if self.total else 0.0


def match_hotspots(
    hotspots: Sequence[Hotspot],
    centers: Sequence[Tuple[float, float]],
    *,
    tolerance_degrees: float = 5.0,
    top: Optional[int] = None,
) -> HotspotMatch:
    """Match known sky centers against (the ``top``) recovered hotspots."""
    pool = list(hotspots[:top] if top is not None else hotspots)
    matches: List[Tuple[Tuple[float, float], Optional[Hotspot]]] = []
    recovered = 0
    for center in centers:
        best: Optional[Hotspot] = None
        best_distance = tolerance_degrees
        for spot in pool:
            distance = _sky_distance_deg(center, (spot.ra, spot.dec))
            if distance <= best_distance:
                best, best_distance = spot, distance
        matches.append((tuple(center), best))
        if best is not None:
            recovered += 1
    return HotspotMatch(recovered=recovered, total=len(centers), matches=matches)
