"""Overlap measure between query regions (the distance of [1]).

``overlap(r1, r2) ∈ [0, 1]``: 1 for identical regions, 0 for regions that
cannot touch the same data.  The paper observes the measure "very often
yields 0 (identical) and 1 (no overlap)" as a *distance*; we compute the
overlap and let callers use ``1 - overlap`` as distance.

Composition:

* table factor — Jaccard of the table sets; 0 table overlap ⇒ 0.
* per shared constrained column — overlap *coefficient* of the intervals
  (``|∩| / min(|a|, |b|)``, with point intervals counting as fully covered
  when inside): identical constraints → 1, disjoint → 0, nested → 1.
* a column constrained by only one query contributes
  ``UNSHARED_DIM_FACTOR`` (default 0): filtering by an attribute the other
  query ignores expresses a *different information need*, so the regions
  do not overlap.  This is what makes the measure yield "very often 0 and
  1", exactly as the paper observes for its distance (Section 6.9); pass
  a small positive ``unshared_factor`` to soften it.

The factors multiply, so the measure is 1 iff every component agrees and
0 as soon as any component rules out common data.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet

from .dataspace import Interval, Region

#: Default factor for a dimension constrained by only one of the queries.
UNSHARED_DIM_FACTOR = 0.0


def interval_overlap(a: Interval, b: Interval) -> float:
    """Overlap coefficient of two intervals, in [0, 1]."""
    intersection = a.intersect(b)
    if intersection is None:
        return 0.0
    lengths = sorted((a.length(), b.length()))
    shortest = lengths[0]
    if shortest == 0.0:
        return 1.0  # a point inside the other interval: fully covered
    if math.isinf(shortest):
        return 1.0 if math.isinf(intersection.length()) else 0.0
    return min(1.0, intersection.length() / shortest)


def set_overlap(a: FrozenSet, b: FrozenSet) -> float:
    """Jaccard overlap of two value sets.

    Jaccard (not the overlap coefficient) on purpose: a query fetching one
    object and a query fetching fifty that happen to include it express
    different information needs — their spaces overlap only fractionally.
    This keeps, e.g., a DW-Stifle rewrite's big IN-list from absorbing
    every single-object lookup into one cluster.
    """
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / len(a | b)


def points_in_interval(points: FrozenSet[float], interval: Interval) -> float:
    """Fraction of a point set covered by an interval."""
    if not points:
        return 0.0
    covered = sum(1 for p in points if interval.low <= p <= interval.high)
    return covered / len(points)


def region_overlap(
    first: Region, second: Region, unshared_factor: float = UNSHARED_DIM_FACTOR
) -> float:
    """The overlap measure of two query regions (see module docstring)."""
    if first.key() == second.key():
        return 1.0
    union_tables = first.tables | second.tables
    if not union_tables:
        return 0.0
    shared_tables = first.tables & second.tables
    if not shared_tables:
        return 0.0
    result = len(shared_tables) / len(union_tables)

    numeric_a, numeric_b = first.numeric_map(), second.numeric_map()
    points_a, points_b = first.points_map(), second.points_map()
    columns = set(numeric_a) | set(numeric_b) | set(points_a) | set(points_b)
    for column in columns:
        range_a, range_b = numeric_a.get(column), numeric_b.get(column)
        pts_a, pts_b = points_a.get(column), points_b.get(column)
        if pts_a is not None and pts_b is not None:
            factor = set_overlap(pts_a, pts_b)
        elif range_a is not None and range_b is not None:
            factor = interval_overlap(range_a, range_b)
        elif pts_a is not None and range_b is not None:
            factor = points_in_interval(pts_a, range_b)
        elif pts_b is not None and range_a is not None:
            factor = points_in_interval(pts_b, range_a)
        else:
            factor = unshared_factor
        if factor == 0.0:
            return 0.0
        result *= factor

    cat_a, cat_b = first.categorical_map(), second.categorical_map()
    for column in set(cat_a) | set(cat_b):
        in_a, in_b = column in cat_a, column in cat_b
        if in_a and in_b:
            factor = set_overlap(cat_a[column], cat_b[column])
        else:
            factor = unshared_factor
        if factor == 0.0:
            return 0.0
        result *= factor

    return result


def region_distance(
    first: Region, second: Region, unshared_factor: float = UNSHARED_DIM_FACTOR
) -> float:
    """The clustering distance: ``1 - overlap``."""
    return 1.0 - region_overlap(first, second, unshared_factor)
