"""Downstream log analysis: data-space overlap clustering (Section 6.9)."""

from .clustering import Cluster, ClusteringResult, cluster_queries
from .behavior import (
    BehaviorConfig,
    ClassificationScore,
    UserActivity,
    UserVerdict,
    classify_users,
    extract_activity,
    score_classification,
)
from .dataspace import Interval, Region, extract_region
from .experiment import (
    DownstreamReport,
    VariantSeries,
    ds_cluster_sizes,
    run_downstream_experiment,
    variant_queries,
)
from .interests import (
    Hotspot,
    HotspotMatch,
    extract_hotspots,
    match_hotspots,
    spatial_center,
)
from .traffic import SessionStats, TrafficReport, traffic_report
from .overlap import (
    interval_overlap,
    points_in_interval,
    region_distance,
    region_overlap,
    set_overlap,
)

__all__ = [
    "BehaviorConfig",
    "ClassificationScore",
    "UserActivity",
    "UserVerdict",
    "classify_users",
    "extract_activity",
    "score_classification",
    "Cluster",
    "ClusteringResult",
    "cluster_queries",
    "Interval",
    "Region",
    "extract_region",
    "DownstreamReport",
    "VariantSeries",
    "ds_cluster_sizes",
    "run_downstream_experiment",
    "variant_queries",
    "SessionStats",
    "TrafficReport",
    "traffic_report",
    "Hotspot",
    "HotspotMatch",
    "extract_hotspots",
    "match_hotspots",
    "spatial_center",
    "interval_overlap",
    "points_in_interval",
    "region_distance",
    "region_overlap",
    "set_overlap",
]
