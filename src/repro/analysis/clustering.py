"""Threshold clustering of queries by data-space overlap (Section 6.9).

"Queries with a distance smaller than a threshold go to the same cluster"
— i.e. single-linkage connected components of the graph whose edges are
query pairs with ``distance < threshold``.  We implement it with

* **region deduplication** — queries with identical regions are always
  co-clustered (distance 0), so the quadratic pass runs over *unique*
  regions with multiplicities, and
* **table-set bucketing** — regions sharing no table have overlap 0 and
  never connect, so only pairs sharing at least one table are compared,

then a union–find merge.  Worst case stays O(n²) in unique regions, as the
paper notes for the original procedure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..patterns.models import ParsedQuery
from .dataspace import Region, extract_region
from .overlap import region_overlap


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:  # path compression
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.rank[root_a] < self.rank[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        if self.rank[root_a] == self.rank[root_b]:
            self.rank[root_a] += 1


@dataclass
class Cluster:
    """One query cluster."""

    members: List[int]  # indices into the input query sequence
    representative_region: Region

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class ClusteringResult:
    """Outcome of one clustering run."""

    clusters: List[Cluster]
    threshold: float
    runtime_seconds: float
    query_count: int
    unique_regions: int

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    @property
    def average_size(self) -> float:
        if not self.clusters:
            return 0.0
        return self.query_count / len(self.clusters)

    def sizes_ranked(self) -> List[int]:
        """Cluster sizes, largest first (Fig. 4's size-vs-rank series)."""
        return sorted((cluster.size for cluster in self.clusters), reverse=True)


def cluster_queries(
    queries: Sequence[ParsedQuery], threshold: float
) -> ClusteringResult:
    """Cluster ``queries`` with distance threshold ``threshold``.

    :param threshold: queries at distance < threshold (overlap >
        1 - threshold) join the same cluster.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    started = time.perf_counter()

    regions = [extract_region(query) for query in queries]
    unique: Dict[Tuple, int] = {}
    unique_regions: List[Region] = []
    members: List[List[int]] = []
    for index, region in enumerate(regions):
        key = region.key()
        slot = unique.get(key)
        if slot is None:
            slot = len(unique_regions)
            unique[key] = slot
            unique_regions.append(region)
            members.append([])
        members[slot].append(index)

    union_find = _UnionFind(len(unique_regions))
    min_overlap = 1.0 - threshold

    buckets: Dict[str, List[int]] = {}
    for slot, region in enumerate(unique_regions):
        for table in region.tables:
            buckets.setdefault(table, []).append(slot)

    for bucket in buckets.values():
        for i in range(len(bucket)):
            slot_i = bucket[i]
            region_i = unique_regions[slot_i]
            for j in range(i + 1, len(bucket)):
                slot_j = bucket[j]
                if union_find.find(slot_i) == union_find.find(slot_j):
                    continue
                if region_overlap(region_i, unique_regions[slot_j]) > min_overlap:
                    union_find.union(slot_i, slot_j)

    grouped: Dict[int, List[int]] = {}
    for slot in range(len(unique_regions)):
        grouped.setdefault(union_find.find(slot), []).append(slot)

    clusters = [
        Cluster(
            members=[index for slot in slots for index in members[slot]],
            representative_region=unique_regions[slots[0]],
        )
        for slots in grouped.values()
    ]
    clusters.sort(key=lambda cluster: -cluster.size)
    return ClusteringResult(
        clusters=clusters,
        threshold=threshold,
        runtime_seconds=time.perf_counter() - started,
        query_count=len(queries),
        unique_regions=len(unique_regions),
    )
