"""Traffic-report statistics — the related-work substrate.

The paper positions itself against the SkyServer traffic reports (Singh
et al. [9]; Raddick et al. [10], [11]), which characterise usage through
volume and session statistics.  This module computes that style of
report from any :class:`~repro.log.models.QueryLog`, giving the
reproduction the baseline the paper's Section 6.5 argues is insufficient
("their recommendations only consider the duration of user sessions, not
the shape of queries") and operators a familiar dashboard:

* daily query volumes,
* per-user volume distribution (with the usual heavy-tail summary),
* session statistics (count, length in queries, duration),
* top referenced tables.
"""

from __future__ import annotations

import datetime
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..log.models import QueryLog
from ..patterns.models import ParsedQuery
from ..skeleton.features import referenced_tables


def _day_of(timestamp: float) -> str:
    return datetime.datetime.fromtimestamp(
        timestamp, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d")


@dataclass
class SessionStats:
    """Summary over the log's sessions (as labelled in the records)."""

    count: int = 0
    median_queries: float = 0.0
    median_duration: float = 0.0
    max_queries: int = 0


@dataclass
class TrafficReport:
    """The computed report."""

    total_queries: int
    distinct_users: int
    days: List[Tuple[str, int]] = field(default_factory=list)
    top_users: List[Tuple[str, int]] = field(default_factory=list)
    top_tables: List[Tuple[str, int]] = field(default_factory=list)
    sessions: SessionStats = field(default_factory=SessionStats)

    @property
    def busiest_day(self) -> Optional[Tuple[str, int]]:
        if not self.days:
            return None
        return max(self.days, key=lambda pair: pair[1])

    def top_user_share(self, count: int = 10) -> float:
        """Share of the traffic produced by the ``count`` heaviest users —
        the heavy-tail headline every SkyServer report leads with."""
        if not self.total_queries:
            return 0.0
        heaviest = sum(volume for _, volume in self.top_users[:count])
        return heaviest / self.total_queries


def traffic_report(
    log: QueryLog,
    parsed: Optional[Sequence[ParsedQuery]] = None,
    *,
    top: int = 20,
) -> TrafficReport:
    """Compute a traffic report.

    :param parsed: parsed queries of the log (for the table census);
        omit to skip table statistics.
    """
    by_day: Dict[str, int] = {}
    by_user: Dict[str, int] = {}
    by_session: Dict[str, List[float]] = {}
    for record in log:
        by_day[_day_of(record.timestamp)] = by_day.get(_day_of(record.timestamp), 0) + 1
        user = record.user_key()
        by_user[user] = by_user.get(user, 0) + 1
        if record.session:
            by_session.setdefault(record.session, []).append(record.timestamp)

    table_counts: Dict[str, int] = {}
    if parsed is not None:
        for query in parsed:
            for table in referenced_tables(query.select):
                table_counts[table] = table_counts.get(table, 0) + 1

    sessions = SessionStats()
    if by_session:
        lengths = [len(times) for times in by_session.values()]
        durations = [max(times) - min(times) for times in by_session.values()]
        sessions = SessionStats(
            count=len(by_session),
            median_queries=statistics.median(lengths),
            median_duration=statistics.median(durations),
            max_queries=max(lengths),
        )

    return TrafficReport(
        total_queries=len(log),
        distinct_users=len(by_user),
        days=sorted(by_day.items()),
        top_users=sorted(by_user.items(), key=lambda kv: -kv[1])[:top],
        top_tables=sorted(table_counts.items(), key=lambda kv: -kv[1])[:top],
        sessions=sessions,
    )
