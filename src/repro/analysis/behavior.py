"""Human-vs-bot classification of log users (Section 6.5's extension).

The paper: *"An extension taking SWS patterns into account could
distinguish humans and 'bots' with more accuracy"* — contrasting with the
SkyServer traffic reports [9], whose recommendations "only consider the
duration of user sessions, not the shape of queries".

This module implements both levels:

* **behavioural features** per user, computable from timestamps alone —
  median inter-query gap, query volume, template diversity (distinct
  templates / queries; robots replay few shapes), burst regularity;
* **shape features** from the cleaning run — the share of the user's
  queries inside detected antipattern instances and inside SWS-flagged
  patterns (machine downloads).

:func:`classify_users` scores each user with a transparent linear
point system; ``use_shape_features=False`` reproduces the duration-only
baseline so the benchmark can quantify the accuracy the paper predicted
the shape features add.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Set

from ..pipeline.framework import PipelineResult


@dataclass
class UserActivity:
    """Feature vector of one user's traffic."""

    user: str
    query_count: int
    distinct_templates: int
    median_gap: float
    antipattern_share: float
    sws_share: float

    @property
    def template_diversity(self) -> float:
        """Distinct templates per query — low for replaying robots."""
        if self.query_count == 0:
            return 1.0
        return self.distinct_templates / self.query_count


@dataclass
class UserVerdict:
    """Classification outcome of one user."""

    user: str
    is_bot: bool
    score: float
    activity: UserActivity


@dataclass(frozen=True)
class BehaviorConfig:
    """Thresholds of the point system; each satisfied criterion adds one
    point, ``bot_points`` points make a bot.

    :param fast_gap: median inter-query gap below this means machine-rate
        submission (seconds).
    :param min_volume: query volume above this is a heavy client.
    :param low_diversity: template diversity below this means shape
        replay.
    :param flagged_share: share of queries inside antipattern or SWS
        instances above this means machine behaviour.
    :param bot_points: points needed for the bot verdict.
    :param use_shape_features: include the antipattern/SWS criteria; off
        = the duration-only baseline of the traffic reports.
    """

    fast_gap: float = 5.0
    min_volume: int = 50
    low_diversity: float = 0.12
    flagged_share: float = 0.5
    bot_points: int = 2
    use_shape_features: bool = True


def extract_activity(result: PipelineResult) -> Dict[str, UserActivity]:
    """Compute per-user features from one pipeline run."""
    queries_by_user: Dict[str, List] = {}
    for query in result.parse_stage.queries:
        queries_by_user.setdefault(query.user, []).append(query)

    flagged_seqs: Set[int] = {
        seq
        for instance in result.antipatterns
        for seq in instance.record_seqs()
    }
    sws_units = (
        {template for stats in result.sws_report.patterns for template in stats.unit}
        if result.sws_report is not None
        else set()
    )

    activities: Dict[str, UserActivity] = {}
    for user, queries in queries_by_user.items():
        times = sorted(query.timestamp for query in queries)
        gaps = [b - a for a, b in zip(times, times[1:])]
        median_gap = statistics.median(gaps) if gaps else float("inf")
        flagged = sum(1 for q in queries if q.record.seq in flagged_seqs)
        sws = sum(1 for q in queries if q.template_id in sws_units)
        activities[user] = UserActivity(
            user=user,
            query_count=len(queries),
            distinct_templates=len({q.template_id for q in queries}),
            median_gap=median_gap,
            antipattern_share=flagged / len(queries),
            sws_share=sws / len(queries),
        )
    return activities


def score_user(activity: UserActivity, config: BehaviorConfig) -> float:
    """Bot points of one user (see :class:`BehaviorConfig`)."""
    points = 0.0
    if activity.median_gap < config.fast_gap:
        points += 1.0
    if activity.query_count >= config.min_volume:
        points += 1.0
    if activity.template_diversity <= config.low_diversity:
        points += 1.0
    if config.use_shape_features:
        if activity.antipattern_share >= config.flagged_share:
            points += 1.0
        if activity.sws_share >= config.flagged_share:
            points += 1.0
    return points


def classify_users(
    result: PipelineResult, config: BehaviorConfig = BehaviorConfig()
) -> Dict[str, UserVerdict]:
    """Classify every user of the run as bot or human."""
    verdicts: Dict[str, UserVerdict] = {}
    for user, activity in extract_activity(result).items():
        score = score_user(activity, config)
        verdicts[user] = UserVerdict(
            user=user,
            is_bot=score >= config.bot_points,
            score=score,
            activity=activity,
        )
    return verdicts


@dataclass
class ClassificationScore:
    """Accuracy of a verdict set against known user kinds."""

    correct: int
    total: int
    bot_recall: float
    human_recall: float

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


def score_classification(
    verdicts: Dict[str, UserVerdict], truth: Dict[str, bool]
) -> ClassificationScore:
    """Compare verdicts with a user → is_bot truth map (users absent from
    either side are ignored)."""
    correct = 0
    total = 0
    bot_hits = bot_total = 0
    human_hits = human_total = 0
    for user, is_bot in truth.items():
        verdict = verdicts.get(user)
        if verdict is None:
            continue
        total += 1
        if verdict.is_bot == is_bot:
            correct += 1
        if is_bot:
            bot_total += 1
            bot_hits += verdict.is_bot == is_bot
        else:
            human_total += 1
            human_hits += verdict.is_bot == is_bot
    return ClassificationScore(
        correct=correct,
        total=total,
        bot_recall=bot_hits / bot_total if bot_total else 0.0,
        human_recall=human_hits / human_total if human_total else 0.0,
    )
