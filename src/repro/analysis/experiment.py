"""The Section 6.9 downstream experiment: raw vs clean vs removal.

Reproduces the paper's combined study: take a query-log sample, produce
the three variants —

1. **raw** — the parsed log as is,
2. **clean** — antipatterns rewritten (our solver),
3. **removal** — antipattern queries dropped,

cluster each by data-space overlap for a range of thresholds, and report
cluster count, average size and runtime (Fig. 3), the size-vs-rank curves
(Fig. 4 a/b) and the DS-cluster shrinkage (Fig. 4 c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..antipatterns.types import DS_STIFLE
from ..log.models import QueryLog
from ..patterns.models import ParsedQuery
from ..pipeline.config import PipelineConfig
from ..pipeline.framework import CleaningPipeline, PipelineResult, parse_log
from .clustering import ClusteringResult, cluster_queries

VARIANTS = ("raw", "clean", "removal")


@dataclass
class VariantSeries:
    """Per-threshold clustering results of one log variant."""

    variant: str
    results: Dict[float, ClusteringResult] = field(default_factory=dict)

    def cluster_counts(self) -> List[Tuple[float, int]]:
        return [(t, r.cluster_count) for t, r in sorted(self.results.items())]

    def average_sizes(self) -> List[Tuple[float, float]]:
        return [(t, r.average_size) for t, r in sorted(self.results.items())]

    def runtimes(self) -> List[Tuple[float, float]]:
        return [(t, r.runtime_seconds) for t, r in sorted(self.results.items())]


@dataclass
class DownstreamReport:
    """Everything the Fig. 3 / Fig. 4 benches print."""

    series: Dict[str, VariantSeries]
    pipeline_result: PipelineResult
    variant_sizes: Dict[str, int]

    def result(self, variant: str, threshold: float) -> ClusteringResult:
        return self.series[variant].results[threshold]


def variant_queries(
    result: PipelineResult,
) -> Dict[str, List[ParsedQuery]]:
    """Parsed-query lists of the three variants of one pipeline run.

    The clean and removal variants are re-parsed from their logs, exactly
    as a downstream analyst would consume them.
    """
    config = result.config
    variants: Dict[str, List[ParsedQuery]] = {
        "raw": list(result.parse_stage.queries)
    }
    for name, log in (("clean", result.clean_log), ("removal", result.removal_log)):
        stage = parse_log(
            log,
            fold_variables=config.fold_variables,
            strict_triple=config.strict_triple,
        )
        variants[name] = stage.queries
    return variants


def run_downstream_experiment(
    log: QueryLog,
    thresholds: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    config: Optional[PipelineConfig] = None,
    variants: Sequence[str] = VARIANTS,
) -> DownstreamReport:
    """Run the full Section 6.9 experiment on ``log``."""
    result = CleaningPipeline(config).run(log)
    queries_by_variant = variant_queries(result)
    series: Dict[str, VariantSeries] = {}
    sizes: Dict[str, int] = {}
    for variant in variants:
        queries = queries_by_variant[variant]
        sizes[variant] = len(queries)
        variant_series = VariantSeries(variant=variant)
        for threshold in thresholds:
            variant_series.results[threshold] = cluster_queries(
                queries, threshold
            )
        series[variant] = variant_series
    return DownstreamReport(
        series=series, pipeline_result=result, variant_sizes=sizes
    )


def ds_cluster_sizes(
    report: DownstreamReport, threshold: float = 0.9, top: int = 20
) -> List[Tuple[int, Optional[int]]]:
    """Fig. 4(c): sizes of the biggest DS-clusters in clean vs raw.

    A *DS-cluster* is a cluster containing at least one statement of a
    detected DS-Stifle instance (in the raw log) or of its rewrite (in the
    clean log).  Returns (clean_size, raw_size) pairs ranked by the clean
    log's cluster size.
    """
    result = report.pipeline_result
    ds_seqs = {
        seq
        for instance in result.antipatterns
        if instance.label == DS_STIFLE
        for seq in instance.record_seqs()
    }
    ds_rewrite_seqs = {
        solved.replaced_seqs[0]
        for solved in result.solve_result.solved
        if solved.instance.label == DS_STIFLE
    }

    queries_by_variant = variant_queries(result)

    def flagged_sizes(variant: str, flagged: set) -> List[int]:
        queries = queries_by_variant[variant]
        clustering = report.result(variant, threshold)
        sizes = []
        for cluster in clustering.clusters:
            if any(queries[index].record.seq in flagged for index in cluster.members):
                sizes.append(cluster.size)
        return sorted(sizes, reverse=True)

    clean_sizes = flagged_sizes("clean", ds_rewrite_seqs)[:top]
    raw_sizes = flagged_sizes("raw", ds_seqs)[:top]
    pairs: List[Tuple[int, Optional[int]]] = []
    for rank in range(top):
        clean = clean_sizes[rank] if rank < len(clean_sizes) else None
        raw = raw_sizes[rank] if rank < len(raw_sizes) else None
        if clean is None and raw is None:
            break
        pairs.append((clean if clean is not None else 0, raw))
    return pairs
