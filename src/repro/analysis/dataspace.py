"""Data-space regions: which part of the database a query touches.

The downstream experiment the paper reproduces (Nguyen et al. [1],
Section 6.9) clusters queries by the *overlap of the data space accessed*.
We model a query's data space as a :class:`Region`:

* the set of base tables (and table-valued functions) it reads,
* per filtered column, a numeric *point set* (``=`` / ``IN`` with numeric
  constants — the exact values accessed) or a numeric *interval*
  (``<``, ``<=``, ``>``, ``>=``, ``BETWEEN``),
* per filtered column, a categorical value set (string equality / IN).

Point sets matter: ``objid = 5`` and ``objid IN (3, 9)`` access disjoint
data even though an interval hull would overlap — the distinction keeps
stifle lookups of different objects apart in the downstream clustering.

Only conjunctive top-level constraints are harvested: predicates under an
``OR`` or ``NOT`` widen the accessed space, so they are conservatively
ignored (the region stays wider, never narrower).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..patterns.models import ParsedQuery
from ..skeleton.features import referenced_tables
from ..sqlparser import ast_nodes as ast


@dataclass(frozen=True)
class Interval:
    """A closed numeric interval; infinities mark unbounded sides."""

    low: float = -math.inf
    high: float = math.inf

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty interval [{self.low}, {self.high}]")

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return Interval(low, high)

    def length(self) -> float:
        return self.high - self.low

    def is_unbounded(self) -> bool:
        return math.isinf(self.low) or math.isinf(self.high)


@dataclass(frozen=True)
class Region:
    """The data space one query accesses."""

    tables: FrozenSet[str]
    numeric: Tuple[Tuple[str, Interval], ...]
    points: Tuple[Tuple[str, FrozenSet[float]], ...] = ()
    categorical: Tuple[Tuple[str, FrozenSet[str]], ...] = ()

    def numeric_map(self) -> Dict[str, Interval]:
        return dict(self.numeric)

    def points_map(self) -> Dict[str, FrozenSet[float]]:
        return dict(self.points)

    def categorical_map(self) -> Dict[str, FrozenSet[str]]:
        return dict(self.categorical)

    def key(self) -> Tuple:
        """Hashable identity used to merge identical regions before the
        quadratic clustering pass."""
        return (self.tables, self.numeric, self.points, self.categorical)


def _numeric_value(expr: ast.Expression) -> Optional[float]:
    if isinstance(expr, ast.Literal) and expr.kind == "number":
        value = expr.python_value()
        return float(value)
    return None


def _string_value(expr: ast.Expression) -> Optional[str]:
    if isinstance(expr, ast.Literal) and expr.kind == "string":
        return expr.value.lower()
    return None


class _RegionBuilder:
    def __init__(self) -> None:
        self.numeric: Dict[str, Interval] = {}
        self.points: Dict[str, set] = {}
        self.categorical: Dict[str, set] = {}

    def constrain_numeric(self, column: str, low: float, high: float) -> None:
        interval = Interval(low, high)
        existing = self.numeric.get(column)
        if existing is not None:
            merged = existing.intersect(interval)
            # Contradictory constraints: keep the empty-ish tightest point
            # rather than failing; such queries return nothing anyway.
            interval = merged if merged is not None else Interval(low, low)
        self.numeric[column] = interval

    def constrain_points(self, column: str, values: set) -> None:
        existing = self.points.get(column)
        if existing is not None:
            intersection = existing & values
            values = intersection if intersection else values
        self.points[column] = set(values)

    def constrain_categorical(self, column: str, values: set) -> None:
        existing = self.categorical.get(column)
        if existing is not None:
            intersection = existing & values
            values = intersection if intersection else values
        self.categorical[column] = set(values)

    def reconcile(self) -> None:
        """A column with both a point set and an interval keeps the
        points that satisfy the interval (an AND of both predicates)."""
        for column in list(self.points):
            interval = self.numeric.pop(column, None)
            if interval is not None:
                filtered = {
                    value
                    for value in self.points[column]
                    if interval.low <= value <= interval.high
                }
                if filtered:
                    self.points[column] = filtered

    def visit(self, node: ast.Expression) -> None:
        if isinstance(node, ast.And):
            self.visit(node.left)
            self.visit(node.right)
            return
        if isinstance(node, (ast.Or, ast.Not)):
            return  # disjunctions widen the space; stay conservative
        if isinstance(node, ast.Comparison):
            self._visit_comparison(node)
            return
        if isinstance(node, ast.Between) and not node.negated:
            if isinstance(node.expr, ast.ColumnRef):
                low = _numeric_value(node.low)
                high = _numeric_value(node.high)
                if low is not None and high is not None and low <= high:
                    self.constrain_numeric(node.expr.name.lower(), low, high)
            return
        if isinstance(node, ast.InList) and not node.negated:
            if isinstance(node.expr, ast.ColumnRef):
                column = node.expr.name.lower()
                numbers = [_numeric_value(item) for item in node.items]
                strings = [_string_value(item) for item in node.items]
                if all(value is not None for value in numbers):
                    self.constrain_points(
                        column, {v for v in numbers if v is not None}
                    )
                elif all(value is not None for value in strings):
                    self.constrain_categorical(
                        column, {v for v in strings if v is not None}
                    )
            return

    def _visit_comparison(self, node: ast.Comparison) -> None:
        column: Optional[ast.ColumnRef] = None
        constant: Optional[ast.Expression] = None
        flipped = False
        if isinstance(node.left, ast.ColumnRef) and isinstance(
            node.right, ast.Literal
        ):
            column, constant = node.left, node.right
        elif isinstance(node.right, ast.ColumnRef) and isinstance(
            node.left, ast.Literal
        ):
            column, constant = node.right, node.left
            flipped = True
        if column is None or constant is None:
            return
        name = column.name.lower()
        op = node.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        number = _numeric_value(constant)
        if number is not None:
            if op == "=":
                self.constrain_points(name, {number})
            elif op in ("<", "<="):
                self.constrain_numeric(name, -math.inf, number)
            elif op in (">", ">="):
                self.constrain_numeric(name, number, math.inf)
            return
        string = _string_value(constant)
        if string is not None and op == "=":
            self.constrain_categorical(name, {string})


def extract_region(query: ParsedQuery) -> Region:
    """Compute the :class:`Region` of one parsed query."""
    builder = _RegionBuilder()
    select = query.select
    if select.where is not None:
        builder.visit(select.where)
    # Table-valued spatial functions constrain the sky region through their
    # arguments; expose them as pseudo-columns so two searches of the same
    # area overlap.
    for source in select.from_sources:
        _harvest_function_args(source, builder)
    builder.reconcile()
    return Region(
        tables=frozenset(referenced_tables(select)),
        numeric=tuple(sorted(builder.numeric.items())),
        points=tuple(
            sorted(
                (column, frozenset(values))
                for column, values in builder.points.items()
            )
        ),
        categorical=tuple(
            sorted(
                (column, frozenset(values))
                for column, values in builder.categorical.items()
            )
        ),
    )


_FUNCTION_ARG_COLUMNS = {
    "fgetnearbyobjeq": ("_fn_ra", "_fn_dec"),
    "fgetnearestobjeq": ("_fn_ra", "_fn_dec"),
    "fgetobjfromrect": ("_fn_ra", "_fn_dec", "_fn_ra2", "_fn_dec2"),
}


def _harvest_function_args(
    source: ast.TableSource, builder: _RegionBuilder
) -> None:
    if isinstance(source, ast.Join):
        _harvest_function_args(source.left, builder)
        _harvest_function_args(source.right, builder)
        return
    if not isinstance(source, ast.FunctionTable):
        return
    columns = _FUNCTION_ARG_COLUMNS.get(source.call.name.lower())
    if columns is None:
        return
    for column, arg in zip(columns, source.call.args):
        value = _numeric_value(arg)
        if value is not None:
            # Positions within ~1 degree count as "the same place": bucket
            # the coordinate so nearby searches overlap.
            builder.constrain_numeric(column, math.floor(value), math.floor(value) + 1)
