"""Report export: write a pipeline run's artifacts as CSV files.

The paper's evaluation consists of tables and figure series; this module
serialises the corresponding data of one :class:`PipelineResult` so that
downstream tooling (spreadsheets, plotting scripts) can consume it:

======================  =====================================================
file                    contents
======================  =====================================================
overview.csv            the Table 5 statistics (property, value)
patterns.csv            per-pattern census: rank, frequency, userPopularity,
                        distinct IPs, query coverage, antipattern labels,
                        first skeleton (Tables 6/7, Fig. 2(a,b))
antipatterns.csv        per-label census: distinct, instances, queries
cth_candidates.csv      ranked CTH candidates with the oracle verdict
                        (Fig. 2(d))
sws.csv                 SWS-flagged patterns, when the scan ran
solved.csv              one row per solved instance: label, replaced seqs,
                        replacement SQL
metrics.json            the run's observability ledger (per-stage counters,
                        antipatterns by label, wall times), when the run
                        carried one
quarantine.json         everything the run set aside (count, per-reason
                        breakdown, entries), when the run used the
                        ``quarantine`` error policy or quarantined anything
======================  =====================================================
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from .framework import PipelineResult

PathLike = Union[str, Path]


def _write_rows(path: Path, header: List[str], rows) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_report(result: PipelineResult, directory: PathLike) -> Dict[str, Path]:
    """Write all report files into ``directory`` (created if missing).

    Returns a name → path map of everything written.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    overview = result.overview()
    path = base / "overview.csv"
    _write_rows(path, ["property", "value"], overview.rows())
    written["overview"] = path

    log_size = len(result.parse_stage.parsed_log)
    path = base / "patterns.csv"
    _write_rows(
        path,
        [
            "rank",
            "frequency",
            "user_popularity",
            "distinct_ips",
            "query_count",
            "coverage",
            "antipattern_labels",
            "first_skeleton",
        ],
        [
            (
                rank,
                stats.frequency,
                stats.user_popularity,
                stats.distinct_ips,
                stats.query_count,
                f"{stats.coverage(log_size):.6f}",
                "/".join(sorted(stats.antipattern_types)),
                stats.skeletons[0],
            )
            for rank, stats in enumerate(result.registry.ranked(), start=1)
        ],
    )
    written["patterns"] = path

    path = base / "antipatterns.csv"
    census = result.overview().antipatterns
    _write_rows(
        path,
        ["label", "distinct_patterns", "instances", "queries"],
        [
            (label, row.distinct, row.instances, row.queries)
            for label, row in sorted(census.items())
        ],
    )
    written["antipatterns"] = path

    path = base / "cth_candidates.csv"
    _write_rows(
        path,
        [
            "rank",
            "frequency",
            "user_popularity",
            "oracle_real",
            "first_skeleton",
            "followup_skeleton",
        ],
        [
            (
                rank,
                row.frequency,
                row.user_popularity,
                int(row.oracle_real),
                row.first_skeleton,
                row.followup_skeleton,
            )
            for rank, row in enumerate(result.cth_candidates(), start=1)
        ],
    )
    written["cth_candidates"] = path

    if result.sws_report is not None:
        path = base / "sws.csv"
        _write_rows(
            path,
            ["frequency", "user_popularity", "query_count", "first_skeleton"],
            [
                (
                    stats.frequency,
                    stats.user_popularity,
                    stats.query_count,
                    stats.skeletons[0],
                )
                for stats in result.sws_report.patterns
            ],
        )
        written["sws"] = path

    path = base / "solved.csv"
    _write_rows(
        path,
        ["label", "replaced_seqs", "replacement_sql"],
        [
            (
                solved.instance.label,
                " ".join(str(seq) for seq in solved.replaced_seqs),
                solved.replacement_sql,
            )
            for solved in result.solve_result.solved
        ],
    )
    written["solved"] = path

    if result.metrics is not None:
        path = base / "metrics.json"
        path.write_text(
            json.dumps(result.metrics.as_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
        written["metrics"] = path

    if result.config.error_policy == "quarantine" or result.quarantine:
        path = base / "quarantine.json"
        payload = {"error_policy": result.config.error_policy}
        payload.update(result.quarantine.as_dict())
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        written["quarantine"] = path
    return written
