"""Parallel sharded cleaning executor.

Dedup (keyed by user + statement), blocking, detection and solving are
all confined to a single user's timeline — a query log is embarrassingly
parallel *by user*.  The :class:`ParallelCleaner` exploits that:

1. **Shard** — records are hash-sharded by ``user_key()`` (a stable
   CRC-32, so shard assignment is identical across processes and runs)
   into tasks of roughly ``execution.chunk_size`` records; a user's
   whole timeline always lands in exactly one task.
2. **Fan out** — each task goes to a ``multiprocessing`` worker that
   runs the batch pipeline's own stage functions
   (:func:`~repro.pipeline.framework.dedup_stage` →
   :func:`~repro.pipeline.framework.parse_stage` →
   :func:`~repro.pipeline.framework.mine_stage` →
   :func:`~repro.pipeline.framework.detect_stage` →
   :func:`~repro.pipeline.framework.solve_stage`) over its shard, with
   its own per-distinct-statement parse cache, and times every stage.
3. **Merge** — clean records from all shards are re-merged into global
   (timestamp, seq) order; per-worker counters and stage timings are
   folded into one :class:`ParallelStats` report.

Because every stage a worker runs is user-local, the merged clean log is
record-for-record identical to the batch pipeline's.  Global artifacts
(pattern registry, SWS, Table-5 overview) need the whole log and are out
of scope here, exactly as in the streaming path.
"""

from __future__ import annotations

import multiprocessing
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..log.models import LogRecord, QueryLog
from ..obs import PipelineMetrics, Recorder
from .config import PipelineConfig
from .framework import (
    dedup_stage,
    detect_stage,
    mine_stage,
    parse_stage,
    solve_stage,
)
from .streaming import StreamingStats

#: Stage names in execution order (the keys of a timings report).
STAGES = ("dedup", "parse", "mine", "detect", "solve", "merge")


@dataclass
class StageTimings:
    """Wall-clock seconds spent per pipeline stage.

    Since the observability layer landed this is a *view* over a
    :class:`~repro.obs.PipelineMetrics` ledger (see
    :meth:`from_metrics`), kept as a stable dataclass for report
    consumers.  Worker-side timings fill the five processing stages; the
    parent fills ``merge`` (global re-ordering of the emitted records).
    Summed across workers the numbers are *aggregate* compute seconds —
    on N busy cores they exceed the run's wall time by up to a factor N.
    """

    dedup: float = 0.0
    parse: float = 0.0
    mine: float = 0.0
    detect: float = 0.0
    solve: float = 0.0
    merge: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: PipelineMetrics) -> "StageTimings":
        """Project a metrics ledger onto the six classic stage slots."""
        timings = cls()
        for name in STAGES:
            stage = metrics.stages.get(name)
            if stage is not None:
                setattr(timings, name, stage.wall_seconds)
        return timings

    def add(self, other: "StageTimings") -> None:
        self.dedup += other.dedup
        self.parse += other.parse
        self.mine += other.mine
        self.detect += other.detect
        self.solve += other.solve
        self.merge += other.merge

    @property
    def total(self) -> float:
        return (
            self.dedup + self.parse + self.mine
            + self.detect + self.solve + self.merge
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in STAGES}


@dataclass
class ShardReport:
    """One worker task's outcome (also the worker's return value)."""

    shard: int
    records_in: int
    records_out: int
    clean_records: List[LogRecord]
    stats: StreamingStats
    timings: StageTimings
    wall_seconds: float
    #: the worker's full observability ledger (plain data — pickles).
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)


@dataclass
class ParallelStats:
    """Merged report of one parallel run.

    :param workers: worker processes used.
    :param shard_count: tasks the log was sharded into (≥ workers when
        the log is big enough; a task never splits a user).
    :param stats: all shards' counters folded into one
        :class:`~repro.pipeline.streaming.StreamingStats`.
    :param timings: per-stage wall clock summed across shards, plus the
        parent-side merge (a view over ``metrics``).
    :param wall_seconds: end-to-end wall time of the run.
    :param shards: the per-shard reports (clean records dropped).
    :param metrics: the run's merged observability ledger (all shards'
        counters and stage times folded together, plus the merge stage).
    """

    workers: int
    shard_count: int
    stats: StreamingStats = field(default_factory=StreamingStats)
    timings: StageTimings = field(default_factory=StageTimings)
    wall_seconds: float = 0.0
    shards: List[ShardReport] = field(default_factory=list)
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)

    @property
    def records_in(self) -> int:
        return self.stats.records_in

    @property
    def records_out(self) -> int:
        return self.stats.records_out

    @property
    def throughput(self) -> float:
        """Input records cleaned per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.records_in / self.wall_seconds


def shard_index(user_key: str, shard_count: int) -> int:
    """Stable shard assignment for one user key.

    CRC-32 rather than :func:`hash`: Python's string hash is randomised
    per process, and shard assignment must agree across workers, runs
    and machines.
    """
    return zlib.crc32(user_key.encode("utf-8")) % shard_count


def shard_records(
    log: QueryLog, workers: int, chunk_size: int
) -> List[List[LogRecord]]:
    """Split ``log`` into per-task record lists, never splitting a user.

    Records are first hashed into fine-grained buckets (several per
    worker, so one heavy user cannot serialise the whole run), then the
    buckets are packed in index order into tasks of at most
    ``chunk_size`` records — except that a single bucket larger than the
    chunk size stays one task, because a user's timeline is indivisible.
    """
    bucket_count = max(32, workers * 8)
    buckets: Dict[int, List[LogRecord]] = {}
    for record in log:
        index = shard_index(record.user_key(), bucket_count)
        buckets.setdefault(index, []).append(record)

    shards: List[List[LogRecord]] = []
    current: List[LogRecord] = []
    for index in sorted(buckets):
        records = buckets[index]
        if current and len(current) + len(records) > chunk_size:
            shards.append(current)
            current = []
        current.extend(records)
    if current:
        shards.append(current)
    return shards


def _clean_shard(
    payload: Tuple[int, Sequence[LogRecord], PipelineConfig]
) -> ShardReport:
    """Worker body: run the batch stage functions over one shard.

    Module-level (not a closure) so it pickles under every
    ``multiprocessing`` start method; each worker process gets its own
    parse cache by construction, because :func:`parse_stage` builds one
    per call.
    """
    shard, records, config = payload
    started = time.perf_counter()
    shard_log = QueryLog(records)
    recorder = Recorder()

    dedup = dedup_stage(shard_log, config, recorder)
    parsed = parse_stage(dedup.log, config, recorder)
    mining = mine_stage(parsed.queries, config, recorder)
    antipatterns = detect_stage(mining.blocks, config, recorder)
    solve_result = solve_stage(parsed.parsed_log, antipatterns, recorder)
    timings = StageTimings.from_metrics(recorder.metrics)

    clean_records = solve_result.log.records()
    stats = StreamingStats(
        records_in=len(records),
        records_out=len(clean_records),
        duplicates_removed=dedup.removed,
        syntax_errors=len(parsed.syntax_errors),
        non_select=len(parsed.non_select),
        blocks_closed=len(mining.blocks),
        blocks_force_closed=0,  # workers hold whole blocks; no size bound
        instances_detected=len(antipatterns),
        instances_solved=len(solve_result.solved),
        max_open_queries=len(parsed.queries),  # the shard is resident at once
    )
    return ShardReport(
        shard=shard,
        records_in=len(records),
        records_out=len(clean_records),
        clean_records=clean_records,
        stats=stats,
        timings=timings,
        wall_seconds=time.perf_counter() - started,
        metrics=recorder.metrics,
    )


class ParallelCleaner:
    """Clean a query log on several CPU cores.

    Same contract as :class:`~repro.pipeline.streaming.StreamingCleaner`:
    the clean log matches the batch pipeline record for record, global
    artifacts (registry / SWS / overview) are out of scope.  After
    :meth:`run`, :attr:`stats` holds the :class:`ParallelStats` report.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.recorder = Recorder() if recorder is None else recorder
        self.stats = ParallelStats(
            workers=self.config.execution.resolved_workers(), shard_count=0
        )

    def run(self, log: QueryLog) -> QueryLog:
        """Shard, fan out, clean, and re-merge into global time order."""
        execution = self.config.execution
        workers = execution.resolved_workers()
        started = time.perf_counter()

        shards = shard_records(log, workers, execution.chunk_size)
        payloads = [
            (index, records, self.config)
            for index, records in enumerate(shards)
        ]

        if workers == 1 or len(payloads) <= 1:
            # Nothing to fan out: run in-process, skip the fork+pickle tax.
            reports = [_clean_shard(payload) for payload in payloads]
        else:
            context = multiprocessing.get_context()
            with context.Pool(processes=min(workers, len(payloads))) as pool:
                reports = list(pool.imap_unordered(_clean_shard, payloads))

        clock = time.perf_counter()
        cleaned = QueryLog(
            record for report in reports for record in report.clean_records
        )
        merge_seconds = time.perf_counter() - clock

        # Fold the workers' ledgers into one per-run ledger, then absorb
        # it into the cleaner's recorder (which may span several runs).
        run_metrics = PipelineMetrics()
        run_metrics.ensure_counters()
        stats = ParallelStats(workers=workers, shard_count=len(shards))
        for report in sorted(reports, key=lambda r: r.shard):
            stats.stats.merge(report.stats)
            run_metrics.merge(report.metrics)
            report.clean_records = []  # keep the report, drop the payload
            stats.shards.append(report)
        merge_stage = run_metrics.stage("merge")
        merge_stage.wall_seconds += merge_seconds
        merge_stage.calls += 1
        merge_stage.count("records_out", len(cleaned))
        if self.recorder.enabled:
            self.recorder.absorb(run_metrics)
            self.recorder.emit(
                {"event": "span", "stage": "merge", "seconds": merge_seconds}
            )
        stats.metrics = run_metrics
        stats.timings = StageTimings.from_metrics(run_metrics)
        stats.wall_seconds = time.perf_counter() - started
        self.stats = stats
        return cleaned


def clean_log_parallel(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    *,
    workers: Optional[int] = None,
) -> Tuple[QueryLog, ParallelStats]:
    """One-call parallel clean: (clean log, parallel statistics).

    ``workers`` overrides ``config.execution.workers`` when given.
    """
    from dataclasses import replace

    effective = config or PipelineConfig()
    if workers is not None:
        effective = replace(
            effective, execution=replace(effective.execution, workers=workers)
        )
    cleaner = ParallelCleaner(effective)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
