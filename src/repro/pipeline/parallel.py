"""Parallel sharded cleaning executor.

Dedup (keyed by user + statement), blocking, detection and solving are
all confined to a single user's timeline — a query log is embarrassingly
parallel *by user*.  The :class:`ParallelCleaner` exploits that:

1. **Shard** — records are hash-sharded by ``user_key()`` (a stable
   CRC-32, so shard assignment is identical across processes and runs)
   into tasks of roughly ``execution.chunk_size`` records; a user's
   whole timeline always lands in exactly one task.
2. **Fan out** — each task goes to a ``multiprocessing`` worker that
   runs the batch pipeline's own stage functions
   (:func:`~repro.pipeline.framework.dedup_stage` →
   :func:`~repro.pipeline.framework.parse_stage` →
   :func:`~repro.pipeline.framework.mine_stage` →
   :func:`~repro.pipeline.framework.detect_stage` →
   :func:`~repro.pipeline.framework.solve_stage`) over its shard, with
   its own per-distinct-statement parse cache, and times every stage.
3. **Merge** — clean records from all shards are re-merged into global
   (timestamp, seq) order; per-worker counters and stage timings are
   folded into one :class:`ParallelStats` report.

Because every stage a worker runs is user-local, the merged clean log is
record-for-record identical to the batch pipeline's.  Global artifacts
(pattern registry, SWS, Table-5 overview) need the whole log and are out
of scope here, exactly as in the streaming path.

**Fault tolerance.**  The fan-out runs on
:class:`concurrent.futures.ProcessPoolExecutor` rather than
``multiprocessing.Pool`` because a killed worker surfaces promptly as
``BrokenProcessPool`` instead of hanging the parent forever.  A shard
whose worker crashed, timed out (``execution.task_timeout``) or raised a
transient exception is re-queued up to ``execution.max_shard_retries``
times with exponential backoff; a shard that exhausts its retries is
handed to the config's ``error_policy`` — ``strict`` raises
:class:`~repro.errors.ShardFailure`, ``lenient`` drops its records,
``quarantine`` sets them aside whole with a
:data:`~repro.errors.SHARD_FAILURE` reason.  A
:class:`~repro.errors.RecordFailure` from a worker is a *verdict*, not a
fault, and is re-raised immediately without retrying.
"""

from __future__ import annotations

import multiprocessing
import time
import zlib
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import (
    SHARD_FAILURE,
    QuarantineChannel,
    RecordFailure,
    ShardFailure,
)
from ..log.models import LogRecord, QueryLog
from ..obs import PipelineMetrics, Recorder
from ..skeleton.interner import TemplateInterner
from .config import PipelineConfig
from .framework import (
    dedup_stage,
    detect_stage,
    mine_stage,
    parse_stage,
    solve_stage,
    validate_stage,
)
from .streaming import StreamingStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.sources import LogSource

#: Stage names in execution order (the keys of a timings report).
STAGES = ("dedup", "parse", "mine", "detect", "solve", "merge")


@dataclass
class StageTimings:
    """Wall-clock seconds spent per pipeline stage.

    Since the observability layer landed this is a *view* over a
    :class:`~repro.obs.PipelineMetrics` ledger (see
    :meth:`from_metrics`), kept as a stable dataclass for report
    consumers.  Worker-side timings fill the five processing stages; the
    parent fills ``merge`` (global re-ordering of the emitted records).
    Summed across workers the numbers are *aggregate* compute seconds —
    on N busy cores they exceed the run's wall time by up to a factor N.
    """

    dedup: float = 0.0
    parse: float = 0.0
    mine: float = 0.0
    detect: float = 0.0
    solve: float = 0.0
    merge: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: PipelineMetrics) -> "StageTimings":
        """Project a metrics ledger onto the six classic stage slots."""
        timings = cls()
        for name in STAGES:
            stage = metrics.stages.get(name)
            if stage is not None:
                setattr(timings, name, stage.wall_seconds)
        return timings

    def add(self, other: "StageTimings") -> None:
        self.dedup += other.dedup
        self.parse += other.parse
        self.mine += other.mine
        self.detect += other.detect
        self.solve += other.solve
        self.merge += other.merge

    @property
    def total(self) -> float:
        return (
            self.dedup + self.parse + self.mine
            + self.detect + self.solve + self.merge
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in STAGES}


@dataclass
class ShardReport:
    """One worker task's outcome (also the worker's return value)."""

    shard: int
    records_in: int
    records_out: int
    clean_records: List[LogRecord]
    stats: StreamingStats
    timings: StageTimings
    wall_seconds: float
    #: the worker's full observability ledger (plain data — pickles).
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    #: records this shard set aside under the ``quarantine`` policy.
    quarantine: QuarantineChannel = field(default_factory=QuarantineChannel)
    #: the shard's template interner (picklable), folded by the parent
    #: into the run-level dictionary — shard-local ids are meaningless
    #: outside the worker, the fingerprints travel home with the report.
    interner: TemplateInterner = field(default_factory=TemplateInterner)


@dataclass
class ParallelStats:
    """Merged report of one parallel run.

    :param workers: worker processes used.
    :param shard_count: tasks the log was sharded into (≥ workers when
        the log is big enough; a task never splits a user).
    :param stats: all shards' counters folded into one
        :class:`~repro.pipeline.streaming.StreamingStats`.
    :param timings: per-stage wall clock summed across shards, plus the
        parent-side merge (a view over ``metrics``).
    :param wall_seconds: end-to-end wall time of the run.
    :param shards: the per-shard reports (clean records dropped).
    :param metrics: the run's merged observability ledger (all shards'
        counters and stage times folded together, plus the merge stage).
    :param interner: the run-level template dictionary — every shard
        interner folded in shard order, so its size is the run's global
        distinct-template count (the per-shard sum lives in
        ``stats.interner_size``, like the cache counters).
    :param shards_retried: how many shard re-submissions the run needed
        (worker crashes, timeouts, transient exceptions).
    :param shards_failed: shards that exhausted their retries and were
        handed to the error policy.
    """

    workers: int
    shard_count: int
    stats: StreamingStats = field(default_factory=StreamingStats)
    timings: StageTimings = field(default_factory=StageTimings)
    wall_seconds: float = 0.0
    shards: List[ShardReport] = field(default_factory=list)
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    interner: TemplateInterner = field(default_factory=TemplateInterner)
    shards_retried: int = 0
    shards_failed: int = 0

    @property
    def records_in(self) -> int:
        return self.stats.records_in

    @property
    def records_out(self) -> int:
        return self.stats.records_out

    @property
    def throughput(self) -> float:
        """Input records cleaned per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.records_in / self.wall_seconds


def shard_index(user_key: str, shard_count: int) -> int:
    """Stable shard assignment for one user key.

    CRC-32 rather than :func:`hash`: Python's string hash is randomised
    per process, and shard assignment must agree across workers, runs
    and machines.
    """
    return zlib.crc32(user_key.encode("utf-8")) % shard_count


def shard_records(
    log: Iterable[LogRecord], workers: int, chunk_size: int
) -> List[List[LogRecord]]:
    """Split ``log`` into per-task record lists, never splitting a user.

    Records are first hashed into fine-grained buckets (several per
    worker, so one heavy user cannot serialise the whole run), then the
    buckets are packed in index order into tasks of at most
    ``chunk_size`` records — except that a single bucket larger than the
    chunk size stays one task, because a user's timeline is indivisible.

    ``log`` only needs to be iterable — :meth:`ParallelCleaner
    .run_source` feeds a chunk-flattening generator through here, and
    the sharding is insensitive to how the records were chunked on the
    way in: bucket membership is per user, task packing depends only on
    bucket sizes, and each worker sorts its shard into time order.
    """
    bucket_count = max(32, workers * 8)
    buckets: Dict[int, List[LogRecord]] = {}
    for record in log:
        index = shard_index(record.user_key(), bucket_count)
        buckets.setdefault(index, []).append(record)

    shards: List[List[LogRecord]] = []
    current: List[LogRecord] = []
    for index in sorted(buckets):
        records = buckets[index]
        if current and len(current) + len(records) > chunk_size:
            shards.append(current)
            current = []
        current.extend(records)
    if current:
        shards.append(current)
    return shards


def _clean_shard(
    payload: Tuple[int, Sequence[LogRecord], PipelineConfig]
) -> ShardReport:
    """Worker body: run the batch stage functions over one shard.

    Module-level (not a closure) so it pickles under every
    ``multiprocessing`` start method; each worker process gets its own
    parse cache by construction, because :func:`parse_stage` builds one
    per call.
    """
    shard, records, config = payload
    started = time.perf_counter()
    shard_log = QueryLog(records)
    recorder = Recorder()
    channel = QuarantineChannel()
    interner = TemplateInterner()

    validated = validate_stage(shard_log, config, recorder, channel)
    dedup = dedup_stage(validated, config, recorder)
    parsed = parse_stage(dedup.log, config, recorder, channel, interner=interner)
    mining = mine_stage(parsed.queries, config, recorder)
    antipatterns = detect_stage(mining.blocks, config, recorder)
    solve_result = solve_stage(parsed.parsed_log, antipatterns, recorder)
    timings = StageTimings.from_metrics(recorder.metrics)

    clean_records = solve_result.log.records()
    parse_counters = recorder.metrics.stage("parse").counters
    stats = StreamingStats(
        records_in=len(records),
        records_out=len(clean_records),
        records_invalid=len(shard_log) - len(validated),
        duplicates_removed=dedup.removed,
        syntax_errors=len(parsed.syntax_errors),
        non_select=len(parsed.non_select),
        parse_quarantined=len(parsed.quarantined),
        blocks_closed=len(mining.blocks),
        blocks_force_closed=0,  # workers hold whole blocks; no size bound
        instances_detected=len(antipatterns),
        instances_solved=len(solve_result.solved),
        max_open_queries=len(parsed.queries),  # the shard is resident at once
        parse_cache_hits=parse_counters.get("parse_cache_hits", 0),
        parse_cache_misses=parse_counters.get("parse_cache_misses", 0),
        parse_cache_evictions=parse_counters.get("parse_cache_evictions", 0),
        interner_size=len(interner),
    )
    return ShardReport(
        shard=shard,
        records_in=len(records),
        records_out=len(clean_records),
        clean_records=clean_records,
        stats=stats,
        timings=timings,
        wall_seconds=time.perf_counter() - started,
        metrics=recorder.metrics,
        quarantine=channel,
        interner=interner,
    )


class ParallelCleaner:
    """Clean a query log on several CPU cores.

    Same contract as :class:`~repro.pipeline.streaming.StreamingCleaner`:
    the clean log matches the batch pipeline record for record, global
    artifacts (registry / SWS / overview) are out of scope.  After
    :meth:`run`, :attr:`stats` holds the :class:`ParallelStats` report.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.recorder = Recorder() if recorder is None else recorder
        self.stats = ParallelStats(
            workers=self.config.execution.resolved_workers(), shard_count=0
        )
        #: everything the last run set aside (quarantine policy only).
        self.quarantine = QuarantineChannel()

    # ------------------------------------------------------------------
    # Fault handling

    def _terminal_failure(
        self,
        shard: int,
        records: Sequence[LogRecord],
        attempts: int,
        detail: str,
        quarantine: QuarantineChannel,
    ) -> None:
        """A shard is out of retries: apply the error policy to it."""
        if self.config.error_policy == "strict":
            raise ShardFailure(shard, attempts, detail)
        if self.config.error_policy == "quarantine":
            for record in records:
                quarantine.add(record, SHARD_FAILURE, "shard", detail=detail)
        # lenient: the records are simply dropped; the merge-stage
        # counters still say how many shards were lost.

    def _run_inline(
        self,
        payloads: Dict[int, Tuple[int, List[LogRecord], PipelineConfig]],
        quarantine: QuarantineChannel,
    ) -> Tuple[List[ShardReport], int, List[int]]:
        """Run shards in-process (one worker, or nothing to fan out).

        Same retry and error-policy contract as the pool path, minus the
        timeout (there is no separate process to abandon).
        """
        execution = self.config.execution
        max_attempts = execution.max_shard_retries + 1
        reports: List[ShardReport] = []
        retried = 0
        failed: List[int] = []
        for shard, payload in sorted(payloads.items()):
            attempt = 0
            while True:
                attempt += 1
                try:
                    reports.append(_clean_shard(payload))
                    break
                except RecordFailure:
                    raise  # strict-policy verdict, not a fault — no retry
                except Exception as exc:
                    if attempt >= max_attempts:
                        self._terminal_failure(
                            shard, payload[1], attempt, repr(exc), quarantine
                        )
                        failed.append(shard)
                        break
                    retried += 1
                    if execution.retry_backoff:
                        time.sleep(
                            execution.retry_backoff * 2 ** (attempt - 1)
                        )
        return reports, retried, failed

    def _run_pool(
        self,
        payloads: Dict[int, Tuple[int, List[LogRecord], PipelineConfig]],
        workers: int,
        quarantine: QuarantineChannel,
    ) -> Tuple[List[ShardReport], int, List[int]]:
        """Fan the shards out over a process pool, re-queueing failures.

        Each round submits every still-pending shard and waits for the
        wave to finish.  A crashed worker poisons the whole pool
        (``BrokenProcessPool`` fails every in-flight future), so the pool
        is rebuilt and *all* pending shards get one attempt charged —
        innocents succeed on the next round, and the accounting stays
        bounded: no shard is ever submitted more than
        ``max_shard_retries + 1`` times.
        """
        execution = self.config.execution
        max_attempts = execution.max_shard_retries + 1
        pending = dict(payloads)
        attempts = {shard: 0 for shard in payloads}
        errors: Dict[int, str] = {}
        reports: List[ShardReport] = []
        retried = 0
        failed: List[int] = []
        pool_size = min(workers, len(payloads))
        mp_context = multiprocessing.get_context()
        executor = futures.ProcessPoolExecutor(
            max_workers=pool_size, mp_context=mp_context
        )
        round_number = 0
        try:
            while pending:
                for shard in [
                    s for s in sorted(pending) if attempts[s] >= max_attempts
                ]:
                    self._terminal_failure(
                        shard,
                        pending[shard][1],
                        attempts[shard],
                        errors.get(shard, "exhausted retries"),
                        quarantine,
                    )
                    failed.append(shard)
                    del pending[shard]
                if not pending:
                    break
                round_number += 1
                if round_number > 1:
                    retried += len(pending)
                    if execution.retry_backoff:
                        time.sleep(
                            execution.retry_backoff * 2 ** (round_number - 2)
                        )
                submitted = {
                    executor.submit(_clean_shard, payload): shard
                    for shard, payload in sorted(pending.items())
                }
                timeout = None
                if execution.task_timeout is not None:
                    # The budget is per shard; a wave wider than the pool
                    # runs its shards in several passes.
                    waves = -(-len(submitted) // pool_size)
                    timeout = execution.task_timeout * waves
                done, not_done = futures.wait(set(submitted), timeout=timeout)
                broken = False
                for future in done:
                    shard = submitted[future]
                    try:
                        report = future.result()
                    except RecordFailure:
                        raise  # strict-policy verdict — no retry
                    except BrokenProcessPool as exc:
                        broken = True
                        attempts[shard] += 1
                        errors[shard] = f"worker crashed: {exc!r}"
                    except Exception as exc:
                        attempts[shard] += 1
                        errors[shard] = repr(exc)
                    else:
                        reports.append(report)
                        del pending[shard]
                for future in not_done:
                    shard = submitted[future]
                    broken = True
                    attempts[shard] += 1
                    errors[shard] = (
                        f"shard exceeded task_timeout="
                        f"{execution.task_timeout}s"
                    )
                if broken:
                    # The pool may hold dead or still-busy workers;
                    # abandon it and start fresh for the next round.
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = futures.ProcessPoolExecutor(
                        max_workers=pool_size, mp_context=mp_context
                    )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return reports, retried, failed

    def run_source(self, source: "LogSource") -> QueryLog:
        """Clean a :class:`~repro.store.sources.LogSource` end to end.

        The source is drained chunk by chunk straight into the sharder,
        so the input is never materialised as one list in the parent —
        peak parent-side memory is the bucketed shard payloads.  The
        clean log is identical to ``run(source.read())``.
        """
        return self.run(
            record for chunk in source.open_chunks() for record in chunk
        )

    def run(self, log: Iterable[LogRecord]) -> QueryLog:
        """Shard, fan out, clean, and re-merge into global time order."""
        execution = self.config.execution
        workers = execution.resolved_workers()
        started = time.perf_counter()

        shards = shard_records(log, workers, execution.chunk_size)
        payloads = {
            index: (index, records, self.config)
            for index, records in enumerate(shards)
        }
        quarantine = QuarantineChannel()

        # Degenerate fan-outs run in-process: an empty log has zero
        # payloads and a tiny one a single payload — both would ask for
        # a zero/one-process pool — and one worker gains nothing from
        # the fork+pickle tax.
        if workers == 1 or len(payloads) <= 1:
            reports, retried, failed = self._run_inline(payloads, quarantine)
        else:
            reports, retried, failed = self._run_pool(
                payloads, workers, quarantine
            )

        clock = time.perf_counter()
        cleaned = QueryLog(
            record for report in reports for record in report.clean_records
        )
        merge_seconds = time.perf_counter() - clock

        # Fold the workers' ledgers into one per-run ledger, then absorb
        # it into the cleaner's recorder (which may span several runs).
        run_metrics = PipelineMetrics()
        run_metrics.ensure_counters()
        stats = ParallelStats(workers=workers, shard_count=len(shards))
        run_interner = stats.interner
        for report in sorted(reports, key=lambda r: r.shard):
            stats.stats.merge(report.stats)
            run_metrics.merge(report.metrics)
            quarantine.merge(report.quarantine)
            # Fold the shard's template dictionary into the run-level
            # one (deterministic: shard order, then shard-local id
            # order, so the run ids are reproducible across runs).
            run_interner.merge(report.interner)
            report.clean_records = []  # keep the report, drop the payload
            stats.shards.append(report)
        stats.shards_retried = retried
        stats.shards_failed = len(failed)
        merge_stage = run_metrics.stage("merge")
        merge_stage.wall_seconds += merge_seconds
        merge_stage.calls += 1
        merge_stage.count("records_out", len(cleaned))
        merge_stage.count("shards_retried", retried)
        merge_stage.count("shards_failed", len(failed))
        # The run-level dictionary size: global distinct templates (the
        # "parse" counter carries the per-shard sum, like cache misses).
        merge_stage.count("interner_size", len(run_interner))
        if self.recorder.enabled:
            self.recorder.absorb(run_metrics)
            self.recorder.emit(
                {"event": "span", "stage": "merge", "seconds": merge_seconds}
            )
        stats.metrics = run_metrics
        stats.timings = StageTimings.from_metrics(run_metrics)
        stats.wall_seconds = time.perf_counter() - started
        self.stats = stats
        self.quarantine = quarantine
        return cleaned


def clean_log_parallel(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    *,
    workers: Optional[int] = None,
) -> Tuple[QueryLog, ParallelStats]:
    """One-call parallel clean: (clean log, parallel statistics).

    ``workers`` overrides ``config.execution.workers`` when given.
    """
    from dataclasses import replace

    effective = config or PipelineConfig()
    if workers is not None:
        effective = replace(
            effective, execution=replace(effective.execution, workers=workers)
        )
    cleaner = ParallelCleaner(effective)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
