"""Parallel sharded cleaning executor.

Dedup (keyed by user + statement), blocking, detection and solving are
all confined to a single user's timeline — a query log is embarrassingly
parallel *by user*.  The :class:`ParallelCleaner` exploits that:

1. **Shard** — records are hash-sharded by ``user_key()`` (a stable
   CRC-32, so shard assignment is identical across processes and runs)
   into per-task record lists; a user's whole timeline always lands in
   exactly one task.  With the default ``chunk_size=0`` the shard count
   adapts to the fan-out (≈ ``2 × workers`` tasks, rebalanced by record
   counts); an explicit ``chunk_size`` pins the classic fixed packing.
2. **Fan out** — each shard is packed into one contiguous columnar
   buffer (:func:`repro.store.columnar.encode_shard`) and handed to a
   worker either as a single pickle-5 bytes object
   (``transfer="pickle"``) or as a ``multiprocessing.shared_memory``
   segment the worker attaches to without copying
   (``transfer="shm"``).  The worker decodes lazily straight into the
   batch pipeline's own stage functions
   (:func:`~repro.pipeline.framework.dedup_stage` →
   :func:`~repro.pipeline.framework.parse_stage` →
   :func:`~repro.pipeline.framework.mine_stage` →
   :func:`~repro.pipeline.framework.detect_stage` →
   :func:`~repro.pipeline.framework.solve_stage`), with a
   process-persistent parse cache, and times every stage.
3. **Merge** — clean records from all shards are re-merged into global
   (timestamp, seq) order; per-worker counters and stage timings are
   folded into one :class:`ParallelStats` report.

Because every stage a worker runs is user-local, the merged clean log is
record-for-record identical to the batch pipeline's.  Global artifacts
(pattern registry, SWS, Table-5 overview) need the whole log and are out
of scope here, exactly as in the streaming path.

**Warm worker pools.**  Forking and tearing down a process pool per run
dominates small runs, so pools are reusable: :func:`get_worker_pool`
parks one :class:`WorkerPool` per worker count in a process-wide
registry, reused across :func:`repro.clean` calls (disable per run with
``execution.pool_reuse=False``).  Each worker keeps a persistent
:class:`~repro.skeleton.cache.TemplateCache` across shards *and* runs,
optionally pre-seeded with interned prototypes via
:func:`set_worker_seed` — outputs stay byte-identical because the cache
is correctness-checked per hit, only the ``parse_cache_*`` counters
(executor-dependent by contract) change.  All registry pools are shut
down atexit; a raising run discards its pool rather than leaving queued
shards running behind the caller's back.

**Shared-memory lifecycle.**  The parent owns every segment: it
creates, fills and — once the shard has completed, terminally failed,
or the run is over — closes *and unlinks* it.  Workers attach without
registering with the resource tracker (the parent's unlink is the
single point of truth), read the buffer eagerly during decode, and
close their mapping before the report returns.  A worker SIGKILLed
mid-shard therefore leaks nothing: the kernel drops its mapping, the
segment survives for the retried worker, and the parent unlinks it on
the way out.

**Fault tolerance.**  The fan-out runs on
:class:`concurrent.futures.ProcessPoolExecutor` rather than
``multiprocessing.Pool`` because a killed worker surfaces promptly as
``BrokenProcessPool`` instead of hanging the parent forever.  A shard
whose worker crashed, timed out (``execution.task_timeout``) or raised a
transient exception is re-queued up to ``execution.max_shard_retries``
times with exponential backoff (the encoded buffer is reused across
retries); a crashed or timed-out pool is rebuilt in place
(:meth:`WorkerPool.rebuild`).  A shard that exhausts its retries is
handed to the config's ``error_policy`` — ``strict`` raises
:class:`~repro.errors.ShardFailure`, ``lenient`` drops its records,
``quarantine`` sets them aside whole with a
:data:`~repro.errors.SHARD_FAILURE` reason.  A
:class:`~repro.errors.RecordFailure` from a worker is a *verdict*, not a
fault, and is re-raised immediately without retrying.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
import zlib
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import (
    SHARD_FAILURE,
    QuarantineChannel,
    RecordFailure,
    ShardFailure,
)
from ..log.models import LogRecord, QueryLog
from ..obs import PipelineMetrics, Recorder
from ..skeleton.cache import TemplateCache
from ..skeleton.interner import TemplateInterner
from ..store.columnar import decode_shard, encode_shard
from .config import PipelineConfig
from .framework import (
    dedup_stage,
    detect_stage,
    mine_stage,
    parse_stage,
    solve_stage,
    validate_stage,
)
from .streaming import StreamingStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.sources import LogSource

#: Stage names in execution order (the keys of a timings report).
STAGES = ("dedup", "parse", "mine", "detect", "solve", "merge")


@dataclass
class StageTimings:
    """Wall-clock seconds spent per pipeline stage.

    Since the observability layer landed this is a *view* over a
    :class:`~repro.obs.PipelineMetrics` ledger (see
    :meth:`from_metrics`), kept as a stable dataclass for report
    consumers.  Worker-side timings fill the five processing stages; the
    parent fills ``merge`` (global re-ordering of the emitted records).
    Summed across workers the numbers are *aggregate* compute seconds —
    on N busy cores they exceed the run's wall time by up to a factor N.
    """

    dedup: float = 0.0
    parse: float = 0.0
    mine: float = 0.0
    detect: float = 0.0
    solve: float = 0.0
    merge: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: PipelineMetrics) -> "StageTimings":
        """Project a metrics ledger onto the six classic stage slots."""
        timings = cls()
        for name in STAGES:
            stage = metrics.stages.get(name)
            if stage is not None:
                setattr(timings, name, stage.wall_seconds)
        return timings

    def add(self, other: "StageTimings") -> None:
        self.dedup += other.dedup
        self.parse += other.parse
        self.mine += other.mine
        self.detect += other.detect
        self.solve += other.solve
        self.merge += other.merge

    @property
    def total(self) -> float:
        return (
            self.dedup + self.parse + self.mine
            + self.detect + self.solve + self.merge
        )

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in STAGES}


@dataclass
class ShardReport:
    """One worker task's outcome (also the worker's return value)."""

    shard: int
    records_in: int
    records_out: int
    clean_records: List[LogRecord]
    stats: StreamingStats
    timings: StageTimings
    wall_seconds: float
    #: the worker's full observability ledger (plain data — pickles).
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    #: records this shard set aside under the ``quarantine`` policy.
    quarantine: QuarantineChannel = field(default_factory=QuarantineChannel)
    #: the shard's template interner (picklable), folded by the parent
    #: into the run-level dictionary — shard-local ids are meaningless
    #: outside the worker, the fingerprints travel home with the report.
    interner: TemplateInterner = field(default_factory=TemplateInterner)
    #: how the shard reached its worker — ``"pickle"`` / ``"shm"`` for
    #: pool runs, ``"inline"`` when it never left the parent (both
    #: annotated by the parent, not the worker).
    transfer: str = "inline"
    #: encoded payload size shipped for this shard (0 when inline).
    bytes_shipped: int = 0


@dataclass
class ParallelStats:
    """Merged report of one parallel run.

    :param workers: worker processes used.
    :param shard_count: tasks the log was sharded into (a task never
        splits a user; adaptive sizing targets ≈ ``2 × workers`` tasks).
    :param stats: all shards' counters folded into one
        :class:`~repro.pipeline.streaming.StreamingStats`.
    :param timings: per-stage wall clock summed across shards, plus the
        parent-side merge (a view over ``metrics``).
    :param wall_seconds: end-to-end wall time of the run.
    :param shards: the per-shard reports (clean records dropped).
    :param metrics: the run's merged observability ledger (all shards'
        counters and stage times folded together, plus the merge stage).
    :param interner: the run-level template dictionary — every shard
        interner folded in shard order, so its size is the run's global
        distinct-template count (the per-shard sum lives in
        ``stats.interner_size``, like the cache counters).
    :param shards_retried: how many shard re-submissions the run needed
        (worker crashes, timeouts, transient exceptions).
    :param shards_failed: shards that exhausted their retries and were
        handed to the error policy.
    :param bytes_shipped: total encoded shard-buffer bytes the run
        shipped to workers (each shard's buffer counted once — retries
        reuse it); also on the merge stage as ``bytes_shipped``.
    :param shm_segments: shared-memory segments the run created (0 under
        ``transfer="pickle"``); also on the merge stage.
    """

    workers: int
    shard_count: int
    stats: StreamingStats = field(default_factory=StreamingStats)
    timings: StageTimings = field(default_factory=StageTimings)
    wall_seconds: float = 0.0
    shards: List[ShardReport] = field(default_factory=list)
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)
    interner: TemplateInterner = field(default_factory=TemplateInterner)
    shards_retried: int = 0
    shards_failed: int = 0
    bytes_shipped: int = 0
    shm_segments: int = 0

    @property
    def records_in(self) -> int:
        return self.stats.records_in

    @property
    def records_out(self) -> int:
        return self.stats.records_out

    @property
    def throughput(self) -> float:
        """Input records cleaned per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.records_in / self.wall_seconds


def shard_index(user_key: str, shard_count: int) -> int:
    """Stable shard assignment for one user key.

    CRC-32 rather than :func:`hash`: Python's string hash is randomised
    per process, and shard assignment must agree across workers, runs
    and machines.
    """
    return zlib.crc32(user_key.encode("utf-8")) % shard_count


def shard_records(
    log: Iterable[LogRecord], workers: int, chunk_size: int
) -> List[List[LogRecord]]:
    """Split ``log`` into per-task record lists, never splitting a user.

    Records are first hashed into fine-grained buckets (several per
    worker, so one heavy user cannot serialise the whole run), then the
    buckets are packed in index order into tasks.  ``chunk_size == 0``
    sizes the tasks adaptively: the packing budget is chosen so the run
    yields about ``2 × workers`` shards balanced by record count —
    enough tasks that one slow shard cannot straggle the run, few
    enough that per-task overhead (encode, submit, report) stays
    amortised.  A positive ``chunk_size`` bounds every task at that many
    records instead — except that a single bucket larger than the
    budget stays one task, because a user's timeline is indivisible.

    ``log`` only needs to be iterable — :meth:`ParallelCleaner
    .run_source` feeds a chunk-flattening generator through here, and
    the sharding is insensitive to how the records were chunked on the
    way in: bucket membership is per user, task packing depends only on
    bucket sizes, and each worker sorts its shard into time order.
    Bucket membership is independent of ``chunk_size`` entirely and, by
    the CRC invariant, deterministic per user — changing the worker or
    shard count only repacks buckets, it never splits a user's records
    across tasks.
    """
    adaptive = chunk_size == 0
    bucket_count = max(64, workers * 16) if adaptive else max(32, workers * 8)
    buckets: Dict[int, List[LogRecord]] = {}
    total = 0
    for record in log:
        index = shard_index(record.user_key(), bucket_count)
        buckets.setdefault(index, []).append(record)
        total += 1
    if not buckets:
        return []

    if adaptive:
        # One shard per worker would stall the run on its slowest shard;
        # 2× gives the pool a second wave to rebalance into.  A single
        # worker gets a single shard (the fan-out runs inline anyway).
        target = 2 * workers if workers > 1 else 1
        budget = -(-total // max(1, min(target, len(buckets))))
    else:
        budget = chunk_size

    shards: List[List[LogRecord]] = []
    current: List[LogRecord] = []
    for index in sorted(buckets):
        records = buckets[index]
        if current and len(current) + len(records) > budget:
            shards.append(current)
            current = []
        current.extend(records)
    if current:
        shards.append(current)
    return shards


# ----------------------------------------------------------------------
# Worker-side machinery
#
# Everything here is module-level (not closures) so it pickles under
# every ``multiprocessing`` start method.  The three globals below live
# in the *worker* processes: the seed is handed to ``_worker_init`` when
# the pool spawns, the cache persists across shards and runs.

_WORKER_SEED: Optional[Tuple[Tuple[bool, bool], bytes]] = None
_WORKER_CACHE: Optional[TemplateCache] = None
_WORKER_CACHE_KEY: Optional[Tuple[int, bool, bool]] = None


def _worker_init(seed: Optional[Tuple[Tuple[bool, bool], bytes]] = None) -> None:
    """Pool initializer: remember the template-cache seed, if any."""
    global _WORKER_SEED
    _WORKER_SEED = seed


def _process_parse_cache(config: PipelineConfig) -> Optional[TemplateCache]:
    """This worker's persistent parse cache (or ``None`` if disabled).

    The cache is keyed by the parse knobs it may legally serve — a
    config change mid-pool resets it rather than risking a stale
    skeleton (see the invariant on
    :func:`~repro.pipeline.framework.parse_log`).  When a seed matching
    the knobs is available the first cache of this process starts warm.
    """
    execution = config.execution
    if not execution.parse_cache:
        return None
    global _WORKER_CACHE, _WORKER_CACHE_KEY
    key = (
        execution.parse_cache_size,
        config.fold_variables,
        config.strict_triple,
    )
    if _WORKER_CACHE is None or _WORKER_CACHE_KEY != key:
        cache: Optional[TemplateCache] = None
        if _WORKER_SEED is not None and _WORKER_SEED[0] == key[1:]:
            try:
                cache = TemplateCache.from_seed(
                    _WORKER_SEED[1], max_entries=execution.parse_cache_size
                )
            except Exception:  # a bad seed must never fail a shard
                cache = None
        if cache is None:
            cache = TemplateCache(execution.parse_cache_size)
        _WORKER_CACHE = cache
        _WORKER_CACHE_KEY = key
    # The lazy knob is not part of the cache key — the same entries
    # serve both modes — but a persistent cache must follow the current
    # run's setting (set_lazy also purges lazily-bound L1 values when
    # turning the fast path off).
    _WORKER_CACHE.set_lazy(execution.lazy_parse)
    return _WORKER_CACHE


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracker registration.

    The parent is the single owner: it created the segment and will
    unlink it.  Registering the attachment with this process's resource
    tracker would make the tracker try to clean up (or warn about) a
    segment it does not own — ``track=False`` exists for exactly this
    on Python 3.13+; older interpreters get the same effect by muting
    ``register`` for the duration of the attach (bpo-39959).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _clean_shard_log(
    shard: int,
    shard_log: QueryLog,
    config: PipelineConfig,
    cache: Optional[TemplateCache] = None,
) -> ShardReport:
    """Run the batch stage functions over one shard's records."""
    started = time.perf_counter()
    recorder = Recorder()
    channel = QuarantineChannel()
    interner = TemplateInterner()
    execution = config.execution
    # Create the cache here (not inside parse_stage) so this shard can
    # book how many of its lazy queries the downstream stages forced to
    # materialise.  A passed-in cache is the worker's persistent one —
    # its materialised counter spans runs, hence the baseline delta.
    if cache is None and execution.parse_cache:
        cache = TemplateCache(
            execution.parse_cache_size, lazy=execution.lazy_parse
        )
    base_materialised = cache.materialised if cache is not None else 0

    validated = validate_stage(shard_log, config, recorder, channel)
    dedup = dedup_stage(validated, config, recorder)
    parsed = parse_stage(
        dedup.log, config, recorder, channel, cache=cache, interner=interner
    )
    mining = mine_stage(parsed.queries, config, recorder)
    antipatterns = detect_stage(mining.blocks, config, recorder)
    solve_result = solve_stage(parsed.parsed_log, antipatterns, recorder)
    if cache is not None:
        recorder.count(
            "parse",
            "parse_materialised",
            cache.materialised - base_materialised,
        )
    timings = StageTimings.from_metrics(recorder.metrics)

    clean_records = solve_result.log.records()
    parse_counters = recorder.metrics.stage("parse").counters
    stats = StreamingStats(
        records_in=len(shard_log),
        records_out=len(clean_records),
        records_invalid=len(shard_log) - len(validated),
        duplicates_removed=dedup.removed,
        syntax_errors=len(parsed.syntax_errors),
        non_select=len(parsed.non_select),
        parse_quarantined=len(parsed.quarantined),
        blocks_closed=len(mining.blocks),
        blocks_force_closed=0,  # workers hold whole blocks; no size bound
        instances_detected=len(antipatterns),
        instances_solved=len(solve_result.solved),
        max_open_queries=len(parsed.queries),  # the shard is resident at once
        parse_cache_hits=parse_counters.get("parse_cache_hits", 0),
        parse_cache_misses=parse_counters.get("parse_cache_misses", 0),
        parse_cache_evictions=parse_counters.get("parse_cache_evictions", 0),
        parse_lazy_hits=parse_counters.get("parse_lazy_hits", 0),
        parse_materialised=parse_counters.get("parse_materialised", 0),
        parse_cold=parse_counters.get("parse_cold", 0),
        parse_dict_preloaded=parse_counters.get("parse_dict_preloaded", 0),
        interner_size=len(interner),
    )
    return ShardReport(
        shard=shard,
        records_in=len(shard_log),
        records_out=len(clean_records),
        clean_records=clean_records,
        stats=stats,
        timings=timings,
        wall_seconds=time.perf_counter() - started,
        metrics=recorder.metrics,
        quarantine=channel,
        interner=interner,
    )


def _clean_shard(
    payload: Tuple[int, Sequence[LogRecord], PipelineConfig],
    cache: Optional[TemplateCache] = None,
) -> ShardReport:
    """Worker body over plain records (the in-process/inline path).

    Without an explicit ``cache`` each call gets a fresh per-call parse
    cache by construction, because :func:`parse_stage` builds one when
    none is passed.  The inline path hands the run's dictionary-warmed
    cache through here — shared serially across the shards, mirroring
    the pool path's persistent per-worker cache.
    """
    shard, records, config = payload
    return _clean_shard_log(shard, QueryLog(records), config, cache=cache)


def _clean_shard_encoded(
    payload: Tuple[int, str, Union[bytes, str], int, PipelineConfig]
) -> ShardReport:
    """Worker body over an encoded shard buffer (the pool path).

    ``data`` is the contiguous :func:`~repro.store.columnar
    .encode_shard` buffer itself (``transfer="pickle"``) or the name of
    the shared-memory segment holding it (``transfer="shm"``).  Decoding
    reads the buffer eagerly, so the shm mapping is closed before any
    stage runs — a crash after this point cannot pin the segment.
    """
    shard, kind, data, nbytes, config = payload
    cache = _process_parse_cache(config)
    if kind == "shm":
        segment = _attach_shm(data)  # type: ignore[arg-type]
        try:
            view = segment.buf[:nbytes]
            try:
                records = decode_shard(view)
            finally:
                view.release()
        finally:
            segment.close()
    else:
        records = decode_shard(data)
    return _clean_shard_log(shard, QueryLog(records), config, cache=cache)


# ----------------------------------------------------------------------
# Warm worker pools

#: The template-cache seed handed to newly spawned workers, as
#: ``((fold_variables, strict_triple), TemplateCache.export_seed())``.
_POOL_SEED: Optional[Tuple[Tuple[bool, bool], bytes]] = None

#: Process-wide registry of reusable pools, keyed by worker count.
_POOLS: Dict[int, WorkerPool] = {}


class WorkerPool:
    """A reusable :class:`~concurrent.futures.ProcessPoolExecutor`.

    The executor is created lazily on first :meth:`submit` and kept warm
    until :meth:`shutdown` — the whole point is to pay the fork +
    interpreter + seed cost once, not per ``repro.clean()`` call.
    :meth:`rebuild` retires a broken executor (crashed or hung workers)
    and provisions a fresh one in place; :attr:`generation` counts how
    many executors this pool has provisioned, so tests can assert a
    rebuild actually happened.
    """

    def __init__(
        self,
        workers: int,
        *,
        seed: Optional[Tuple[Tuple[bool, bool], bytes]] = None,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.seed = seed
        self._mp_context = mp_context or multiprocessing.get_context()
        self._executor: Optional[futures.ProcessPoolExecutor] = None
        #: executors provisioned over this pool's lifetime.
        self.generation = 0

    @property
    def executor(self) -> futures.ProcessPoolExecutor:
        """The live executor, provisioning one if needed."""
        if self._executor is None:
            self._executor = futures.ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context,
                initializer=_worker_init,
                initargs=(self.seed,),
            )
            self.generation += 1
        return self._executor

    @property
    def alive(self) -> bool:
        """Whether an executor is currently provisioned."""
        return self._executor is not None

    def submit(self, fn, /, *args, **kwargs) -> "futures.Future":
        return self.executor.submit(fn, *args, **kwargs)

    def rebuild(self) -> futures.ProcessPoolExecutor:
        """Retire the current executor (if any) and provision a new one."""
        self.shutdown(wait=False)
        return self.executor

    def shutdown(self, wait: bool = True) -> None:
        """Shut the executor down; the pool can be reused afterwards."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)


def get_worker_pool(workers: int) -> WorkerPool:
    """The process-wide reusable pool for ``workers`` worker processes.

    Created (with the current :func:`set_worker_seed` seed) on first
    request, then returned as-is — callers share the warm workers.  All
    registry pools are shut down atexit.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = WorkerPool(workers, seed=_POOL_SEED)
        _POOLS[workers] = pool
    return pool


def discard_worker_pool(workers: int) -> None:
    """Drop (and shut down) the registry pool for ``workers``, if any."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False)


def shutdown_worker_pools(wait: bool = True) -> None:
    """Shut down every registry pool (also runs atexit)."""
    pools = list(_POOLS.values())
    _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


atexit.register(shutdown_worker_pools)


def set_worker_seed(
    cache: Optional[TemplateCache],
    *,
    fold_variables: bool = False,
    strict_triple: bool = False,
) -> None:
    """Pre-seed future pool workers with ``cache``'s interned templates.

    Newly spawned workers start their persistent parse cache from
    ``cache.export_seed()`` instead of cold, provided the run's
    ``(fold_variables, strict_triple)`` knobs match the ones declared
    here (a mismatched seed is ignored — the invariant on
    :func:`~repro.pipeline.framework.parse_log` forbids sharing caches
    across knob combinations).  Existing registry pools were spawned
    under the previous seed and are retired.  ``set_worker_seed(None)``
    clears the seed.
    """
    global _POOL_SEED
    if cache is None:
        _POOL_SEED = None
    else:
        _POOL_SEED = ((fold_variables, strict_triple), cache.export_seed())
    shutdown_worker_pools(wait=False)


# ----------------------------------------------------------------------
# Shard transfer (parent side)


@dataclass
class _ShardTransfer:
    """One shard's encoded buffer en route to a worker."""

    kind: str  # "pickle" | "shm"
    data: Union[bytes, str]  # the buffer itself, or the segment name
    nbytes: int
    segment: Optional[shared_memory.SharedMemory] = None


def _encode_transfer(
    records: Sequence[LogRecord], kind: str
) -> _ShardTransfer:
    blob = encode_shard(records)
    if kind == "shm":
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, len(blob))
        )
        segment.buf[:len(blob)] = blob
        return _ShardTransfer("shm", segment.name, len(blob), segment)
    return _ShardTransfer("pickle", blob, len(blob))


def _release_transfer(transfer: Optional[_ShardTransfer]) -> None:
    """Close and unlink a transfer's segment (idempotent, crash-safe)."""
    if transfer is None or transfer.segment is None:
        return
    segment, transfer.segment = transfer.segment, None
    try:
        segment.close()
    finally:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


@dataclass
class _TransferStats:
    """Parent-side transfer accounting for one run."""

    bytes_shipped: int = 0
    shm_segments: int = 0

    def add(self, transfer: _ShardTransfer) -> None:
        self.bytes_shipped += transfer.nbytes
        if transfer.kind == "shm":
            self.shm_segments += 1


class ParallelCleaner:
    """Clean a query log on several CPU cores.

    Same contract as :class:`~repro.pipeline.streaming.StreamingCleaner`:
    the clean log matches the batch pipeline record for record, global
    artifacts (registry / SWS / overview) are out of scope.  After
    :meth:`run`, :attr:`stats` holds the :class:`ParallelStats` report.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        recorder: Optional[Recorder] = None,
        template_witnesses: Optional[Sequence[str]] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.recorder = Recorder() if recorder is None else recorder
        self.stats = ParallelStats(
            workers=self.config.execution.resolved_workers(), shard_count=0
        )
        #: everything the last run set aside (quarantine policy only).
        self.quarantine = QuarantineChannel()
        #: witness texts to pre-warm the run's parse caches with; when
        #: ``None``, the execution config's ``template_dict`` sidecar is
        #: loaded at :meth:`run` time instead.
        self._template_witnesses = template_witnesses

    # ------------------------------------------------------------------
    # Fault handling

    def _terminal_failure(
        self,
        shard: int,
        records: Sequence[LogRecord],
        attempts: int,
        detail: str,
        quarantine: QuarantineChannel,
    ) -> None:
        """A shard is out of retries: apply the error policy to it."""
        if self.config.error_policy == "strict":
            raise ShardFailure(shard, attempts, detail)
        if self.config.error_policy == "quarantine":
            for record in records:
                quarantine.add(record, SHARD_FAILURE, "shard", detail=detail)
        # lenient: the records are simply dropped; the merge-stage
        # counters still say how many shards were lost.

    def _run_inline(
        self,
        payloads: Dict[int, Tuple[int, List[LogRecord], PipelineConfig]],
        quarantine: QuarantineChannel,
        cache: Optional[TemplateCache] = None,
    ) -> Tuple[List[ShardReport], int, List[int], _TransferStats]:
        """Run shards in-process (one worker, or nothing to fan out).

        Same retry and error-policy contract as the pool path, minus the
        timeout (there is no separate process to abandon) and minus the
        codec — the records never leave the parent, so encoding them
        would be pure overhead.
        """
        execution = self.config.execution
        max_attempts = execution.max_shard_retries + 1
        reports: List[ShardReport] = []
        retried = 0
        failed: List[int] = []
        for shard, payload in sorted(payloads.items()):
            attempt = 0
            while True:
                attempt += 1
                try:
                    reports.append(_clean_shard(payload, cache))
                    break
                except RecordFailure:
                    raise  # strict-policy verdict, not a fault — no retry
                except Exception as exc:
                    if attempt >= max_attempts:
                        self._terminal_failure(
                            shard, payload[1], attempt, repr(exc), quarantine
                        )
                        failed.append(shard)
                        break
                    retried += 1
                    if execution.retry_backoff:
                        time.sleep(
                            execution.retry_backoff * 2 ** (attempt - 1)
                        )
        return reports, retried, failed, _TransferStats()

    def _run_pool(
        self,
        payloads: Dict[int, Tuple[int, List[LogRecord], PipelineConfig]],
        workers: int,
        quarantine: QuarantineChannel,
    ) -> Tuple[List[ShardReport], int, List[int], _TransferStats]:
        """Fan the shards out over a process pool, re-queueing failures.

        Each round submits every still-pending shard and waits for the
        wave to finish.  A crashed worker poisons the whole pool
        (``BrokenProcessPool`` fails every in-flight future), so the
        pool is rebuilt and *all* pending shards get one attempt
        charged — innocents succeed on the next round, and the
        accounting stays bounded: no shard is ever submitted more than
        ``max_shard_retries + 1`` times.  Each shard is encoded exactly
        once; its buffer (or shm segment) is reused across retries and
        released the moment the shard completes or terminally fails.
        """
        execution = self.config.execution
        max_attempts = execution.max_shard_retries + 1
        pending = {shard: payload[1] for shard, payload in payloads.items()}
        attempts = {shard: 0 for shard in payloads}
        errors: Dict[int, str] = {}
        reports: List[ShardReport] = []
        retried = 0
        failed: List[int] = []
        transfers: Dict[int, _ShardTransfer] = {}
        transfer_stats = _TransferStats()
        reuse = execution.pool_reuse
        if reuse:
            pool = get_worker_pool(workers)
        else:
            pool = WorkerPool(min(workers, len(payloads)), seed=_POOL_SEED)
        round_number = 0
        try:
            while pending:
                for shard in [
                    s for s in sorted(pending) if attempts[s] >= max_attempts
                ]:
                    self._terminal_failure(
                        shard,
                        pending[shard],
                        attempts[shard],
                        errors.get(shard, "exhausted retries"),
                        quarantine,
                    )
                    failed.append(shard)
                    del pending[shard]
                    _release_transfer(transfers.pop(shard, None))
                if not pending:
                    break
                round_number += 1
                if round_number > 1:
                    retried += len(pending)
                    if execution.retry_backoff:
                        time.sleep(
                            execution.retry_backoff * 2 ** (round_number - 2)
                        )
                submitted: Dict[futures.Future, int] = {}
                broken = False
                for shard, records in sorted(pending.items()):
                    transfer = transfers.get(shard)
                    if transfer is None:
                        transfer = _encode_transfer(
                            records, execution.transfer
                        )
                        transfers[shard] = transfer
                        transfer_stats.add(transfer)
                    try:
                        future = pool.submit(
                            _clean_shard_encoded,
                            (
                                shard,
                                transfer.kind,
                                transfer.data,
                                transfer.nbytes,
                                self.config,
                            ),
                        )
                    except BrokenProcessPool as exc:
                        # A warm worker died while the wave was still
                        # being submitted (cold pools never see this —
                        # their workers are still forking).  Stop
                        # submitting; already-submitted futures surface
                        # the same crash below.
                        broken = True
                        attempts[shard] += 1
                        errors[shard] = f"worker crashed: {exc!r}"
                        break
                    submitted[future] = shard
                timeout = None
                if execution.task_timeout is not None:
                    # The budget is per shard; a wave wider than the pool
                    # runs its shards in several passes.
                    waves = -(-len(submitted) // pool.workers)
                    timeout = execution.task_timeout * waves
                done, not_done = futures.wait(set(submitted), timeout=timeout)
                for future in done:
                    shard = submitted[future]
                    try:
                        report = future.result()
                    except RecordFailure:
                        raise  # strict-policy verdict — no retry
                    except BrokenProcessPool as exc:
                        broken = True
                        attempts[shard] += 1
                        errors[shard] = f"worker crashed: {exc!r}"
                    except Exception as exc:
                        attempts[shard] += 1
                        errors[shard] = repr(exc)
                    else:
                        transfer = transfers.pop(shard, None)
                        if transfer is not None:
                            report.transfer = transfer.kind
                            report.bytes_shipped = transfer.nbytes
                            _release_transfer(transfer)
                        reports.append(report)
                        del pending[shard]
                for future in not_done:
                    shard = submitted[future]
                    broken = True
                    attempts[shard] += 1
                    errors[shard] = (
                        f"shard exceeded task_timeout="
                        f"{execution.task_timeout}s"
                    )
                if broken:
                    # The pool may hold dead or still-busy workers;
                    # retire its executor and provision a fresh one for
                    # the next round (the warm pool object survives).
                    pool.rebuild()
        except BaseException:
            # A raising run must not leave shards queued in a warm pool
            # behind the caller's back: discard the pool (workers exit
            # once their current task drains); the registry re-provisions
            # lazily on the next run.
            if reuse:
                discard_worker_pool(workers)
            raise
        finally:
            for transfer in transfers.values():
                _release_transfer(transfer)
            transfers.clear()
            if not reuse:
                pool.shutdown(wait=False)
        return reports, retried, failed, transfer_stats

    def run_source(self, source: "LogSource") -> QueryLog:
        """Clean a :class:`~repro.store.sources.LogSource` end to end.

        The source is drained chunk by chunk straight into the sharder,
        so the input is never materialised as one list in the parent —
        peak parent-side memory is the bucketed shard payloads.  The
        clean log is identical to ``run(source.read())``.
        """
        return self.run(
            record for chunk in source.open_chunks() for record in chunk
        )

    def run(self, log: Iterable[LogRecord]) -> QueryLog:
        """Shard, fan out, clean, and re-merge into global time order.

        With a template dictionary (explicit witnesses or the execution
        config's ``template_dict`` sidecar) the run preloads one warmed
        cache and routes it to the shards: inline runs share it
        serially, pool runs ship it as the worker seed
        (:func:`set_worker_seed`), so freshly spawned workers start
        their persistent cache warm.  The parallel executor never saves
        the sidecar back — per-worker caches each hold a partition of
        the run's templates, and merging them would be a second
        cross-process collection pass; re-save from a batch or
        streaming run instead.
        """
        execution = self.config.execution
        workers = execution.resolved_workers()
        started = time.perf_counter()

        dict_cache: Optional[TemplateCache] = None
        dict_preloaded = 0
        if execution.parse_cache:
            witnesses = self._template_witnesses
            if witnesses is None and execution.template_dict is not None:
                witnesses = TemplateCache.load_dict(
                    execution.template_dict,
                    fold_variables=self.config.fold_variables,
                    strict_triple=self.config.strict_triple,
                )
            if witnesses:
                dict_cache = TemplateCache(
                    execution.parse_cache_size, lazy=execution.lazy_parse
                )
                dict_preloaded = dict_cache.preload(
                    witnesses,
                    fold_variables=self.config.fold_variables,
                    strict_triple=self.config.strict_triple,
                )

        shards = shard_records(log, workers, execution.chunk_size)
        payloads = {
            index: (index, records, self.config)
            for index, records in enumerate(shards)
        }
        quarantine = QuarantineChannel()

        # Degenerate fan-outs run in-process: an empty log has zero
        # payloads and a tiny one a single payload — both would ask for
        # a zero/one-process pool — and one worker gains nothing from
        # the fork+pickle tax.
        if workers == 1 or len(payloads) <= 1:
            reports, retried, failed, transfer_stats = self._run_inline(
                payloads, quarantine, dict_cache
            )
        else:
            if dict_cache is not None:
                # Replaces any previous seed and retires existing pools
                # (they were spawned under the old seed); the new pool's
                # workers start their persistent caches dictionary-warm.
                set_worker_seed(
                    dict_cache,
                    fold_variables=self.config.fold_variables,
                    strict_triple=self.config.strict_triple,
                )
            reports, retried, failed, transfer_stats = self._run_pool(
                payloads, workers, quarantine
            )

        clock = time.perf_counter()
        cleaned = QueryLog(
            record for report in reports for record in report.clean_records
        )
        merge_seconds = time.perf_counter() - clock

        # Fold the workers' ledgers into one per-run ledger, then absorb
        # it into the cleaner's recorder (which may span several runs).
        run_metrics = PipelineMetrics()
        run_metrics.ensure_counters()
        stats = ParallelStats(workers=workers, shard_count=len(shards))
        run_interner = stats.interner
        for report in sorted(reports, key=lambda r: r.shard):
            stats.stats.merge(report.stats)
            run_metrics.merge(report.metrics)
            quarantine.merge(report.quarantine)
            # Fold the shard's template dictionary into the run-level
            # one (deterministic: shard order, then shard-local id
            # order, so the run ids are reproducible across runs).
            run_interner.merge(report.interner)
            report.clean_records = []  # keep the report, drop the payload
            stats.shards.append(report)
        stats.shards_retried = retried
        stats.shards_failed = len(failed)
        stats.bytes_shipped = transfer_stats.bytes_shipped
        stats.shm_segments = transfer_stats.shm_segments
        if dict_preloaded:
            # One preload event for the run's dictionary-warmed cache
            # (the shards' ledgers never see the preload — it happens
            # before any record flows).
            stats.stats.parse_dict_preloaded += dict_preloaded
            run_metrics.stage("parse").count(
                "parse_dict_preloaded", dict_preloaded
            )
        merge_stage = run_metrics.stage("merge")
        merge_stage.wall_seconds += merge_seconds
        merge_stage.calls += 1
        merge_stage.count("records_out", len(cleaned))
        merge_stage.count("shards_retried", retried)
        merge_stage.count("shards_failed", len(failed))
        merge_stage.count("bytes_shipped", transfer_stats.bytes_shipped)
        merge_stage.count("shm_segments", transfer_stats.shm_segments)
        # The run-level dictionary size: global distinct templates (the
        # "parse" counter carries the per-shard sum, like cache misses).
        merge_stage.count("interner_size", len(run_interner))
        if self.recorder.enabled:
            self.recorder.absorb(run_metrics)
            self.recorder.emit(
                {"event": "span", "stage": "merge", "seconds": merge_seconds}
            )
        stats.metrics = run_metrics
        stats.timings = StageTimings.from_metrics(run_metrics)
        stats.wall_seconds = time.perf_counter() - started
        self.stats = stats
        self.quarantine = quarantine
        return cleaned


def clean_log_parallel(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    *,
    workers: Optional[int] = None,
) -> Tuple[QueryLog, ParallelStats]:
    """One-call parallel clean: (clean log, parallel statistics).

    ``workers`` overrides ``config.execution.workers`` when given.
    """
    from dataclasses import replace

    effective = config or PipelineConfig()
    if workers is not None:
        effective = replace(
            effective, execution=replace(effective.execution, workers=workers)
        )
    cleaner = ParallelCleaner(effective)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
