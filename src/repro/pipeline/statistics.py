"""Run statistics — the "Statistics" result box of Fig. 1 and Table 5.

The overview aggregates every stage's counters: original size, SELECT
share, duplicates removed, final size, pattern census and the per-class
antipattern counts (distinct patterns and covered queries), exactly the
rows Table 5 reports for the SkyServer log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..antipatterns.types import (
    CTH_CANDIDATE,
    DF_STIFLE,
    DS_STIFLE,
    DW_STIFLE,
    SNC,
    AntipatternInstance,
)


@dataclass
class AntipatternCensus:
    """Distinct-pattern and query-coverage counts for one label."""

    distinct: int = 0
    instances: int = 0
    queries: int = 0


def census_by_label(
    instances: Sequence[AntipatternInstance],
) -> Dict[str, AntipatternCensus]:
    """Aggregate instances per label.

    ``distinct`` counts distinct pattern units (the paper's "1018 distinct
    DW-Stifles"), ``queries`` the statements covered by all instances.
    """
    units: Dict[str, set] = {}
    census: Dict[str, AntipatternCensus] = {}
    for instance in instances:
        row = census.setdefault(instance.label, AntipatternCensus())
        row.instances += 1
        row.queries += len(instance.queries)
        units.setdefault(instance.label, set()).add(instance.unit)
    for label, unit_set in units.items():
        census[label].distinct = len(unit_set)
    return census


@dataclass
class Overview:
    """The Table 5 "Results overview" of one pipeline run."""

    original_size: int = 0
    select_count: int = 0
    syntax_errors: int = 0
    non_select: int = 0
    after_dedup: int = 0
    duplicates_removed: int = 0
    final_size: int = 0
    pattern_count: int = 0
    max_pattern_frequency: int = 0
    antipatterns: Dict[str, AntipatternCensus] = field(default_factory=dict)
    cth_candidates_real: int = 0
    solved_counts: Dict[str, int] = field(default_factory=dict)
    queries_removed_by_solving: int = 0

    def percent(self, value: int) -> float:
        return 100.0 * value / self.original_size if self.original_size else 0.0

    def rows(self) -> List[Tuple[str, str]]:
        """Render the overview as (property, value) rows like Table 5."""

        def count_row(label: str) -> List[Tuple[str, str]]:
            row = self.antipatterns.get(label, AntipatternCensus())
            return [
                (f"Count of distinct {label}", str(row.distinct)),
                (f"Count of queries in all {label}", str(row.queries)),
            ]

        rows: List[Tuple[str, str]] = [
            ("Size of original query log", f"{self.original_size:,}"),
            (
                "Count of Select queries",
                f"{self.select_count:,} ({self.percent(self.select_count):.1f} %)",
            ),
            (
                "Size of log after deleting duplicates",
                f"{self.after_dedup:,} ({self.percent(self.after_dedup):.2f}%)",
            ),
            (
                "Final log size",
                f"{self.final_size:,} ({self.percent(self.final_size):.2f}%)",
            ),
            ("Count of patterns", f"{self.pattern_count:,}"),
            ("Maximal pattern frequency", f"{self.max_pattern_frequency:,}"),
        ]
        for label in (DW_STIFLE, DS_STIFLE, DF_STIFLE, SNC):
            if label in self.antipatterns:
                rows.extend(count_row(label))
        cth = self.antipatterns.get(CTH_CANDIDATE, AntipatternCensus())
        rows.append(("Count of distinct candidate CTH", str(cth.distinct)))
        rows.append(("Count of queries in all candidate CTH", str(cth.queries)))
        rows.append(("Count of real CTH (oracle)", str(self.cth_candidates_real)))
        return rows

    def format(self) -> str:
        """Plain-text rendering of :meth:`rows`."""
        rendered = self.rows()
        width = max(len(name) for name, _ in rendered)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rendered)
