"""The unified cleaning entry point: :func:`clean`.

One function, three execution paths.  *What* to compute is the
:class:`~repro.pipeline.config.PipelineConfig`; *how* to run it is its
:class:`~repro.pipeline.config.ExecutionConfig` (or the ``execution``
override).  Every path returns a
:class:`~repro.pipeline.framework.PipelineResult`:

==========  ==========================  =================================
mode        fills                       leaves ``None``
==========  ==========================  =================================
batch       every artifact              —
streaming   ``cleaned``,                dedup/parse/mining/registry/
            ``streaming_stats``         antipatterns/solve/SWS artifacts
parallel    ``cleaned``,                dedup/parse/mining/registry/
            ``parallel_stats``          antipatterns/solve/SWS artifacts
==========  ==========================  =================================

The clean log itself is always ``result.clean_log``, and every path
fills ``result.metrics`` — the per-stage observability ledger
(:class:`repro.obs.PipelineMetrics`) whose shared-stage counters are
identical across execution modes by contract.

The ``log`` argument accepts any log input — a :class:`QueryLog`, a
path (CSV / JSONL / columnar store, sniffed by
:func:`repro.store.sources.sniff_format`), or any
:class:`~repro.store.sources.LogSource`.  Path and source inputs are
consumed *out of core*: streaming feeds them chunk by chunk through the
:class:`~repro.pipeline.streaming.StreamingCleaner` (never holding the
whole log), parallel drains them straight into the sharder, and batch —
which needs the whole log for its global artifacts — materialises them
first.  ``checkpoint_dir`` / ``resume`` add kill-resilience to
streaming runs; see :mod:`repro.store.checkpoint`.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence, Union

from ..errors import QuarantineChannel
from ..log.models import LogRecord, QueryLog
from ..obs import Recorder
from .config import EXECUTION_MODES, ExecutionConfig, PipelineConfig
from .framework import CleaningPipeline, PipelineResult

LogInput = Union[QueryLog, Sequence[LogRecord], str, Path, "LogSource"]  # noqa: F821


def clean(
    log: LogInput,
    config: Optional[PipelineConfig] = None,
    *,
    execution: Optional[Union[ExecutionConfig, str]] = None,
    recorder: Optional[Recorder] = None,
    parse_cache: Optional[bool] = None,
    lazy_parse: Optional[bool] = None,
    transfer: Optional[str] = None,
    template_dict: Optional[Union[str, Path]] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> PipelineResult:
    """Clean ``log`` and return the run's :class:`PipelineResult`.

    :param log: the query log to clean — a :class:`QueryLog`, a path to
        an on-disk log (``.csv`` / ``.jsonl`` file or columnar store
        directory), or any :class:`~repro.store.sources.LogSource`.
        Paths and sources stream through the non-batch executors in
        bounded memory.
    :param config: pipeline parameters; defaults to
        :class:`PipelineConfig()`.
    :param execution: overrides ``config.execution`` for this call.  An
        :class:`ExecutionConfig`, or just a mode string (``"batch"``,
        ``"streaming"``, ``"parallel"``) to switch modes with default
        knobs.
    :param parse_cache: overrides the execution config's ``parse_cache``
        flag for this call — ``False`` forces every statement down the
        full parse path (the clean log is identical either way; only
        speed and the ``parse_cache_*`` counters change).
    :param lazy_parse: overrides the execution config's ``lazy_parse``
        flag for this call — ``False`` makes every cache hit splice its
        SQL text and AST eagerly instead of deferring them until a
        consumer asks.  Byte-identical output either way; only speed and
        the ``parse_lazy_hits`` / ``parse_eager`` /
        ``parse_materialised`` counters change.
    :param transfer: overrides the execution config's ``transfer`` mode
        for this call — how parallel shards reach the workers:
        ``"pickle"`` ships each shard's columnar buffer as one pickle-5
        bytes object, ``"shm"`` hands workers a shared-memory segment
        to attach to.  Byte-identical output either way; only transfer
        cost and the merge-stage ``bytes_shipped`` / ``shm_segments``
        counters change.  Ignored by batch and streaming runs.
    :param template_dict: overrides the execution config's
        ``template_dict`` path for this call — a persistent template
        dictionary sidecar the run preloads its parse cache from and
        (batch / streaming) re-saves on finish.  Witnesses are
        re-parsed through the run's own cold path, so a stale or
        corrupt dictionary can only cost speed, never output.  When no
        dictionary is configured and ``log`` is a columnar store, the
        store's own template witnesses warm the run instead (stores
        remember every template they have interned).
    :param recorder: observability recorder
        (:class:`repro.obs.Recorder`).  By default a fresh one is
        created, so ``result.metrics`` always carries the run's
        per-stage ledger; pass your own to attach trace sinks, or
        :data:`repro.obs.NULL` to disable collection.  ``clean`` never
        closes a caller-supplied recorder — call ``recorder.close()``
        yourself when its sinks need flushing.
    :param checkpoint_dir: persist per-chunk progress into this
        directory so a killed run can be resumed (streaming mode only —
        batch and parallel have no serialisable mid-run state and
        reject it).
    :param resume: continue a run from ``checkpoint_dir`` instead of
        starting over.  The checkpoint must match the source and
        configuration it was written under.

    Example::

        import repro

        result = repro.clean(log)                          # batch
        result = repro.clean(log, execution="parallel")    # all cores
        result = repro.clean("queries.csv")                # from disk
        result = repro.clean(                              # out of core
            "skyserver.columnar",
            execution="streaming",
            checkpoint_dir="run-ckpt",
        )
        result = repro.clean(                              # after a kill
            "skyserver.columnar",
            execution="streaming",
            checkpoint_dir="run-ckpt",
            resume=True,
        )
        clean_log = result.clean_log
        result.metrics.as_dict()          # per-stage counters + timings
    """
    from ..store.sources import ColumnarSource, LogSource, as_source

    effective = config or PipelineConfig()
    if execution is not None:
        if isinstance(execution, str):
            execution = ExecutionConfig(mode=execution)
        effective = replace(effective, execution=execution)
    if parse_cache is not None:
        effective = replace(
            effective,
            execution=replace(effective.execution, parse_cache=parse_cache),
        )
    if lazy_parse is not None:
        effective = replace(
            effective,
            execution=replace(effective.execution, lazy_parse=lazy_parse),
        )
    if transfer is not None:
        effective = replace(
            effective,
            execution=replace(effective.execution, transfer=transfer),
        )
    if template_dict is not None:
        effective = replace(
            effective,
            execution=replace(
                effective.execution, template_dict=str(template_dict)
            ),
        )
    active = Recorder() if recorder is None else recorder
    metrics = active.metrics if active.enabled else None
    mode = effective.execution.mode

    if checkpoint_dir is not None and mode != "streaming":
        raise ValueError(
            "checkpoint_dir requires execution mode 'streaming' "
            f"(got {mode!r}): batch and parallel runs have no "
            "serialisable mid-run state"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")

    # Resolve the input.  A plain QueryLog on the batch/in-memory paths
    # keeps its historical treatment (no source indirection at all); a
    # path or LogSource goes out of core.
    is_memory_log = isinstance(log, QueryLog)
    io_channel: Optional[QuarantineChannel] = None
    source: Optional[LogSource] = None
    owned = False
    if not is_memory_log:
        io_channel = QuarantineChannel()
        source, owned = as_source(
            log,
            chunk_records=effective.execution.source_chunk_records,
            errors=effective.error_policy,
            channel=io_channel,
        )

    # Store-auto-warm: a columnar store carries one witness statement
    # per template it has interned; without an explicit dictionary
    # those warm this run's parse caches (witnesses re-parse through
    # the cold path, so this can only ever change speed, not output).
    template_witnesses: Optional[Sequence[str]] = None
    if (
        effective.execution.parse_cache
        and effective.execution.template_dict is None
        and isinstance(source, ColumnarSource)
    ):
        template_witnesses = source.template_witnesses() or None

    try:
        if mode == "batch":
            if source is not None:
                log = source.read()
            result = CleaningPipeline(effective).run(
                log, recorder=active, template_witnesses=template_witnesses
            )
            if io_channel is not None and io_channel:
                # Raw-input rejects (rows that never became records)
                # surface on the result next to the pipeline's own.
                merged = QuarantineChannel()
                merged.merge(io_channel)
                merged.merge(result.quarantine)
                result.quarantine = merged
            return result
        if mode == "streaming":
            from ..store.checkpoint import clean_streaming_source
            from ..store.sources import InMemorySource
            from .streaming import StreamingCleaner

            if source is None and checkpoint_dir is None:
                # The classic in-memory streaming path, untouched.
                cleaner = StreamingCleaner(
                    effective,
                    recorder=active,
                    template_witnesses=template_witnesses,
                )
                cleaned = cleaner.run(log)
                return PipelineResult(
                    config=effective,
                    original=log,
                    cleaned=cleaned,
                    streaming_stats=cleaner.stats,
                    execution_mode="streaming",
                    metrics=metrics,
                    quarantine=cleaner.quarantine,
                )
            if source is None:
                source = InMemorySource(
                    log,
                    chunk_records=effective.execution.source_chunk_records,
                )
                owned = True
            cleaned, cleaner = clean_streaming_source(
                source,
                effective,
                active,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                template_witnesses=template_witnesses,
            )
            quarantine = QuarantineChannel()
            if io_channel is not None:
                quarantine.merge(io_channel)
            quarantine.merge(cleaner.quarantine)
            return PipelineResult(
                config=effective,
                original=log if is_memory_log else None,
                cleaned=cleaned,
                streaming_stats=cleaner.stats,
                execution_mode="streaming",
                metrics=metrics,
                quarantine=quarantine,
            )
        if mode == "parallel":
            from .parallel import ParallelCleaner

            parallel_cleaner = ParallelCleaner(
                effective,
                recorder=active,
                template_witnesses=template_witnesses,
            )
            if source is None:
                cleaned = parallel_cleaner.run(log)
            else:
                cleaned = parallel_cleaner.run_source(source)
            quarantine = QuarantineChannel()
            if io_channel is not None:
                quarantine.merge(io_channel)
            quarantine.merge(parallel_cleaner.quarantine)
            return PipelineResult(
                config=effective,
                original=log if is_memory_log else None,
                cleaned=cleaned,
                parallel_stats=parallel_cleaner.stats,
                execution_mode="parallel",
                metrics=metrics,
                quarantine=quarantine,
            )
        raise ValueError(  # pragma: no cover - ExecutionConfig validates mode
            f"unknown execution mode {mode!r}; "
            f"expected one of {EXECUTION_MODES}"
        )
    finally:
        if owned and source is not None:
            source.close()
