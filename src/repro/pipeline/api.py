"""The unified cleaning entry point: :func:`clean`.

One function, three execution paths.  *What* to compute is the
:class:`~repro.pipeline.config.PipelineConfig`; *how* to run it is its
:class:`~repro.pipeline.config.ExecutionConfig` (or the ``execution``
override).  Every path returns a
:class:`~repro.pipeline.framework.PipelineResult`:

==========  ==========================  =================================
mode        fills                       leaves ``None``
==========  ==========================  =================================
batch       every artifact              —
streaming   ``cleaned``,                dedup/parse/mining/registry/
            ``streaming_stats``         antipatterns/solve/SWS artifacts
parallel    ``cleaned``,                dedup/parse/mining/registry/
            ``parallel_stats``          antipatterns/solve/SWS artifacts
==========  ==========================  =================================

The clean log itself is always ``result.clean_log``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..log.models import QueryLog
from .config import EXECUTION_MODES, ExecutionConfig, PipelineConfig
from .framework import CleaningPipeline, PipelineResult


def clean(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    *,
    execution: Optional[Union[ExecutionConfig, str]] = None,
) -> PipelineResult:
    """Clean ``log`` and return the run's :class:`PipelineResult`.

    :param log: the query log to clean.
    :param config: pipeline parameters; defaults to
        :class:`PipelineConfig()`.
    :param execution: overrides ``config.execution`` for this call.  An
        :class:`ExecutionConfig`, or just a mode string (``"batch"``,
        ``"streaming"``, ``"parallel"``) to switch modes with default
        knobs.

    Example::

        import repro

        result = repro.clean(log)                          # batch
        result = repro.clean(log, execution="parallel")    # all cores
        result = repro.clean(
            log,
            execution=repro.ExecutionConfig(mode="parallel", workers=4),
        )
        clean_log = result.clean_log
    """
    effective = config or PipelineConfig()
    if execution is not None:
        if isinstance(execution, str):
            execution = ExecutionConfig(mode=execution)
        effective = replace(effective, execution=execution)

    mode = effective.execution.mode
    if mode == "batch":
        return CleaningPipeline(effective).run(log)
    if mode == "streaming":
        from .streaming import StreamingCleaner

        cleaner = StreamingCleaner(effective)
        cleaned = cleaner.run(log)
        return PipelineResult(
            config=effective,
            original=log,
            cleaned=cleaned,
            streaming_stats=cleaner.stats,
            execution_mode="streaming",
        )
    if mode == "parallel":
        from .parallel import ParallelCleaner

        parallel_cleaner = ParallelCleaner(effective)
        cleaned = parallel_cleaner.run(log)
        return PipelineResult(
            config=effective,
            original=log,
            cleaned=cleaned,
            parallel_stats=parallel_cleaner.stats,
            execution_mode="parallel",
        )
    raise ValueError(  # pragma: no cover - ExecutionConfig validates mode
        f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
    )
