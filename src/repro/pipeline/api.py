"""The unified cleaning entry point: :func:`clean`.

One function, three execution paths.  *What* to compute is the
:class:`~repro.pipeline.config.PipelineConfig`; *how* to run it is its
:class:`~repro.pipeline.config.ExecutionConfig` (or the ``execution``
override).  Every path returns a
:class:`~repro.pipeline.framework.PipelineResult`:

==========  ==========================  =================================
mode        fills                       leaves ``None``
==========  ==========================  =================================
batch       every artifact              —
streaming   ``cleaned``,                dedup/parse/mining/registry/
            ``streaming_stats``         antipatterns/solve/SWS artifacts
parallel    ``cleaned``,                dedup/parse/mining/registry/
            ``parallel_stats``          antipatterns/solve/SWS artifacts
==========  ==========================  =================================

The clean log itself is always ``result.clean_log``, and every path
fills ``result.metrics`` — the per-stage observability ledger
(:class:`repro.obs.PipelineMetrics`) whose shared-stage counters are
identical across execution modes by contract.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..log.models import QueryLog
from ..obs import Recorder
from .config import EXECUTION_MODES, ExecutionConfig, PipelineConfig
from .framework import CleaningPipeline, PipelineResult


def clean(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    *,
    execution: Optional[Union[ExecutionConfig, str]] = None,
    recorder: Optional[Recorder] = None,
    parse_cache: Optional[bool] = None,
) -> PipelineResult:
    """Clean ``log`` and return the run's :class:`PipelineResult`.

    :param log: the query log to clean.
    :param config: pipeline parameters; defaults to
        :class:`PipelineConfig()`.
    :param execution: overrides ``config.execution`` for this call.  An
        :class:`ExecutionConfig`, or just a mode string (``"batch"``,
        ``"streaming"``, ``"parallel"``) to switch modes with default
        knobs.
    :param parse_cache: overrides the execution config's ``parse_cache``
        flag for this call — ``False`` forces every statement down the
        full parse path (the clean log is identical either way; only
        speed and the ``parse_cache_*`` counters change).
    :param recorder: observability recorder
        (:class:`repro.obs.Recorder`).  By default a fresh one is
        created, so ``result.metrics`` always carries the run's
        per-stage ledger; pass your own to attach trace sinks, or
        :data:`repro.obs.NULL` to disable collection.  ``clean`` never
        closes a caller-supplied recorder — call ``recorder.close()``
        yourself when its sinks need flushing.

    Example::

        import repro

        result = repro.clean(log)                          # batch
        result = repro.clean(log, execution="parallel")    # all cores
        result = repro.clean(log, parse_cache=False)       # full parses
        result = repro.clean(
            log,
            execution=repro.ExecutionConfig(mode="parallel", workers=4),
        )
        clean_log = result.clean_log
        result.metrics.as_dict()          # per-stage counters + timings
    """
    effective = config or PipelineConfig()
    if execution is not None:
        if isinstance(execution, str):
            execution = ExecutionConfig(mode=execution)
        effective = replace(effective, execution=execution)
    if parse_cache is not None:
        effective = replace(
            effective,
            execution=replace(effective.execution, parse_cache=parse_cache),
        )
    active = Recorder() if recorder is None else recorder
    metrics = active.metrics if active.enabled else None

    mode = effective.execution.mode
    if mode == "batch":
        return CleaningPipeline(effective).run(log, recorder=active)
    if mode == "streaming":
        from .streaming import StreamingCleaner

        cleaner = StreamingCleaner(effective, recorder=active)
        cleaned = cleaner.run(log)
        return PipelineResult(
            config=effective,
            original=log,
            cleaned=cleaned,
            streaming_stats=cleaner.stats,
            execution_mode="streaming",
            metrics=metrics,
            quarantine=cleaner.quarantine,
        )
    if mode == "parallel":
        from .parallel import ParallelCleaner

        parallel_cleaner = ParallelCleaner(effective, recorder=active)
        cleaned = parallel_cleaner.run(log)
        return PipelineResult(
            config=effective,
            original=log,
            cleaned=cleaned,
            parallel_stats=parallel_cleaner.stats,
            execution_mode="parallel",
            metrics=metrics,
            quarantine=parallel_cleaner.quarantine,
        )
    raise ValueError(  # pragma: no cover - ExecutionConfig validates mode
        f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
    )
