"""The cleaning pipeline (Fig. 1): configuration, framework, statistics.

:func:`clean` is the one entry point; batch / streaming / parallel are
execution modes of the same pipeline, selected by
:class:`ExecutionConfig`.
"""

from ..errors import (
    ERROR_POLICIES,
    QuarantineChannel,
    QuarantinedRecord,
    RecordFailure,
    ShardFailure,
)
from ..obs import (
    InMemorySink,
    JsonlSink,
    NullRecorder,
    PipelineMetrics,
    Recorder,
    StageMetrics,
)
from .api import clean
from .config import EXECUTION_MODES, ExecutionConfig, PipelineConfig
from .framework import (
    BlockCleanResult,
    CleaningPipeline,
    ParseStageResult,
    PipelineResult,
    clean_block,
    clean_log,
    dedup_stage,
    detect_stage,
    mine_stage,
    parse_log,
    parse_stage,
    registry_stage,
    solve_stage,
    validate_stage,
)
from .parallel import (
    ParallelCleaner,
    ParallelStats,
    ShardReport,
    StageTimings,
    WorkerPool,
    clean_log_parallel,
    get_worker_pool,
    set_worker_seed,
    shard_index,
    shard_records,
    shutdown_worker_pools,
)
from .report import export_report
from .statistics import AntipatternCensus, Overview, census_by_label
from .streaming import StreamingCleaner, StreamingStats, clean_log_streaming

__all__ = [
    # unified API
    "clean",
    "EXECUTION_MODES",
    "ExecutionConfig",
    # batch framework
    "PipelineConfig",
    "CleaningPipeline",
    "ParseStageResult",
    "PipelineResult",
    "parse_log",
    # error policies / quarantine (re-exported from repro.errors)
    "ERROR_POLICIES",
    "QuarantineChannel",
    "QuarantinedRecord",
    "RecordFailure",
    "ShardFailure",
    # stage functions (shared by all execution paths)
    "validate_stage",
    "dedup_stage",
    "parse_stage",
    "mine_stage",
    "detect_stage",
    "registry_stage",
    "solve_stage",
    "clean_block",
    "BlockCleanResult",
    # streaming
    "StreamingCleaner",
    "StreamingStats",
    # parallel
    "ParallelCleaner",
    "ParallelStats",
    "ShardReport",
    "StageTimings",
    "WorkerPool",
    "clean_log_parallel",
    "get_worker_pool",
    "set_worker_seed",
    "shard_index",
    "shard_records",
    "shutdown_worker_pools",
    # statistics / report
    "export_report",
    "AntipatternCensus",
    "Overview",
    "census_by_label",
    # observability (re-exported from repro.obs)
    "Recorder",
    "NullRecorder",
    "PipelineMetrics",
    "StageMetrics",
    "InMemorySink",
    "JsonlSink",
    # deprecated one-call wrappers
    "clean_log",
    "clean_log_streaming",
]
