"""The cleaning pipeline (Fig. 1): configuration, framework, statistics."""

from .config import PipelineConfig
from .framework import (
    CleaningPipeline,
    ParseStageResult,
    PipelineResult,
    clean_log,
    parse_log,
)
from .report import export_report
from .statistics import AntipatternCensus, Overview, census_by_label
from .streaming import StreamingCleaner, StreamingStats, clean_log_streaming

__all__ = [
    "export_report",
    "StreamingCleaner",
    "StreamingStats",
    "clean_log_streaming",
    "PipelineConfig",
    "CleaningPipeline",
    "ParseStageResult",
    "PipelineResult",
    "clean_log",
    "parse_log",
    "AntipatternCensus",
    "Overview",
    "census_by_label",
]
