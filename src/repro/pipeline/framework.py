"""The cleaning framework — Fig. 1's processing pipeline, end to end.

Stages (each producing an inspectable artifact, like the figure's boxes):

1. **Delete duplicates** (Section 5.2) → pre-clean query log.
2. **Parse statements** (Section 5.3) → parsed query log; syntax errors
   and non-SELECT statements are excluded and counted.
3. **Mine patterns** (Section 4.1) → blocks, pattern instances, registry
   with frequency / userPopularity.
4. **Detect antipatterns** (Section 4.2) → labelled instances; the
   registry rows are marked so Tables 6/7 can be ranked.
5. **Optionally scan for SWS** (Section 6.5).
6. **Solve antipatterns** (Section 5.5) → clean query log + statistics.

Each stage is a module-level function so that every execution path —
batch (:class:`CleaningPipeline`), streaming
(:class:`~repro.pipeline.streaming.StreamingCleaner`) and parallel
(:class:`~repro.pipeline.parallel.ParallelCleaner`) — composes the *same*
stage code and only differs in how it feeds records through them.

:func:`CleaningPipeline.run` executes all of it; the intermediate results
live on the returned :class:`PipelineResult`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from ..antipatterns.base import run_detectors
from ..antipatterns.cth import CthCensusRow, cth_census
from ..antipatterns.types import CTH_CANDIDATE, AntipatternInstance
from ..errors import (
    NESTING_DEPTH,
    PARSE_ERROR,
    QuarantineChannel,
    RecordFailure,
    record_fault,
)
from ..log.dedup import DedupResult, delete_duplicates
from ..log.models import LogRecord, QueryLog
from ..obs import NULL, PipelineMetrics, Recorder
from ..patterns.miner import MiningResult, mine, segment_block
from ..patterns.models import Block, ParsedQuery
from ..patterns.registry import PatternRegistry
from ..patterns.sws import SwsReport, detect_sws
from ..rewrite.solver import SolveResult, remove, solve
from ..skeleton.cache import LazyParsedQuery, TemplateCache, rebind_query
from ..skeleton.interner import TemplateInterner
from ..sqlparser import SqlError, UnsupportedStatementError, parse
from .config import PipelineConfig
from .statistics import Overview, census_by_label

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .parallel import ParallelStats
    from .streaming import StreamingStats


#: Records per memo window in :func:`parse_log` — repeated statement
#: texts inside a window resolve through one dict probe instead of a
#: cache fetch + interner check.  Matches the shard codec's chunk-memo
#: scale; cleared (not LRU-evicted) at the boundary so the dict never
#: grows past the window.
_PARSE_MEMO_CHUNK = 4096


@dataclass
class ParseStageResult:
    """Outcome of the parse stage (Section 5.3).

    ``quarantined`` is only populated under the ``quarantine`` error
    policy: the records that failed to parse and were routed into the
    run's :class:`~repro.errors.QuarantineChannel` instead of being
    counted as syntax errors.
    """

    queries: List[ParsedQuery] = field(default_factory=list)
    syntax_errors: List[Tuple[LogRecord, str]] = field(default_factory=list)
    non_select: List[LogRecord] = field(default_factory=list)
    quarantined: List[LogRecord] = field(default_factory=list)

    @property
    def parsed_log(self) -> QueryLog:
        """The parsed query log as a plain log (SELECTs that parsed)."""
        return QueryLog(query.record for query in self.queries)


# ----------------------------------------------------------------------
# Stage functions — the shared kernel of all execution paths
#
# Every stage function takes an optional ``recorder``
# (:class:`~repro.obs.Recorder`); when given, the stage times itself as
# one span and books its counters (see ``repro.obs.STAGE_COUNTERS``), so
# that every executor composing these functions emits identical
# per-stage metrics.  Without a recorder the functions behave exactly as
# before — :data:`repro.obs.NULL` makes instrumentation a no-op.


def validate_stage(
    log: QueryLog,
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
    channel: Optional[QuarantineChannel] = None,
) -> QueryLog:
    """Stage 0: reject structurally unusable records.

    :func:`repro.errors.record_fault` is the shared verdict — a record
    with a non-finite timestamp or a non-string statement cannot be
    ordered or parsed, so no stage downstream of this one ever sees it.
    What happens to the rejects is the config's ``error_policy``:
    ``strict`` raises :class:`~repro.errors.RecordFailure`, ``lenient``
    drops and counts, ``quarantine`` also captures them in ``channel``.
    """
    recorder = recorder or NULL
    policy = config.error_policy
    with recorder.span("validate"):
        kept: List[LogRecord] = []
        dropped = 0
        for record in log:
            reason = record_fault(record)
            if reason is None:
                kept.append(record)
                continue
            if policy == "strict":
                raise RecordFailure(record, reason, "validate")
            dropped += 1
            if policy == "quarantine" and channel is not None:
                channel.add(record, reason, "validate")
        result = log if dropped == 0 else QueryLog(kept)
    recorder.count("validate", "records_in", len(kept) + dropped)
    recorder.count("validate", "records_out", len(kept))
    recorder.count("validate", "records_quarantined", dropped)
    return result


def dedup_stage(
    log: QueryLog,
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
) -> DedupResult:
    """Stage 1: delete duplicates (Section 5.2)."""
    recorder = recorder or NULL
    with recorder.span("dedup"):
        result = delete_duplicates(log, config.dedup_threshold)
    recorder.count("dedup", "records_in", len(log))
    recorder.count("dedup", "records_out", len(result.log))
    recorder.count("dedup", "duplicates_removed", result.removed)
    return result


def parse_log(
    log: Iterable[LogRecord],
    *,
    fold_variables: bool = False,
    strict_triple: bool = False,
    recorder: Optional[Recorder] = None,
    policy: str = "strict",
    channel: Optional[QuarantineChannel] = None,
    cache: Optional[TemplateCache] = None,
    interner: Optional[TemplateInterner] = None,
) -> ParseStageResult:
    """Parse every statement; classify failures (Fig. 1's parse stage).

    Real logs repeat statement texts heavily (the whole premise of the
    paper), so parsing and feature extraction are cached per distinct
    statement text: a repeated statement reuses the immutable AST,
    template and clause features and only swaps in its own log record.

    With a :class:`~repro.skeleton.cache.TemplateCache` the reuse goes
    further: statements that differ *only in constants* are instantiated
    from the cached template of their fingerprint class in one lexer
    pass, skipping the parser entirely (the fast path).  The cache
    object may outlive this call (streaming feeds one record at a time);
    a given cache must only ever serve one ``(fold_variables,
    strict_triple)`` combination, which holds because every caller
    derives both from a single config.  Without a cache the classic
    per-run dict keyed by exact text is used.

    Parse failures are part of the paper's accounting, not exceptions:
    under ``strict`` and ``lenient`` they keep the classic
    counted-as-``syntax_errors`` treatment (Section 5.3).  Under
    ``quarantine`` they are booked as ``records_quarantined`` and routed
    into ``channel`` with a :data:`~repro.errors.PARSE_ERROR` or
    :data:`~repro.errors.NESTING_DEPTH` reason instead.

    Every emitted query carries the run-scoped ``interned_id`` of its
    template fingerprint, assigned by ``interner`` (one is created for
    this call when the caller has none).  Each record's id is verified
    against the interner even on a cache hit — a prewarmed or pickled
    :class:`~repro.skeleton.cache.TemplateCache` may carry ids from a
    *previous* run's interner, which must never leak into this one.
    (Exception: a per-chunk memo of *emitted* outcomes lets records that
    repeat a statement text within the chunk skip the cache probe and
    the interner check — the first occurrence in the chunk already
    verified its id against this run's interner, and an interner never
    forgets an id within a run.)

    A *lazy* cache (``TemplateCache(lazy=True)``) makes fingerprint hits
    emit :class:`~repro.skeleton.cache.LazyParsedQuery` objects that
    defer the splice and the AST until a downstream consumer actually
    touches them; the count of lazy emissions is booked as
    ``parse_lazy_hits`` (with ``parse_eager`` its complement, so
    ``parse_lazy_hits + parse_eager == records_out`` is a ledger law).

    Every statement that reaches the full parser — a cache miss's
    one-shot :meth:`~repro.skeleton.cache.TemplateCache.build`, or a
    cacheless full parse — is booked as ``parse_cold``, so with a cache
    in play ``parse_cold == parse_cache_misses`` is another ledger law.
    """
    recorder = recorder or NULL
    result = ParseStageResult()
    if interner is None:
        interner = TemplateInterner()
    base_interned = len(interner)
    if cache is not None:
        base_hits = cache.hits
        base_misses = cache.misses
        base_evictions = cache.evictions
    lazy_emitted = 0
    cold_parses = 0
    with recorder.span("parse"):
        #: sql text -> prototype ParsedQuery, or an (error, reason) pair
        #: (only consulted when no TemplateCache was provided).
        exact: dict = {}
        #: sql text -> this run's emitted outcome (query with verified
        #: interned_id, or failure tuple); bounded by clearing whenever
        #: it reaches the chunk size, so it stays hot-loop small while
        #: still short-circuiting the heavy repetition real logs show.
        memo: dict = {}
        memo_get = memo.get
        intern = interner.intern
        append_query = result.queries.append
        for record in log:
            sql = record.sql
            cached = memo_get(sql)
            memo_hit = cached is not None
            if memo_hit:
                if cache is not None:
                    # The memo shortcut stands in for a cache probe that
                    # would have hit; book it so the cache's
                    # hits + misses == records_in ledger law survives.
                    cache.hits += 1
            else:
                if cache is not None:
                    cached = cache.fetch(record)
                else:
                    cached = exact.get(sql)
                if cached is None:
                    cold_parses += 1
                    try:
                        if cache is not None:
                            # One-shot cold path: the scanner pass the
                            # miss already paid for feeds the parser,
                            # and template/clauses/splice come from a
                            # single normalisation (parse engine v3).
                            cached = cache.build(
                                record,
                                fold_variables=fold_variables,
                                strict_triple=strict_triple,
                                interner=interner,
                            )
                        else:
                            statement = parse(sql)
                            cached = ParsedQuery.from_statement(
                                record,
                                statement,
                                fold_variables=fold_variables,
                                strict_triple=strict_triple,
                                interner=interner,
                            )
                    except SqlError as error:
                        cached = (error, PARSE_ERROR)
                    except RecursionError:
                        # Pathologically deep expressions (hundreds of
                        # nested conjuncts) exceed the tree-walker
                        # capacity; classify them like any other
                        # unprocessable statement instead of crashing.
                        cached = (
                            SqlError(
                                "statement exceeds supported nesting depth"
                            ),
                            NESTING_DEPTH,
                        )
                    if cache is not None:
                        # build() admits successes itself; only failures
                        # still need the explicit store.
                        if type(cached) is tuple:
                            cache.store(sql, cached)
                    else:
                        exact[sql] = cached
                if len(memo) >= _PARSE_MEMO_CHUNK:
                    memo.clear()
            if isinstance(cached, tuple):
                if not memo_hit:
                    memo[sql] = cached
                error, reason = cached
                if isinstance(error, UnsupportedStatementError):
                    result.non_select.append(record)
                elif policy == "quarantine":
                    result.quarantined.append(record)
                    if channel is not None:
                        channel.add(record, reason, "parse", detail=str(error))
                else:
                    result.syntax_errors.append((record, str(error)))
                continue
            if memo_hit:
                query = rebind_query(cached, record, cached.interned_id)
            else:
                query = rebind_query(cached, record, intern(cached.template_id))
                memo[sql] = query
            if type(query) is LazyParsedQuery:
                lazy_emitted += 1
            append_query(query)
    recorder.count(
        "parse",
        "records_in",
        len(result.queries)
        + len(result.syntax_errors)
        + len(result.non_select)
        + len(result.quarantined),
    )
    recorder.count("parse", "records_out", len(result.queries))
    recorder.count("parse", "parse_lazy_hits", lazy_emitted)
    recorder.count("parse", "parse_eager", len(result.queries) - lazy_emitted)
    recorder.count("parse", "parse_cold", cold_parses)
    recorder.count("parse", "syntax_errors", len(result.syntax_errors))
    recorder.count("parse", "non_select", len(result.non_select))
    recorder.count("parse", "records_quarantined", len(result.quarantined))
    recorder.count("parse", "interner_size", len(interner) - base_interned)
    if cache is not None:
        recorder.count("parse", "parse_cache_hits", cache.hits - base_hits)
        recorder.count("parse", "parse_cache_misses", cache.misses - base_misses)
        recorder.count(
            "parse", "parse_cache_evictions", cache.evictions - base_evictions
        )
    return result


def parse_stage(
    log: Iterable[LogRecord],
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
    channel: Optional[QuarantineChannel] = None,
    cache: Optional[TemplateCache] = None,
    interner: Optional[TemplateInterner] = None,
) -> ParseStageResult:
    """Stage 2: :func:`parse_log` with the config's parsing knobs.

    When the execution config enables the parse cache and the caller did
    not supply one, a fresh :class:`~repro.skeleton.cache.TemplateCache`
    is created for this call — one cache per batch run, and (via the
    explicit ``cache`` argument) one per streaming instance and one per
    parallel shard.  The ``interner`` travels the same way (created by
    :func:`parse_log` itself when absent).
    """
    execution = config.execution
    if cache is None and execution.parse_cache:
        cache = TemplateCache(
            execution.parse_cache_size, lazy=execution.lazy_parse
        )
    return parse_log(
        log,
        fold_variables=config.fold_variables,
        strict_triple=config.strict_triple,
        recorder=recorder,
        policy=config.error_policy,
        channel=channel,
        cache=cache,
        interner=interner,
    )


def mine_stage(
    queries: Sequence[ParsedQuery],
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
) -> MiningResult:
    """Stage 3: blocking + periodic segmentation (Section 4.1)."""
    recorder = recorder or NULL
    with recorder.span("mine"):
        result = mine(queries, config.miner)
    recorder.count("mine", "queries_in", len(queries))
    recorder.count("mine", "blocks", len(result.blocks))
    recorder.count("mine", "pattern_instances", result.instance_count)
    recorder.count("mine", "periodic_runs", len(result.runs))
    return result


def detect_stage(
    blocks: Sequence[Block],
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
) -> List[AntipatternInstance]:
    """Stage 4: run the configured detector set over ``blocks``."""
    recorder = recorder or NULL
    with recorder.span("detect"):
        instances = run_detectors(blocks, config.detection, config.detectors)
    recorder.count("detect", "blocks_in", len(blocks))
    recorder.count("detect", "instances_detected", len(instances))
    if recorder.enabled:
        for instance in instances:
            recorder.count_label("detect", "antipatterns", instance.label)
    return instances


def registry_stage(
    mining: MiningResult,
    antipatterns: Sequence[AntipatternInstance],
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
) -> Tuple[PatternRegistry, Optional[SwsReport]]:
    """Build the global pattern registry, mark antipatterns, scan SWS.

    This is the only stage that needs the *whole* log's mining output —
    frequency, userPopularity and SWS are global statistics — which is
    why the streaming and parallel paths skip it (their reports say so).
    """
    recorder = recorder or NULL
    with recorder.span("registry"):
        # Aggregate run-by-run: every cycle of a periodic run shares its
        # unit and user, so add_run books a whole run in one probe —
        # identical rows to from_instances(mining.instances) at a
        # fraction of the dictionary traffic.
        registry = PatternRegistry.from_runs(mining.runs)
        for instance in antipatterns:
            # Interned unit when available (the registry's fast keys);
            # the string unit otherwise — mark_antipattern takes both.
            registry.mark_antipattern(
                instance.unit_ids or instance.unit, instance.label
            )
        sws_report = None
        if config.sws is not None:
            sws_report = detect_sws(
                registry, mining.instances, config.sws, mark=True
            )
    recorder.count("registry", "patterns", len(registry))
    if sws_report is not None:
        recorder.count("registry", "sws_flagged", len(sws_report.patterns))
    return registry, sws_report


def solve_stage(
    parsed_log: QueryLog,
    antipatterns: Sequence[AntipatternInstance],
    recorder: Optional[Recorder] = None,
) -> SolveResult:
    """Stage 6: rewrite solvable instances (Section 5.5)."""
    recorder = recorder or NULL
    with recorder.span("solve"):
        result = solve(parsed_log, antipatterns)
    recorder.count("solve", "records_in", len(parsed_log))
    recorder.count("solve", "records_out", len(result.log))
    recorder.count("solve", "instances_solved", len(result.solved))
    recorder.count("solve", "queries_removed", result.queries_removed)
    recorder.count("solve", "skipped_conflicts", len(result.skipped_conflicts))
    recorder.count("solve", "not_applicable", len(result.not_applicable))
    recorder.count("solve", "unsolvable", len(result.unsolvable))
    if recorder.enabled:
        for solved in result.solved:
            recorder.count_label("solve", "solved", solved.instance.label)
    return result


@dataclass
class BlockCleanResult:
    """Outcome of cleaning one block in isolation."""

    records: List[LogRecord]
    instances_detected: int
    instances_solved: int


def clean_block(
    block: Block,
    config: PipelineConfig,
    recorder: Optional[Recorder] = None,
) -> BlockCleanResult:
    """Detect + solve one block locally (detectors and solver only ever
    look *within* a block — the invariant both the streaming and the
    parallel cleaner are built on).

    With an enabled ``recorder`` the block is additionally run through
    the miner's periodic segmentation, purely to book the ``mine`` stage
    counters — a closed block's queries are all within ``block_gap`` of
    each other, so segmenting them reproduces exactly the instances the
    batch miner would have found for this block.
    """
    recorder = recorder or NULL
    if recorder.enabled:
        with recorder.span("mine"):
            runs = segment_block(block, config.miner)
        recorder.count("mine", "queries_in", len(block.queries))
        recorder.count("mine", "blocks", 1)
        recorder.count(
            "mine", "pattern_instances", sum(run.repeats for run in runs)
        )
        recorder.count("mine", "periodic_runs", len(runs))
    instances = detect_stage([block], config, recorder)
    block_log = QueryLog(query.record for query in block.queries)
    result = solve_stage(block_log, instances, recorder)
    return BlockCleanResult(
        records=result.log.records(),
        instances_detected=len(instances),
        instances_solved=len(result.solved),
    )


@dataclass
class PipelineResult:
    """Every artifact of one pipeline run (the boxes of Fig. 1).

    Batch runs fill every field.  Streaming and parallel runs trade the
    global artifacts (mining output, registry, SWS) for bounded memory /
    multi-core speed: they fill ``cleaned`` plus their stats object and
    leave the per-stage artifacts ``None`` — accessing one raises a
    :class:`ValueError` naming the mode that skipped it.
    """

    config: PipelineConfig
    #: the input log — ``None`` for out-of-core runs (a streamed source
    #: is never materialised; re-read it through the source if needed).
    original: Optional[QueryLog] = None
    dedup: Optional[DedupResult] = None
    parse_stage: Optional[ParseStageResult] = None
    mining: Optional[MiningResult] = None
    registry: Optional[PatternRegistry] = None
    antipatterns: Optional[List[AntipatternInstance]] = None
    solve_result: Optional[SolveResult] = None
    sws_report: Optional[SwsReport] = None
    #: the clean log of a streaming / parallel run (batch runs expose it
    #: through ``solve_result``).
    cleaned: Optional[QueryLog] = None
    streaming_stats: Optional["StreamingStats"] = None
    parallel_stats: Optional["ParallelStats"] = None
    execution_mode: str = "batch"
    #: the run's observability ledger (every execution mode fills it;
    #: ``None`` only when the run was driven with the null recorder).
    metrics: Optional[PipelineMetrics] = None
    #: the run-scoped template interner (batch fills it directly; the
    #: parallel path exposes the folded run-level interner through
    #: ``parallel_stats.interner``).  Ids in any artifact of this result
    #: resolve against exactly this dictionary.
    interner: Optional[TemplateInterner] = None
    #: everything the run set aside under the ``quarantine`` error
    #: policy; empty under ``strict`` / ``lenient``.  Every execution
    #: mode fills it, so callers can audit degraded runs uniformly.
    quarantine: QuarantineChannel = field(default_factory=QuarantineChannel)

    def _artifact(self, value, name: str):
        if value is None:
            raise ValueError(
                f"{name} is not available: this result came from a "
                f"{self.execution_mode!r} run, which does not materialise "
                f"the {name} artifact (use batch mode for full artifacts)"
            )
        return value

    # ------------------------------------------------------------------
    # Convenience accessors

    @property
    def clean_log(self) -> QueryLog:
        if self.solve_result is not None:
            return self.solve_result.log
        return self._artifact(self.cleaned, "clean_log")

    @property
    def removal_log(self) -> QueryLog:
        """The *removal* variant: antipattern queries dropped, not
        rewritten (the third input of the Section 6.9 experiment)."""
        stage = self._artifact(self.parse_stage, "removal_log")
        return remove(
            stage.parsed_log, self._artifact(self.antipatterns, "removal_log")
        )

    def cth_candidates(self) -> List[CthCensusRow]:
        """Ranked census of CTH candidate patterns (Fig. 2(d))."""
        instances = self._artifact(self.antipatterns, "cth_candidates")
        return cth_census([a for a in instances if a.label == CTH_CANDIDATE])

    def overview(self) -> Overview:
        """Assemble the Table 5 statistics for this run."""
        dedup = self._artifact(self.dedup, "overview")
        parse_result = self._artifact(self.parse_stage, "overview")
        registry = self._artifact(self.registry, "overview")
        antipatterns = self._artifact(self.antipatterns, "overview")
        solve_result = self._artifact(self.solve_result, "overview")
        stats = Overview(
            original_size=len(self.original),
            select_count=len(self.original)
            - len(parse_result.non_select)
            - len(parse_result.syntax_errors),
            syntax_errors=len(parse_result.syntax_errors),
            non_select=len(parse_result.non_select),
            after_dedup=len(dedup.log),
            duplicates_removed=dedup.removed,
            final_size=len(self.clean_log),
            pattern_count=len(registry),
            max_pattern_frequency=registry.max_frequency(),
            antipatterns=census_by_label(antipatterns),
            cth_candidates_real=sum(
                1 for row in self.cth_candidates() if row.oracle_real
            ),
            solved_counts=solve_result.solved_counts(),
            queries_removed_by_solving=solve_result.queries_removed,
        )
        return stats


class CleaningPipeline:
    """The framework object: configure once, run on any query log."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    def run(
        self,
        log: QueryLog,
        recorder: Optional[Recorder] = None,
        *,
        template_witnesses: Optional[Sequence[str]] = None,
    ) -> PipelineResult:
        """Execute all stages of Fig. 1 on ``log``.

        ``recorder`` receives the run's metrics and trace spans; by
        default a fresh :class:`~repro.obs.Recorder` is created so the
        result's :attr:`~PipelineResult.metrics` ledger is always
        available (pass :data:`repro.obs.NULL` to opt out entirely).

        ``template_witnesses`` pre-warms the parse cache from the given
        witness statement texts (see
        :meth:`~repro.skeleton.cache.TemplateCache.preload`); when
        absent, the execution config's ``template_dict`` sidecar is
        loaded instead.  Preloaded template counts are booked as
        ``parse_dict_preloaded``; the sidecar (if configured) is
        re-saved when the run finishes.
        """
        config = self.config
        recorder = Recorder() if recorder is None else recorder
        recorder.ensure_counters()
        channel = QuarantineChannel()
        interner = TemplateInterner()
        execution = config.execution
        # The cache is created here (not inside parse_stage) so the run
        # can read back how many lazy queries the *downstream* stages
        # forced to materialise, once they have all executed.
        cache = (
            TemplateCache(execution.parse_cache_size, lazy=execution.lazy_parse)
            if execution.parse_cache
            else None
        )
        dict_preloaded = 0
        if cache is not None:
            witnesses = template_witnesses
            if witnesses is None and execution.template_dict is not None:
                witnesses = TemplateCache.load_dict(
                    execution.template_dict,
                    fold_variables=config.fold_variables,
                    strict_triple=config.strict_triple,
                )
            if witnesses:
                dict_preloaded = cache.preload(
                    witnesses,
                    fold_variables=config.fold_variables,
                    strict_triple=config.strict_triple,
                )

        validated = validate_stage(log, config, recorder, channel)
        dedup = dedup_stage(validated, config, recorder)
        parse_result = parse_stage(
            dedup.log, config, recorder, channel, cache=cache, interner=interner
        )
        mining = mine_stage(parse_result.queries, config, recorder)
        antipatterns = detect_stage(mining.blocks, config, recorder)
        registry, sws_report = registry_stage(
            mining, antipatterns, config, recorder
        )
        solve_result = solve_stage(
            parse_result.parsed_log, antipatterns, recorder
        )
        if cache is not None:
            recorder.count("parse", "parse_materialised", cache.materialised)
            recorder.count("parse", "parse_dict_preloaded", dict_preloaded)
            if execution.template_dict is not None:
                try:
                    cache.save_dict(
                        execution.template_dict,
                        fold_variables=config.fold_variables,
                        strict_triple=config.strict_triple,
                    )
                except OSError as exc:
                    warnings.warn(
                        "could not save template dict "
                        f"{os.fspath(execution.template_dict)!r}: {exc}"
                    )

        return PipelineResult(
            config=config,
            original=log,
            dedup=dedup,
            parse_stage=parse_result,
            mining=mining,
            registry=registry,
            antipatterns=antipatterns,
            solve_result=solve_result,
            sws_report=sws_report,
            execution_mode="batch",
            metrics=recorder.metrics if recorder.enabled else None,
            interner=interner,
            quarantine=channel,
        )


def clean_log(log: QueryLog, config: Optional[PipelineConfig] = None) -> QueryLog:
    """Deprecated one-call convenience — use :func:`repro.clean`.

    .. deprecated:: 1.1
        ``clean_log(log, config)`` is ``repro.clean(log, config).clean_log``.
    """
    warnings.warn(
        "clean_log() is deprecated; use repro.clean(log, config).clean_log",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import clean

    return clean(log, config).clean_log
