"""The cleaning framework — Fig. 1's processing pipeline, end to end.

Stages (each producing an inspectable artifact, like the figure's boxes):

1. **Delete duplicates** (Section 5.2) → pre-clean query log.
2. **Parse statements** (Section 5.3) → parsed query log; syntax errors
   and non-SELECT statements are excluded and counted.
3. **Mine patterns** (Section 4.1) → blocks, pattern instances, registry
   with frequency / userPopularity.
4. **Detect antipatterns** (Section 4.2) → labelled instances; the
   registry rows are marked so Tables 6/7 can be ranked.
5. **Optionally scan for SWS** (Section 6.5).
6. **Solve antipatterns** (Section 5.5) → clean query log + statistics.

:func:`CleaningPipeline.run` executes all of it; the intermediate results
live on the returned :class:`PipelineResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..antipatterns.base import run_detectors
from ..antipatterns.cth import CthCensusRow, cth_census
from ..antipatterns.types import CTH_CANDIDATE, AntipatternInstance
from ..log.dedup import DedupResult, delete_duplicates
from ..log.models import LogRecord, QueryLog
from ..patterns.miner import MiningResult, mine
from ..patterns.models import ParsedQuery
from ..patterns.registry import PatternRegistry
from ..patterns.sws import SwsReport, detect_sws
from ..rewrite.solver import SolveResult, remove, solve
from ..sqlparser import SqlError, UnsupportedStatementError, parse
from .config import PipelineConfig
from .statistics import Overview, census_by_label


@dataclass
class ParseStageResult:
    """Outcome of the parse stage (Section 5.3)."""

    queries: List[ParsedQuery] = field(default_factory=list)
    syntax_errors: List[Tuple[LogRecord, str]] = field(default_factory=list)
    non_select: List[LogRecord] = field(default_factory=list)

    @property
    def parsed_log(self) -> QueryLog:
        """The parsed query log as a plain log (SELECTs that parsed)."""
        return QueryLog(query.record for query in self.queries)


def parse_log(
    log: QueryLog,
    *,
    fold_variables: bool = False,
    strict_triple: bool = False,
) -> ParseStageResult:
    """Parse every statement; classify failures (Fig. 1's parse stage).

    Real logs repeat statement texts heavily (the whole premise of the
    paper), so parsing and feature extraction are cached per distinct
    statement text: a repeated statement reuses the immutable AST,
    template and clause features and only swaps in its own log record.
    """
    result = ParseStageResult()
    #: sql text -> prototype ParsedQuery, or the SqlError to re-raise.
    cache: dict = {}
    for record in log:
        cached = cache.get(record.sql)
        if cached is None:
            try:
                statement = parse(record.sql)
                cached = ParsedQuery.from_statement(
                    record,
                    statement,
                    fold_variables=fold_variables,
                    strict_triple=strict_triple,
                )
            except SqlError as error:
                cached = error
            except RecursionError:
                # Pathologically deep expressions (hundreds of nested
                # conjuncts) exceed the tree-walker capacity; classify
                # them like any other unprocessable statement instead of
                # crashing the run.
                cached = SqlError("statement exceeds supported nesting depth")
            cache[record.sql] = cached
        if isinstance(cached, UnsupportedStatementError):
            result.non_select.append(record)
            continue
        if isinstance(cached, SqlError):
            result.syntax_errors.append((record, str(cached)))
            continue
        if cached.record is record:
            result.queries.append(cached)
        else:
            result.queries.append(dataclasses.replace(cached, record=record))
    return result


@dataclass
class PipelineResult:
    """Every artifact of one pipeline run (the boxes of Fig. 1)."""

    config: PipelineConfig
    original: QueryLog
    dedup: DedupResult
    parse_stage: ParseStageResult
    mining: MiningResult
    registry: PatternRegistry
    antipatterns: List[AntipatternInstance]
    solve_result: SolveResult
    sws_report: Optional[SwsReport] = None

    # ------------------------------------------------------------------
    # Convenience accessors

    @property
    def clean_log(self) -> QueryLog:
        return self.solve_result.log

    @property
    def removal_log(self) -> QueryLog:
        """The *removal* variant: antipattern queries dropped, not
        rewritten (the third input of the Section 6.9 experiment)."""
        return remove(self.parse_stage.parsed_log, self.antipatterns)

    def cth_candidates(self) -> List[CthCensusRow]:
        """Ranked census of CTH candidate patterns (Fig. 2(d))."""
        return cth_census(
            [a for a in self.antipatterns if a.label == CTH_CANDIDATE]
        )

    def overview(self) -> Overview:
        """Assemble the Table 5 statistics for this run."""
        stats = Overview(
            original_size=len(self.original),
            select_count=len(self.original)
            - len(self.parse_stage.non_select)
            - len(self.parse_stage.syntax_errors),
            syntax_errors=len(self.parse_stage.syntax_errors),
            non_select=len(self.parse_stage.non_select),
            after_dedup=len(self.dedup.log),
            duplicates_removed=self.dedup.removed,
            final_size=len(self.clean_log),
            pattern_count=len(self.registry),
            max_pattern_frequency=self.registry.max_frequency(),
            antipatterns=census_by_label(self.antipatterns),
            cth_candidates_real=sum(
                1 for row in self.cth_candidates() if row.oracle_real
            ),
            solved_counts=self.solve_result.solved_counts(),
            queries_removed_by_solving=self.solve_result.queries_removed,
        )
        return stats


class CleaningPipeline:
    """The framework object: configure once, run on any query log."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()

    def run(self, log: QueryLog) -> PipelineResult:
        """Execute all stages of Fig. 1 on ``log``."""
        config = self.config

        dedup = delete_duplicates(log, config.dedup_threshold)
        parse_stage = parse_log(
            dedup.log,
            fold_variables=config.fold_variables,
            strict_triple=config.strict_triple,
        )
        mining = mine(parse_stage.queries, config.miner)
        registry = PatternRegistry.from_instances(mining.instances)

        antipatterns = run_detectors(
            mining.blocks, config.detection, config.detectors
        )
        for instance in antipatterns:
            registry.mark_antipattern(instance.unit, instance.label)

        sws_report = None
        if config.sws is not None:
            sws_report = detect_sws(
                registry, mining.instances, config.sws, mark=True
            )

        solve_result = solve(parse_stage.parsed_log, antipatterns)
        return PipelineResult(
            config=config,
            original=log,
            dedup=dedup,
            parse_stage=parse_stage,
            mining=mining,
            registry=registry,
            antipatterns=antipatterns,
            solve_result=solve_result,
            sws_report=sws_report,
        )


def clean_log(log: QueryLog, config: Optional[PipelineConfig] = None) -> QueryLog:
    """One-call convenience: run the pipeline, return the clean log."""
    return CleaningPipeline(config).run(log).clean_log
