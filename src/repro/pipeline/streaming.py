"""Streaming variant of the cleaning pipeline.

The paper's log has 42 million statements; holding the parsed log in
memory (as :class:`~repro.pipeline.framework.CleaningPipeline` does) is
fine for samples but not for full-scale runs.  The streaming cleaner
processes records in time order with bounded state:

* **dedup** — a last-seen map keyed by (user, normalised statement),
  pruned of entries older than the threshold;
* **blocking** — per-user open blocks; a block closes when its user goes
  quiet for longer than the miner's ``block_gap`` (measured against the
  stream clock), when it reaches the execution config's
  ``max_block_queries``, or at end of stream;
* **detect + solve** — each closed block runs
  :func:`~repro.pipeline.framework.clean_block` (the same detect→solve
  stage code the batch pipeline composes) and its clean records are
  emitted.

The result is record-for-record identical to the batch pipeline's clean
log whenever no block was force-closed by the size bound, because both
detectors and solver only ever look *within* a block.  Global analyses
that need the whole log (the pattern registry, SWS classification) are
out of scope here by design — they are downstream consumers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import (
    NESTING_DEPTH,
    PARSE_ERROR,
    QuarantineChannel,
    RecordFailure,
    record_fault,
)
from ..log.dedup import normalize_statement_text
from ..log.models import LogRecord, QueryLog
from ..obs import Recorder
from ..patterns.models import Block, ParsedQuery
from ..sqlparser import SqlError, UnsupportedStatementError, parse
from .config import PipelineConfig
from .framework import clean_block


@dataclass
class StreamingStats:
    """Counters of one streaming run."""

    records_in: int = 0
    records_out: int = 0
    records_invalid: int = 0
    duplicates_removed: int = 0
    syntax_errors: int = 0
    non_select: int = 0
    parse_quarantined: int = 0
    blocks_closed: int = 0
    blocks_force_closed: int = 0
    instances_detected: int = 0
    instances_solved: int = 0
    max_open_queries: int = 0

    def merge(self, other: "StreamingStats") -> None:
        """Fold another run's counters into this one (sharded runs).

        ``max_open_queries`` adds up too: concurrent shards are resident
        at the same time, so the sum is the honest peak estimate.
        """
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.records_invalid += other.records_invalid
        self.duplicates_removed += other.duplicates_removed
        self.syntax_errors += other.syntax_errors
        self.non_select += other.non_select
        self.parse_quarantined += other.parse_quarantined
        self.blocks_closed += other.blocks_closed
        self.blocks_force_closed += other.blocks_force_closed
        self.instances_detected += other.instances_detected
        self.instances_solved += other.instances_solved
        self.max_open_queries += other.max_open_queries


class StreamingCleaner:
    """Process a record stream with bounded memory.

    :param config: the same configuration the batch pipeline takes;
        ``config.sws`` is ignored (needs global state).  The force-close
        bound per open block comes from ``config.execution
        .max_block_queries`` — the memory ceiling is roughly ``open
        users × max_block_queries``.
    :param max_block_queries: deprecated constructor override of the
        config knob; kept for one release.
    :param recorder: observability recorder; a fresh
        :class:`~repro.obs.Recorder` by default, so per-stage metrics
        are always collected (pass :data:`repro.obs.NULL` to opt out).
        Dedup/parse wall times are measured per record and credited in
        bulk; mine/detect/solve are booked per closed block by
        :func:`~repro.pipeline.framework.clean_block`.  Counters are
        flushed when :meth:`process` finishes — a partially consumed
        stream leaves the ledger behind by design.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        max_block_queries: Optional[int] = None,
        *,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.recorder = Recorder() if recorder is None else recorder
        if max_block_queries is not None:
            warnings.warn(
                "StreamingCleaner(max_block_queries=...) is deprecated; set "
                "PipelineConfig.execution=ExecutionConfig(max_block_queries=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            # Route through ExecutionConfig so its validation applies.
            self.config = replace(
                self.config,
                execution=replace(
                    self.config.execution, max_block_queries=max_block_queries
                ),
            )
        self.max_block_queries = self.config.execution.max_block_queries
        self.stats = StreamingStats()
        #: records set aside under the ``quarantine`` error policy.
        self.quarantine = QuarantineChannel()
        self._open: Dict[str, List[ParsedQuery]] = {}
        self._last_seen: Dict[Tuple[str, str], float] = {}
        self._last_prune = 0.0
        #: counters already flushed to the recorder (delta bookkeeping).
        self._flushed = StreamingStats()

    # ------------------------------------------------------------------
    # Stages

    def _validate(self, record: LogRecord) -> bool:
        """Intake validation: ``True`` when the record may enter the
        stream.  Runs *before* the stream clock is consulted, so a
        non-finite timestamp can never pollute idle-flush arithmetic."""
        reason = record_fault(record)
        if reason is None:
            return True
        if self.config.error_policy == "strict":
            raise RecordFailure(record, reason, "validate")
        self.stats.records_invalid += 1
        if self.config.error_policy == "quarantine":
            self.quarantine.add(record, reason, "validate")
        return False

    def _is_duplicate(self, record: LogRecord) -> bool:
        threshold = self.config.dedup_threshold
        key = (record.user_key(), normalize_statement_text(record.sql))
        previous = self._last_seen.get(key)
        self._last_seen[key] = record.timestamp
        # The 0 <= guard matters for out-of-order streams: a record that
        # arrives *before* its last-seen twin (negative delta) is clock
        # skew, not a reload, and must not be swallowed as a duplicate.
        if previous is not None and 0 <= record.timestamp - previous <= threshold:
            return True
        # periodically prune entries that can never match again
        if record.timestamp - self._last_prune > max(threshold, 1.0) * 64:
            horizon = record.timestamp - threshold
            self._last_seen = {
                k: ts for k, ts in self._last_seen.items() if ts >= horizon
            }
            self._last_prune = record.timestamp
        return False

    def _parse(self, record: LogRecord) -> Optional[ParsedQuery]:
        try:
            statement = parse(record.sql)
            return ParsedQuery.from_statement(
                record,
                statement,
                fold_variables=self.config.fold_variables,
                strict_triple=self.config.strict_triple,
            )
        except UnsupportedStatementError:
            self.stats.non_select += 1
            return None
        except SqlError as error:
            self._parse_reject(record, PARSE_ERROR, str(error))
            return None
        except RecursionError:
            self._parse_reject(
                record,
                NESTING_DEPTH,
                "statement exceeds supported nesting depth",
            )
            return None

    def _parse_reject(self, record: LogRecord, reason: str, detail: str) -> None:
        if self.config.error_policy == "quarantine":
            self.stats.parse_quarantined += 1
            self.quarantine.add(record, reason, "parse", detail=detail)
        else:
            self.stats.syntax_errors += 1

    def _close_block(self, user: str) -> List[LogRecord]:
        queries = self._open.pop(user, [])
        if not queries:
            return []
        self.stats.blocks_closed += 1
        block = Block(user=user, queries=tuple(queries))
        result = clean_block(block, self.config, self.recorder)
        self.stats.instances_detected += result.instances_detected
        self.stats.instances_solved += result.instances_solved
        return result.records

    def _flush_idle(self, now: float) -> Iterator[LogRecord]:
        gap = self.config.miner.block_gap
        for user in list(self._open):
            queries = self._open[user]
            if queries and now - queries[-1].timestamp > gap:
                yield from self._emit(self._close_block(user))

    def _emit(self, records: List[LogRecord]) -> Iterator[LogRecord]:
        # records_out is counted here, at the single emission point, so
        # the stats are correct whether the caller drives process()
        # directly or goes through run().
        self.stats.records_out += len(records)
        return iter(records)

    # ------------------------------------------------------------------
    # Driver

    def process(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Consume a time-ordered record stream, yield clean records.

        Emission order is block-close order; feed the output into a
        :class:`QueryLog` to restore global time order.
        """
        recorder = self.recorder
        timed = recorder.enabled
        clock = time.perf_counter
        validate_seconds = 0.0
        dedup_seconds = 0.0
        parse_seconds = 0.0
        for record in records:
            self.stats.records_in += 1
            if timed:
                started = clock()
                valid = self._validate(record)
                validate_seconds += clock() - started
            else:
                valid = self._validate(record)
            if not valid:
                continue
            yield from self._flush_idle(record.timestamp)

            if timed:
                started = clock()
                duplicate = self._is_duplicate(record)
                dedup_seconds += clock() - started
            else:
                duplicate = self._is_duplicate(record)
            if duplicate:
                self.stats.duplicates_removed += 1
                continue
            if timed:
                started = clock()
                parsed = self._parse(record)
                parse_seconds += clock() - started
            else:
                parsed = self._parse(record)
            if parsed is None:
                continue
            bucket = self._open.setdefault(record.user_key(), [])
            bucket.append(parsed)
            open_count = sum(len(q) for q in self._open.values())
            self.stats.max_open_queries = max(
                self.stats.max_open_queries, open_count
            )
            if len(bucket) >= self.max_block_queries:
                self.stats.blocks_force_closed += 1
                yield from self._emit(self._close_block(record.user_key()))

        for user in list(self._open):
            yield from self._emit(self._close_block(user))
        if timed:
            recorder.add_seconds("validate", validate_seconds, calls=1)
            recorder.add_seconds("dedup", dedup_seconds, calls=1)
            recorder.add_seconds("parse", parse_seconds, calls=1)
        self._flush_counters()

    def _flush_counters(self) -> None:
        """Book the per-record counters accumulated since the last flush.

        Dedup and parse happen per record here (not via the batch stage
        functions), so their counters are derived from
        :class:`StreamingStats` deltas; mine/detect/solve were already
        booked per closed block by
        :func:`~repro.pipeline.framework.clean_block`.
        """
        recorder = self.recorder
        if not recorder.enabled:
            return
        recorder.ensure_counters()
        stats, flushed = self.stats, self._flushed
        records_in = stats.records_in - flushed.records_in
        invalid = stats.records_invalid - flushed.records_invalid
        duplicates = stats.duplicates_removed - flushed.duplicates_removed
        syntax_errors = stats.syntax_errors - flushed.syntax_errors
        non_select = stats.non_select - flushed.non_select
        parse_quarantined = stats.parse_quarantined - flushed.parse_quarantined
        recorder.count("validate", "records_in", records_in)
        recorder.count("validate", "records_out", records_in - invalid)
        recorder.count("validate", "records_quarantined", invalid)
        dedup_in = records_in - invalid
        recorder.count("dedup", "records_in", dedup_in)
        recorder.count("dedup", "records_out", dedup_in - duplicates)
        recorder.count("dedup", "duplicates_removed", duplicates)
        parse_in = dedup_in - duplicates
        recorder.count("parse", "records_in", parse_in)
        recorder.count(
            "parse",
            "records_out",
            parse_in - syntax_errors - non_select - parse_quarantined,
        )
        recorder.count("parse", "syntax_errors", syntax_errors)
        recorder.count("parse", "non_select", non_select)
        recorder.count("parse", "records_quarantined", parse_quarantined)
        self._flushed = replace(stats)

    def run(self, log: QueryLog) -> QueryLog:
        """Convenience: stream a whole log, return the clean log."""
        return QueryLog(self.process(log))


def clean_log_streaming(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    max_block_queries: Optional[int] = None,
) -> Tuple[QueryLog, StreamingStats]:
    """Deprecated one-call streaming clean — use :func:`repro.clean`.

    .. deprecated:: 1.1
        ``repro.clean(log, config, execution="streaming")`` returns a
        result whose ``clean_log`` / ``streaming_stats`` carry the same
        two values.
    """
    warnings.warn(
        "clean_log_streaming() is deprecated; use "
        "repro.clean(log, config, execution='streaming')",
        DeprecationWarning,
        stacklevel=2,
    )
    effective = config or PipelineConfig()
    if max_block_queries is not None:
        effective = replace(
            effective,
            execution=replace(
                effective.execution, max_block_queries=max_block_queries
            ),
        )
    cleaner = StreamingCleaner(effective)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
