"""Streaming variant of the cleaning pipeline.

The paper's log has 42 million statements; holding the parsed log in
memory (as :class:`~repro.pipeline.framework.CleaningPipeline` does) is
fine for samples but not for full-scale runs.  The streaming cleaner
processes records in time order with bounded state:

* **dedup** — a last-seen map keyed by (user, normalised statement),
  pruned of entries older than the threshold;
* **blocking** — per-user open blocks; a block closes when its user goes
  quiet for longer than the miner's ``block_gap`` (measured against the
  stream clock), when it reaches the execution config's
  ``max_block_queries``, or at end of stream;
* **detect + solve** — each closed block runs
  :func:`~repro.pipeline.framework.clean_block` (the same detect→solve
  stage code the batch pipeline composes) and its clean records are
  emitted.

The result is record-for-record identical to the batch pipeline's clean
log whenever no block was force-closed by the size bound, because both
detectors and solver only ever look *within* a block.  Global analyses
that need the whole log (the pattern registry, SWS classification) are
out of scope here by design — they are downstream consumers.
"""

from __future__ import annotations

import dataclasses
import os
import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import (
    NESTING_DEPTH,
    PARSE_ERROR,
    QuarantineChannel,
    RecordFailure,
    record_fault,
)
from ..log.dedup import normalize_statement_text
from ..log.models import LogRecord, QueryLog
from ..obs import Recorder
from ..patterns.models import Block, ParsedQuery
from ..skeleton.cache import LazyParsedQuery, TemplateCache, rebind_query
from ..skeleton.interner import TemplateInterner
from ..sqlparser import SqlError, UnsupportedStatementError, parse
from .config import PipelineConfig
from .framework import clean_block


@dataclass
class StreamingStats:
    """Counters of one streaming run.

    The ``parse_cache_*`` trio mirrors the instance's
    :class:`~repro.skeleton.cache.TemplateCache` totals (all zero when
    the fast path is disabled); they are synchronised from the cache
    whenever counters are flushed to the recorder.
    """

    records_in: int = 0
    records_out: int = 0
    records_invalid: int = 0
    duplicates_removed: int = 0
    syntax_errors: int = 0
    non_select: int = 0
    parse_quarantined: int = 0
    blocks_closed: int = 0
    blocks_force_closed: int = 0
    instances_detected: int = 0
    instances_solved: int = 0
    max_open_queries: int = 0
    parse_cache_hits: int = 0
    parse_cache_misses: int = 0
    parse_cache_evictions: int = 0
    #: queries emitted as lazy skeleton binds (``lazy_parse`` fast path).
    parse_lazy_hits: int = 0
    #: lazy queries a downstream consumer forced to materialise
    #: (mirrored from the cache's counter at every flush).
    parse_materialised: int = 0
    #: statements that went through the full parser (the cold path) —
    #: with the cache enabled this equals ``parse_cache_misses``.
    parse_cold: int = 0
    #: templates admitted from a persistent template dictionary before
    #: the first record (see ``ExecutionConfig.template_dict``).
    parse_dict_preloaded: int = 0
    #: distinct template fingerprints the run's interner assigned ids to
    #: (mirrored from the :class:`~repro.skeleton.interner
    #: .TemplateInterner` at every counter flush).
    interner_size: int = 0

    def merge(self, other: "StreamingStats") -> None:
        """Fold another run's counters into this one (sharded runs).

        ``max_open_queries`` adds up too: concurrent shards are resident
        at the same time, so the sum is the honest peak estimate.
        """
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.records_invalid += other.records_invalid
        self.duplicates_removed += other.duplicates_removed
        self.syntax_errors += other.syntax_errors
        self.non_select += other.non_select
        self.parse_quarantined += other.parse_quarantined
        self.blocks_closed += other.blocks_closed
        self.blocks_force_closed += other.blocks_force_closed
        self.instances_detected += other.instances_detected
        self.instances_solved += other.instances_solved
        self.max_open_queries += other.max_open_queries
        self.parse_cache_hits += other.parse_cache_hits
        self.parse_cache_misses += other.parse_cache_misses
        self.parse_cache_evictions += other.parse_cache_evictions
        self.parse_lazy_hits += other.parse_lazy_hits
        self.parse_materialised += other.parse_materialised
        self.parse_cold += other.parse_cold
        self.parse_dict_preloaded += other.parse_dict_preloaded
        # Like the cache counters this sums per-shard distinct counts
        # (shards intern independently); the folded run-level dictionary
        # lives in ParallelStats.interner.
        self.interner_size += other.interner_size


class StreamingCleaner:
    """Process a record stream with bounded memory.

    :param config: the same configuration the batch pipeline takes;
        ``config.sws`` is ignored (needs global state).  The force-close
        bound per open block comes from ``config.execution
        .max_block_queries`` — the memory ceiling is roughly ``open
        users × max_block_queries``.
    :param max_block_queries: deprecated constructor override of the
        config knob; kept for one release.
    :param recorder: observability recorder; a fresh
        :class:`~repro.obs.Recorder` by default, so per-stage metrics
        are always collected (pass :data:`repro.obs.NULL` to opt out).
        Dedup/parse wall times are measured per record and credited in
        bulk; mine/detect/solve are booked per closed block by
        :func:`~repro.pipeline.framework.clean_block`.  Counters are
        flushed when :meth:`process` finishes — a partially consumed
        stream leaves the ledger behind by design.
    :param template_witnesses: witness statement texts to pre-warm the
        parse cache with (see
        :meth:`~repro.skeleton.cache.TemplateCache.preload`); when
        absent, the execution config's ``template_dict`` sidecar is
        loaded instead.  :meth:`finish` re-saves the sidecar.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        max_block_queries: Optional[int] = None,
        *,
        recorder: Optional[Recorder] = None,
        template_witnesses: Optional[Iterable[str]] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.recorder = Recorder() if recorder is None else recorder
        if max_block_queries is not None:
            warnings.warn(
                "StreamingCleaner(max_block_queries=...) is deprecated; set "
                "PipelineConfig.execution=ExecutionConfig(max_block_queries=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            # Route through ExecutionConfig so its validation applies.
            self.config = replace(
                self.config,
                execution=replace(
                    self.config.execution, max_block_queries=max_block_queries
                ),
            )
        self.max_block_queries = self.config.execution.max_block_queries
        self.stats = StreamingStats()
        #: records set aside under the ``quarantine`` error policy.
        self.quarantine = QuarantineChannel()
        self._open: Dict[str, List[ParsedQuery]] = {}
        self._last_seen: Dict[Tuple[str, str], float] = {}
        self._last_prune = 0.0
        #: counters already flushed to the recorder (delta bookkeeping).
        self._flushed = StreamingStats()
        # Per-record hot-path state: config knobs hoisted to attributes
        # (a dataclass-field chain costs two attribute loads per record),
        # a running open-query total, and the earliest stream time at
        # which any open block could go idle — _flush_idle only scans the
        # open table when the clock actually passes that deadline.
        execution = self.config.execution
        self._parse_cache: Optional[TemplateCache] = (
            TemplateCache(
                execution.parse_cache_size, lazy=execution.lazy_parse
            )
            if execution.parse_cache
            else None
        )
        #: run-scoped template dictionary — one per cleaner instance,
        #: exactly like the parse cache above.
        self._interner = TemplateInterner()
        self._intern = self._interner.intern
        self._error_policy = self.config.error_policy
        self._fold_variables = self.config.fold_variables
        self._strict_triple = self.config.strict_triple
        self._dedup_threshold = self.config.dedup_threshold
        self._block_gap = self.config.miner.block_gap
        self._open_count = 0
        self._oldest_open = float("inf")
        # Cache-counter baselines: a cleaner restored from a checkpoint
        # starts with a *fresh* (empty) parse cache, so the public stats
        # mirror the pre-restore totals plus the new cache's counters.
        self._cache_base_hits = 0
        self._cache_base_misses = 0
        self._cache_base_evictions = 0
        self._cache_base_materialised = 0
        # Persistent template dictionary: pre-warm from the explicit
        # witness list, or from the configured sidecar.  The base/own
        # split keeps the mirrored stat additive across a restore.
        self._dict_base_preloaded = 0
        self._dict_preloaded = 0
        if self._parse_cache is not None:
            witnesses = template_witnesses
            if witnesses is None and execution.template_dict is not None:
                witnesses = TemplateCache.load_dict(
                    execution.template_dict,
                    fold_variables=self._fold_variables,
                    strict_triple=self._strict_triple,
                )
            if witnesses:
                self._dict_preloaded = self._parse_cache.preload(
                    witnesses,
                    fold_variables=self._fold_variables,
                    strict_triple=self._strict_triple,
                )

    # ------------------------------------------------------------------
    # Stages

    def _validate(self, record: LogRecord) -> bool:
        """Intake validation: ``True`` when the record may enter the
        stream.  Runs *before* the stream clock is consulted, so a
        non-finite timestamp can never pollute idle-flush arithmetic."""
        reason = record_fault(record)
        if reason is None:
            return True
        if self._error_policy == "strict":
            raise RecordFailure(record, reason, "validate")
        self.stats.records_invalid += 1
        if self._error_policy == "quarantine":
            self.quarantine.add(record, reason, "validate")
        return False

    def _is_duplicate(self, record: LogRecord) -> bool:
        threshold = self._dedup_threshold
        key = (record.user_key(), normalize_statement_text(record.sql))
        previous = self._last_seen.get(key)
        self._last_seen[key] = record.timestamp
        # The 0 <= guard matters for out-of-order streams: a record that
        # arrives *before* its last-seen twin (negative delta) is clock
        # skew, not a reload, and must not be swallowed as a duplicate.
        if previous is not None and 0 <= record.timestamp - previous <= threshold:
            return True
        # periodically prune entries that can never match again
        if record.timestamp - self._last_prune > max(threshold, 1.0) * 64:
            horizon = record.timestamp - threshold
            self._last_seen = {
                k: ts for k, ts in self._last_seen.items() if ts >= horizon
            }
            self._last_prune = record.timestamp
        return False

    def _parse(self, record: LogRecord) -> Optional[ParsedQuery]:
        cache = self._parse_cache
        if cache is not None:
            cached = cache.fetch(record)
            if cached is None:
                cached = self._cold_parse(record)
        else:
            self.stats.parse_cold += 1
            cached = self._full_parse(record)
        if type(cached) is tuple:
            error, reason = cached
            if isinstance(error, UnsupportedStatementError):
                self.stats.non_select += 1
            else:
                self._parse_reject(record, reason, str(error))
            return None
        # Verify the id against *this* run's interner even on a cache
        # hit — a prewarmed cache may carry another run's ids.
        query = rebind_query(
            cached, record, self._intern(cached.template_id)
        )
        if type(query) is LazyParsedQuery:
            self.stats.parse_lazy_hits += 1
        return query

    def _cold_parse(self, record: LogRecord):
        """Cold path after a cache miss: the one-shot
        :meth:`~repro.skeleton.cache.TemplateCache.build` (parse engine
        v3), with failures stored as the shared (error, reason) pair.
        Books ``parse_cold`` — unlike :meth:`_full_parse`, which the
        checkpoint restore also uses and which must stay counter-free.
        """
        self.stats.parse_cold += 1
        cache = self._parse_cache
        try:
            return cache.build(
                record,
                fold_variables=self._fold_variables,
                strict_triple=self._strict_triple,
                interner=self._interner,
            )
        except SqlError as error:
            cached = (error, PARSE_ERROR)
        except RecursionError:
            cached = (
                SqlError("statement exceeds supported nesting depth"),
                NESTING_DEPTH,
            )
        cache.store(record.sql, cached)
        return cached

    def _full_parse(self, record: LogRecord):
        """Full parse of one record: a bound ParsedQuery, or the
        (error, reason) pair of a failure — the cacheable outcome shape
        shared with :func:`~repro.pipeline.framework.parse_log`."""
        try:
            statement = parse(record.sql)
            return ParsedQuery.from_statement(
                record,
                statement,
                fold_variables=self._fold_variables,
                strict_triple=self._strict_triple,
                interner=self._interner,
            )
        except SqlError as error:
            # Includes UnsupportedStatementError — classified at use.
            return (error, PARSE_ERROR)
        except RecursionError:
            return (
                SqlError("statement exceeds supported nesting depth"),
                NESTING_DEPTH,
            )

    def _parse_reject(self, record: LogRecord, reason: str, detail: str) -> None:
        if self._error_policy == "quarantine":
            self.stats.parse_quarantined += 1
            self.quarantine.add(record, reason, "parse", detail=detail)
        else:
            self.stats.syntax_errors += 1

    def _close_block(self, user: str) -> List[LogRecord]:
        queries = self._open.pop(user, [])
        if not queries:
            return []
        self._open_count -= len(queries)
        self.stats.blocks_closed += 1
        block = Block(user=user, queries=tuple(queries))
        result = clean_block(block, self.config, self.recorder)
        self.stats.instances_detected += result.instances_detected
        self.stats.instances_solved += result.instances_solved
        return result.records

    def _flush_idle(self, now: float) -> Iterator[LogRecord]:
        """Close every block idle at stream time ``now``; remember the
        oldest last-activity timestamp among the blocks that stay open.

        ``_oldest_open`` lets :meth:`process` skip this scan entirely
        until a record's timestamp could actually expire something.  It
        is a *lower bound* (appends to existing blocks don't raise it),
        so a stale value only causes a harmless extra scan — and the
        skip test uses the same ``now - last > gap`` expression as the
        close test here, so a skipped scan provably had nothing to do.
        """
        gap = self._block_gap
        oldest = float("inf")
        for user in list(self._open):
            queries = self._open[user]
            if not queries:
                continue
            last = queries[-1].timestamp
            if now - last > gap:
                yield from self._emit(self._close_block(user))
            elif last < oldest:
                oldest = last
        self._oldest_open = oldest

    def _emit(self, records: List[LogRecord]) -> Iterator[LogRecord]:
        # records_out is counted here, at the single emission point, so
        # the stats are correct whether the caller drives process()
        # directly or goes through run().
        self.stats.records_out += len(records)
        return iter(records)

    # ------------------------------------------------------------------
    # Driver

    def process(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Consume a time-ordered record stream, yield clean records.

        Emission order is block-close order; feed the output into a
        :class:`QueryLog` to restore global time order.  Equivalent to
        :meth:`feed` followed by :meth:`finish` — drive those directly
        to process a stream in checkpointable slices.
        """
        yield from self.feed(records)
        yield from self.finish()

    def feed(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Consume a slice of the stream *without* ending it.

        Open blocks stay open across calls — a chunk boundary is not a
        quiet period, so feeding a stream in arbitrary slices yields
        exactly the records :meth:`process` would have yielded (modulo
        the end-of-stream closes, which :meth:`finish` performs).  The
        slices must jointly be time-ordered, like the stream itself.
        """
        recorder = self.recorder
        timed = recorder.enabled
        clock = time.perf_counter
        validate_seconds = 0.0
        dedup_seconds = 0.0
        parse_seconds = 0.0
        stats = self.stats
        gap = self._block_gap
        max_block = self.max_block_queries
        for record in records:
            stats.records_in += 1
            if timed:
                started = clock()
                valid = self._validate(record)
                after_validate = clock()
                validate_seconds += after_validate - started
            else:
                valid = self._validate(record)
            if not valid:
                continue
            # Only scan the open-block table when this record's stream
            # time can actually expire the *oldest* open block — the
            # common case is a cheap subtraction instead of a full scan.
            if record.timestamp - self._oldest_open > gap:
                yield from self._flush_idle(record.timestamp)
                if timed:
                    # Block cleaning ran untimed in between (clean_block
                    # books its own spans); rebaseline the dedup timer.
                    after_validate = clock()

            duplicate = self._is_duplicate(record)
            if timed:
                after_dedup = clock()
                dedup_seconds += after_dedup - after_validate
            if duplicate:
                stats.duplicates_removed += 1
                continue
            parsed = self._parse(record)
            if timed:
                parse_seconds += clock() - after_dedup
            if parsed is None:
                continue
            user = record.user_key()
            bucket = self._open.get(user)
            if bucket is None:
                bucket = self._open[user] = []
            bucket.append(parsed)
            self._open_count += 1
            if record.timestamp < self._oldest_open:
                self._oldest_open = record.timestamp
            if self._open_count > stats.max_open_queries:
                stats.max_open_queries = self._open_count
            if len(bucket) >= max_block:
                stats.blocks_force_closed += 1
                yield from self._emit(self._close_block(user))
        if timed:
            recorder.add_seconds("validate", validate_seconds, calls=1)
            recorder.add_seconds("dedup", dedup_seconds, calls=1)
            recorder.add_seconds("parse", parse_seconds, calls=1)

    def finish(self) -> Iterator[LogRecord]:
        """End the stream: close every open block, flush the counters,
        and re-save the configured template dictionary sidecar."""
        for user in list(self._open):
            yield from self._emit(self._close_block(user))
        self._save_dict()
        self._flush_counters()

    def _save_dict(self) -> None:
        cache = self._parse_cache
        path = self.config.execution.template_dict
        if cache is None or path is None:
            return
        try:
            cache.save_dict(
                path,
                fold_variables=self._fold_variables,
                strict_triple=self._strict_triple,
            )
        except OSError as exc:
            warnings.warn(
                f"could not save template dict {os.fspath(path)!r}: {exc}"
            )

    def _flush_counters(self) -> None:
        """Book the per-record counters accumulated since the last flush.

        Dedup and parse happen per record here (not via the batch stage
        functions), so their counters are derived from
        :class:`StreamingStats` deltas; mine/detect/solve were already
        booked per closed block by
        :func:`~repro.pipeline.framework.clean_block`.
        """
        recorder = self.recorder
        cache = self._parse_cache
        if cache is not None:
            # The cache keeps the authoritative totals; mirror them into
            # the public stats so both views agree at every flush point.
            # The baselines are zero except after a checkpoint restore,
            # where they carry the dead instance's cache totals.
            self.stats.parse_cache_hits = self._cache_base_hits + cache.hits
            self.stats.parse_cache_misses = (
                self._cache_base_misses + cache.misses
            )
            self.stats.parse_cache_evictions = (
                self._cache_base_evictions + cache.evictions
            )
            self.stats.parse_materialised = (
                self._cache_base_materialised + cache.materialised
            )
        self.stats.parse_dict_preloaded = (
            self._dict_base_preloaded + self._dict_preloaded
        )
        # Same mirroring for the interner's dictionary size.
        self.stats.interner_size = len(self._interner)
        if not recorder.enabled:
            return
        recorder.ensure_counters()
        stats, flushed = self.stats, self._flushed
        records_in = stats.records_in - flushed.records_in
        invalid = stats.records_invalid - flushed.records_invalid
        duplicates = stats.duplicates_removed - flushed.duplicates_removed
        syntax_errors = stats.syntax_errors - flushed.syntax_errors
        non_select = stats.non_select - flushed.non_select
        parse_quarantined = stats.parse_quarantined - flushed.parse_quarantined
        recorder.count("validate", "records_in", records_in)
        recorder.count("validate", "records_out", records_in - invalid)
        recorder.count("validate", "records_quarantined", invalid)
        dedup_in = records_in - invalid
        recorder.count("dedup", "records_in", dedup_in)
        recorder.count("dedup", "records_out", dedup_in - duplicates)
        recorder.count("dedup", "duplicates_removed", duplicates)
        parse_in = dedup_in - duplicates
        parse_out = parse_in - syntax_errors - non_select - parse_quarantined
        lazy_hits = stats.parse_lazy_hits - flushed.parse_lazy_hits
        recorder.count("parse", "records_in", parse_in)
        recorder.count("parse", "records_out", parse_out)
        recorder.count("parse", "parse_lazy_hits", lazy_hits)
        recorder.count("parse", "parse_eager", parse_out - lazy_hits)
        recorder.count(
            "parse",
            "parse_cold",
            stats.parse_cold - flushed.parse_cold,
        )
        recorder.count(
            "parse",
            "parse_dict_preloaded",
            stats.parse_dict_preloaded - flushed.parse_dict_preloaded,
        )
        recorder.count(
            "parse",
            "parse_materialised",
            stats.parse_materialised - flushed.parse_materialised,
        )
        recorder.count("parse", "syntax_errors", syntax_errors)
        recorder.count("parse", "non_select", non_select)
        recorder.count("parse", "records_quarantined", parse_quarantined)
        recorder.count(
            "parse",
            "parse_cache_hits",
            stats.parse_cache_hits - flushed.parse_cache_hits,
        )
        recorder.count(
            "parse",
            "parse_cache_misses",
            stats.parse_cache_misses - flushed.parse_cache_misses,
        )
        recorder.count(
            "parse",
            "parse_cache_evictions",
            stats.parse_cache_evictions - flushed.parse_cache_evictions,
        )
        recorder.count(
            "parse",
            "interner_size",
            stats.interner_size - flushed.interner_size,
        )
        self._flushed = replace(stats)

    def run(self, log: QueryLog) -> QueryLog:
        """Convenience: stream a whole log, return the clean log."""
        return QueryLog(self.process(log))

    # ------------------------------------------------------------------
    # Checkpointing (see :mod:`repro.store.checkpoint`)

    def export_state(self) -> Dict[str, object]:
        """Snapshot the cleaner's full mutable state as JSON-ready data.

        Call between :meth:`feed` slices.  Counters are flushed first,
        so a recorder serialised right after this call agrees with the
        snapshot.  Open blocks are stored as their *source records* —
        :meth:`restore_state` re-parses them, which is cheaper than
        serialising parsed ASTs and provably equivalent (parsing is
        deterministic).
        """
        from ..log.io import record_as_dict

        self._flush_counters()
        oldest = self._oldest_open
        return {
            "stats": dataclasses.asdict(self.stats),
            "flushed": dataclasses.asdict(self._flushed),
            "interner": list(self._interner.fingerprints()),
            "last_seen": [
                [user, text, timestamp]
                for (user, text), timestamp in self._last_seen.items()
            ],
            "last_prune": self._last_prune,
            "open": [
                [user, [record_as_dict(query.record) for query in queries]]
                for user, queries in self._open.items()
            ],
            "oldest_open": None if oldest == float("inf") else oldest,
            "cache_baseline": [
                self.stats.parse_cache_hits,
                self.stats.parse_cache_misses,
                self.stats.parse_cache_evictions,
                self.stats.parse_materialised,
            ],
            # Witness texts of the interned templates, so a resume
            # starts with the warm L2 the dead run had earned.
            "template_dict_witnesses": (
                self._parse_cache.dict_witnesses()
                if self._parse_cache is not None
                else []
            ),
            "quarantine": self.quarantine.to_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a freshly constructed cleaner from :meth:`export_state`.

        The interner is rebuilt first (its id order *is* its state), so
        re-parsing the open-block records reassigns exactly the interned
        ids the dead run had handed out.  The parse cache starts empty —
        its counter baselines carry the dead run's totals, keeping the
        ``hits + misses == parse.records_in`` conservation law additive
        across the restore.
        """
        from ..log.io import record_from_dict

        self.stats = StreamingStats(**state["stats"])  # type: ignore[arg-type]
        self._flushed = StreamingStats(**state["flushed"])  # type: ignore[arg-type]
        self._interner = TemplateInterner(state["interner"])  # type: ignore[arg-type]
        self._intern = self._interner.intern
        self._last_seen = {
            (user, text): timestamp
            for user, text, timestamp in state["last_seen"]  # type: ignore[union-attr]
        }
        self._last_prune = state["last_prune"]  # type: ignore[assignment]
        baseline = state["cache_baseline"]
        self._cache_base_hits = baseline[0]  # type: ignore[index]
        self._cache_base_misses = baseline[1]  # type: ignore[index]
        self._cache_base_evictions = baseline[2]  # type: ignore[index]
        # Checkpoints written before the lazy fast path carry a
        # 3-element baseline; those runs never materialised anything.
        self._cache_base_materialised = (
            baseline[3] if len(baseline) > 3 else 0  # type: ignore[index, arg-type]
        )
        self.quarantine = QuarantineChannel.from_state(state["quarantine"])  # type: ignore[arg-type]
        # The restored stats already include the dead run's preload
        # total; rebase so this instance's own preloads stay additive.
        self._dict_base_preloaded = self.stats.parse_dict_preloaded
        self._dict_preloaded = 0
        witnesses = state.get("template_dict_witnesses")
        if self._parse_cache is not None and witnesses:
            self._dict_preloaded = self._parse_cache.preload(
                witnesses,  # type: ignore[arg-type]
                fold_variables=self._fold_variables,
                strict_triple=self._strict_triple,
            )
        self._open = {}
        self._open_count = 0
        for user, record_dicts in state["open"]:  # type: ignore[union-attr]
            queries: List[ParsedQuery] = []
            for data in record_dicts:
                record = record_from_dict(data)
                parsed = self._full_parse(record)
                if type(parsed) is tuple:
                    raise ValueError(
                        "checkpoint is inconsistent: open-block record "
                        f"seq={record.seq} no longer parses"
                    )
                queries.append(parsed)
            self._open[user] = queries
            self._open_count += len(queries)
        oldest = state["oldest_open"]
        self._oldest_open = float("inf") if oldest is None else oldest  # type: ignore[assignment]


def clean_log_streaming(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    max_block_queries: Optional[int] = None,
) -> Tuple[QueryLog, StreamingStats]:
    """Deprecated one-call streaming clean — use :func:`repro.clean`.

    .. deprecated:: 1.1
        ``repro.clean(log, config, execution="streaming")`` returns a
        result whose ``clean_log`` / ``streaming_stats`` carry the same
        two values.
    """
    warnings.warn(
        "clean_log_streaming() is deprecated; use "
        "repro.clean(log, config, execution='streaming')",
        DeprecationWarning,
        stacklevel=2,
    )
    effective = config or PipelineConfig()
    if max_block_queries is not None:
        effective = replace(
            effective,
            execution=replace(
                effective.execution, max_block_queries=max_block_queries
            ),
        )
    cleaner = StreamingCleaner(effective)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
