"""Streaming variant of the cleaning pipeline.

The paper's log has 42 million statements; holding the parsed log in
memory (as :class:`~repro.pipeline.framework.CleaningPipeline` does) is
fine for samples but not for full-scale runs.  The streaming cleaner
processes records in time order with bounded state:

* **dedup** — a last-seen map keyed by (user, normalised statement),
  pruned of entries older than the threshold;
* **blocking** — per-user open blocks; a block closes when its user goes
  quiet for longer than the miner's ``block_gap`` (measured against the
  stream clock), when it reaches ``max_block_queries``, or at end of
  stream;
* **detect + solve** — each closed block runs the detectors and the
  solver locally and its clean records are emitted.

The result is record-for-record identical to the batch pipeline's clean
log whenever no block was force-closed by the size bound, because both
detectors and solver only ever look *within* a block.  Global analyses
that need the whole log (the pattern registry, SWS classification) are
out of scope here by design — they are downstream consumers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..antipatterns.base import run_detectors
from ..log.dedup import normalize_statement_text
from ..log.models import LogRecord, QueryLog
from ..patterns.models import Block, ParsedQuery
from ..rewrite.solver import solve
from ..sqlparser import SqlError, UnsupportedStatementError, parse
from .config import PipelineConfig


@dataclass
class StreamingStats:
    """Counters of one streaming run."""

    records_in: int = 0
    records_out: int = 0
    duplicates_removed: int = 0
    syntax_errors: int = 0
    non_select: int = 0
    blocks_closed: int = 0
    blocks_force_closed: int = 0
    instances_detected: int = 0
    instances_solved: int = 0
    max_open_queries: int = 0


class StreamingCleaner:
    """Process a record stream with bounded memory.

    :param config: the same configuration the batch pipeline takes;
        ``config.sws`` is ignored (needs global state).
    :param max_block_queries: force-close bound per open block — the
        memory ceiling is roughly ``open users × max_block_queries``.
    """

    def __init__(
        self, config: Optional[PipelineConfig] = None, max_block_queries: int = 10_000
    ) -> None:
        if max_block_queries < 2:
            raise ValueError(
                f"max_block_queries must be >= 2, got {max_block_queries}"
            )
        self.config = config or PipelineConfig()
        self.max_block_queries = max_block_queries
        self.stats = StreamingStats()
        self._open: Dict[str, List[ParsedQuery]] = {}
        self._last_seen: Dict[Tuple[str, str], float] = {}
        self._last_prune = 0.0

    # ------------------------------------------------------------------
    # Stages

    def _is_duplicate(self, record: LogRecord) -> bool:
        threshold = self.config.dedup_threshold
        key = (record.user_key(), normalize_statement_text(record.sql))
        previous = self._last_seen.get(key)
        self._last_seen[key] = record.timestamp
        if previous is not None and record.timestamp - previous <= threshold:
            return True
        # periodically prune entries that can never match again
        if record.timestamp - self._last_prune > max(threshold, 1.0) * 64:
            horizon = record.timestamp - threshold
            self._last_seen = {
                k: ts for k, ts in self._last_seen.items() if ts >= horizon
            }
            self._last_prune = record.timestamp
        return False

    def _parse(self, record: LogRecord) -> Optional[ParsedQuery]:
        try:
            statement = parse(record.sql)
            return ParsedQuery.from_statement(
                record,
                statement,
                fold_variables=self.config.fold_variables,
                strict_triple=self.config.strict_triple,
            )
        except UnsupportedStatementError:
            self.stats.non_select += 1
            return None
        except (SqlError, RecursionError):
            self.stats.syntax_errors += 1
            return None

    def _close_block(self, user: str) -> List[LogRecord]:
        queries = self._open.pop(user, [])
        if not queries:
            return []
        self.stats.blocks_closed += 1
        block = Block(user=user, queries=tuple(queries))
        instances = run_detectors(
            [block], self.config.detection, self.config.detectors
        )
        self.stats.instances_detected += len(instances)
        block_log = QueryLog(query.record for query in queries)
        result = solve(block_log, instances)
        self.stats.instances_solved += len(result.solved)
        return result.log.records()

    def _flush_idle(self, now: float) -> Iterator[LogRecord]:
        gap = self.config.miner.block_gap
        for user in list(self._open):
            queries = self._open[user]
            if queries and now - queries[-1].timestamp > gap:
                yield from self._close_block(user)

    # ------------------------------------------------------------------
    # Driver

    def process(self, records: Iterable[LogRecord]) -> Iterator[LogRecord]:
        """Consume a time-ordered record stream, yield clean records.

        Emission order is block-close order; feed the output into a
        :class:`QueryLog` to restore global time order.
        """
        for record in records:
            self.stats.records_in += 1
            yield from self._flush_idle(record.timestamp)

            if self._is_duplicate(record):
                self.stats.duplicates_removed += 1
                continue
            parsed = self._parse(record)
            if parsed is None:
                continue
            bucket = self._open.setdefault(record.user_key(), [])
            bucket.append(parsed)
            open_count = sum(len(q) for q in self._open.values())
            self.stats.max_open_queries = max(
                self.stats.max_open_queries, open_count
            )
            if len(bucket) >= self.max_block_queries:
                self.stats.blocks_force_closed += 1
                yield from self._close_block(record.user_key())

        for user in list(self._open):
            yield from self._close_block(user)

    def run(self, log: QueryLog) -> QueryLog:
        """Convenience: stream a whole log, return the clean log."""
        cleaned = QueryLog(self.process(log))
        self.stats.records_out = len(cleaned)
        return cleaned


def clean_log_streaming(
    log: QueryLog,
    config: Optional[PipelineConfig] = None,
    max_block_queries: int = 10_000,
) -> Tuple[QueryLog, StreamingStats]:
    """One-call streaming clean: (clean log, streaming statistics)."""
    cleaner = StreamingCleaner(config, max_block_queries)
    cleaned = cleaner.run(log)
    return cleaned, cleaner.stats
