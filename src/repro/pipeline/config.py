"""Configuration of the cleaning pipeline (the framework's parameters,
Section 5: duplicate threshold, pattern-mining knobs, detector set) and
of its execution (batch / streaming / parallel)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..antipatterns.base import DetectionContext, Detector
from ..errors import validate_error_policy
from ..patterns.miner import MinerConfig
from ..patterns.sws import SwsConfig

#: Execution modes understood by :func:`repro.clean`.
EXECUTION_MODES = ("batch", "streaming", "parallel")

#: Shard transfer modes of the parallel executor's data plane.
TRANSFER_MODES = ("pickle", "shm")


@dataclass(frozen=True)
class ExecutionConfig:
    """*How* the pipeline runs — orthogonal to *what* it computes.

    Every execution knob lives here, so the same :class:`PipelineConfig`
    can be handed to any execution path unchanged.

    :param mode: ``"batch"`` (whole log in memory, full
        :class:`~repro.pipeline.framework.PipelineResult` artifacts),
        ``"streaming"`` (bounded memory, one pass, statistics only) or
        ``"parallel"`` (hash-sharded by user across worker processes).
    :param workers: worker-process count for parallel mode; ``0`` means
        one per available CPU.
    :param max_block_queries: force-close bound per open block in
        streaming mode — the memory ceiling is roughly ``open users ×
        max_block_queries``.  Ignored by batch and parallel modes (they
        hold whole blocks by construction).
    :param chunk_size: target number of records per worker task in
        parallel mode.  ``0`` (the default) sizes shards adaptively —
        about ``2 × workers`` tasks, rebalanced by per-shard record
        counts, which amortises per-task overhead while still riding out
        one slow shard.  An explicit positive value pins the classic
        fixed-size packing.  Smaller chunks balance skewed users better
        but cost more inter-process traffic; a chunk never splits a
        user.
    :param transfer: how parallel shards travel to the workers.
        ``"pickle"`` (the default) encodes each shard into one
        contiguous columnar buffer and ships it as a single pickle-5
        bytes object; ``"shm"`` places the same buffer in a
        ``multiprocessing.shared_memory`` segment that workers attach to
        without copying.  The clean log is byte-identical either way —
        only transfer cost and the merge-stage ``bytes_shipped`` /
        ``shm_segments`` counters change.
    :param pool_reuse: keep the worker process pool warm between runs.
        ``True`` (the default) parks the pool in a process-wide registry
        (see :func:`repro.pipeline.parallel.get_worker_pool`) so
        subsequent :func:`repro.clean` calls skip worker start-up and
        reuse each worker's persistent parse cache; pools are shut down
        atexit and rebuilt transparently after a crash.  ``False`` gives
        the run a private pool torn down when it finishes.
    :param max_shard_retries: how many times a failed parallel shard is
        re-submitted (worker crash, timeout, transient stage exception)
        before it is declared terminally failed and handed to the error
        policy.  ``0`` disables retries.
    :param retry_backoff: base sleep (seconds) between retry rounds;
        doubles each round.
    :param task_timeout: per-shard wall-clock budget in seconds for
        parallel mode; ``None`` (the default) waits indefinitely.  A
        shard exceeding it is treated like a crashed worker: the pool is
        recycled and the shard re-queued.
    :param parse_cache: enable the parse-stage fast path — a
        fingerprint-keyed :class:`~repro.skeleton.cache.TemplateCache`
        that instantiates repeated statement templates from interned
        skeletons instead of re-parsing them.  Outputs are byte-identical
        with the cache on or off (the cache falls back to the full
        parser whenever a fingerprint is ambiguous).
    :param parse_cache_size: maximum number of cached templates per
        cache instance (batch keeps one cache per run; streaming one per
        pipeline instance; parallel one per shard).
    :param lazy_parse: emit *lazy* queries on parse-cache fingerprint
        hits — the query carries only its record, interned skeleton and
        constant vector; SQL text, AST and clause features materialise
        on first access (solver, quarantine writer, output).  Mining and
        detection run on the interned skeleton, so warm parses skip the
        splice entirely.  Outputs stay byte-identical to eager mode (the
        E22/E26 differential harnesses pin this); only the
        executor-dependent ``parse_lazy_hits`` / ``parse_eager`` /
        ``parse_materialised`` counters change.  Ignored when
        ``parse_cache`` is off (the fast path needs the cache's interned
        prototypes).
    :param template_dict: path of a persistent template dictionary
        sidecar (:meth:`~repro.skeleton.cache.TemplateCache.save_dict`).
        When set, the run preloads its parse cache from the sidecar
        before the first record (witness texts are re-parsed through the
        run's own cold path, so a stale or corrupt dictionary can only
        cost speed, never output) and batch/streaming runs re-save the
        dictionary when they finish.  A missing file means a cold first
        run; the knob is ignored when ``parse_cache`` is off.
    :param source_chunk_records: records per chunk when a
        :class:`~repro.store.sources.LogSource` is built from a path or
        in-memory log (sources constructed explicitly carry their own
        chunking; the columnar store streams its stored chunks).  Chunk
        size bounds streaming-mode working memory and sets the
        checkpoint granularity.
    """

    mode: str = "batch"
    workers: int = 0
    max_block_queries: int = 10_000
    chunk_size: int = 0
    transfer: str = "pickle"
    pool_reuse: bool = True
    max_shard_retries: int = 2
    retry_backoff: float = 0.05
    task_timeout: Optional[float] = None
    parse_cache: bool = True
    parse_cache_size: int = 4096
    lazy_parse: bool = True
    template_dict: Optional[str] = None
    source_chunk_records: int = 8192

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_block_queries < 2:
            raise ValueError(
                f"max_block_queries must be >= 2, got {self.max_block_queries}"
            )
        if self.chunk_size < 0:
            raise ValueError(
                f"chunk_size must be >= 0 (0 = adaptive), got {self.chunk_size}"
            )
        if self.transfer not in TRANSFER_MODES:
            raise ValueError(
                f"transfer must be one of {TRANSFER_MODES}, "
                f"got {self.transfer!r}"
            )
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive or None, got {self.task_timeout}"
            )
        if self.parse_cache_size < 1:
            raise ValueError(
                f"parse_cache_size must be >= 1, got {self.parse_cache_size}"
            )
        if self.template_dict is not None and not isinstance(
            self.template_dict, (str, os.PathLike)
        ):
            raise ValueError(
                "template_dict must be a filesystem path or None, "
                f"got {self.template_dict!r}"
            )
        if self.source_chunk_records < 1:
            raise ValueError(
                "source_chunk_records must be >= 1, "
                f"got {self.source_chunk_records}"
            )

    def resolved_workers(self) -> int:
        """The effective worker count (``workers`` or the CPU count)."""
        if self.workers:
            return self.workers
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1


@dataclass
class PipelineConfig:
    """All knobs of one pipeline run.

    :param dedup_threshold: seconds for duplicate deletion (Section 5.2);
        Table 4 motivates the 1-second default.
    :param miner: blocking / segmentation parameters.
    :param detection: schema knowledge and detector tuning.
    :param detectors: detector set; ``None`` selects the paper's default
        (Stifle, CTH, SNC).
    :param sws: SWS thresholds; ``None`` disables the SWS scan.
    :param fold_variables: skeletonize ``@variables`` too.
    :param strict_triple: use the paper-verbatim template identity
        (SFC, SWC, SSC only — no GROUP/ORDER/TOP component).
    :param error_policy: what to do with records the pipeline cannot
        process (see :mod:`repro.errors`): ``"strict"`` raises,
        ``"lenient"`` drops and counts, ``"quarantine"`` drops, counts
        and captures them in the result's quarantine channel.
    :param execution: execution-mode parameters (see
        :class:`ExecutionConfig`); configuration of *what* to compute is
        everything above, *how* to run it is this one object.
    """

    dedup_threshold: float = 1.0
    miner: MinerConfig = field(default_factory=MinerConfig)
    detection: DetectionContext = field(default_factory=DetectionContext)
    detectors: Optional[Sequence[Detector]] = None
    sws: Optional[SwsConfig] = None
    fold_variables: bool = False
    strict_triple: bool = False
    error_policy: str = "strict"
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        validate_error_policy(self.error_policy)
