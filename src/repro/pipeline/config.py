"""Configuration of the cleaning pipeline (the framework's parameters,
Section 5: duplicate threshold, pattern-mining knobs, detector set)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..antipatterns.base import DetectionContext, Detector
from ..patterns.miner import MinerConfig
from ..patterns.sws import SwsConfig


@dataclass
class PipelineConfig:
    """All knobs of one pipeline run.

    :param dedup_threshold: seconds for duplicate deletion (Section 5.2);
        Table 4 motivates the 1-second default.
    :param miner: blocking / segmentation parameters.
    :param detection: schema knowledge and detector tuning.
    :param detectors: detector set; ``None`` selects the paper's default
        (Stifle, CTH, SNC).
    :param sws: SWS thresholds; ``None`` disables the SWS scan.
    :param fold_variables: skeletonize ``@variables`` too.
    :param strict_triple: use the paper-verbatim template identity
        (SFC, SWC, SSC only — no GROUP/ORDER/TOP component).
    """

    dedup_threshold: float = 1.0
    miner: MinerConfig = field(default_factory=MinerConfig)
    detection: DetectionContext = field(default_factory=DetectionContext)
    detectors: Optional[Sequence[Detector]] = None
    sws: Optional[SwsConfig] = None
    fold_variables: bool = False
    strict_triple: bool = False
