"""Configuration of the cleaning pipeline (the framework's parameters,
Section 5: duplicate threshold, pattern-mining knobs, detector set) and
of its execution (batch / streaming / parallel)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..antipatterns.base import DetectionContext, Detector
from ..patterns.miner import MinerConfig
from ..patterns.sws import SwsConfig

#: Execution modes understood by :func:`repro.clean`.
EXECUTION_MODES = ("batch", "streaming", "parallel")


@dataclass(frozen=True)
class ExecutionConfig:
    """*How* the pipeline runs — orthogonal to *what* it computes.

    Every execution knob lives here, so the same :class:`PipelineConfig`
    can be handed to any execution path unchanged.

    :param mode: ``"batch"`` (whole log in memory, full
        :class:`~repro.pipeline.framework.PipelineResult` artifacts),
        ``"streaming"`` (bounded memory, one pass, statistics only) or
        ``"parallel"`` (hash-sharded by user across worker processes).
    :param workers: worker-process count for parallel mode; ``0`` means
        one per available CPU.
    :param max_block_queries: force-close bound per open block in
        streaming mode — the memory ceiling is roughly ``open users ×
        max_block_queries``.  Ignored by batch and parallel modes (they
        hold whole blocks by construction).
    :param chunk_size: target number of records per worker task in
        parallel mode.  Smaller chunks balance skewed users better but
        cost more inter-process traffic; a chunk never splits a user.
    """

    mode: str = "batch"
    workers: int = 0
    max_block_queries: int = 10_000
    chunk_size: int = 4096

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.max_block_queries < 2:
            raise ValueError(
                f"max_block_queries must be >= 2, got {self.max_block_queries}"
            )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def resolved_workers(self) -> int:
        """The effective worker count (``workers`` or the CPU count)."""
        if self.workers:
            return self.workers
        try:
            return len(os.sched_getaffinity(0)) or 1
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1


@dataclass
class PipelineConfig:
    """All knobs of one pipeline run.

    :param dedup_threshold: seconds for duplicate deletion (Section 5.2);
        Table 4 motivates the 1-second default.
    :param miner: blocking / segmentation parameters.
    :param detection: schema knowledge and detector tuning.
    :param detectors: detector set; ``None`` selects the paper's default
        (Stifle, CTH, SNC).
    :param sws: SWS thresholds; ``None`` disables the SWS scan.
    :param fold_variables: skeletonize ``@variables`` too.
    :param strict_triple: use the paper-verbatim template identity
        (SFC, SWC, SSC only — no GROUP/ORDER/TOP component).
    :param execution: execution-mode parameters (see
        :class:`ExecutionConfig`); configuration of *what* to compute is
        everything above, *how* to run it is this one object.
    """

    dedup_threshold: float = 1.0
    miner: MinerConfig = field(default_factory=MinerConfig)
    detection: DetectionContext = field(default_factory=DetectionContext)
    detectors: Optional[Sequence[Detector]] = None
    sws: Optional[SwsConfig] = None
    fold_variables: bool = False
    strict_triple: bool = False
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
