"""Pattern mining (Definitions 7–10) and SWS detection (Section 6.5)."""

from .models import Block, ParsedQuery, PatternInstance, PeriodicRun
from .miner import MinerConfig, MiningResult, build_blocks, mine, segment_block
from .registry import PatternRegistry, PatternStats
from .sws import SWS_LABEL, SwsConfig, SwsReport, coverage_grid, detect_sws

__all__ = [
    "Block",
    "ParsedQuery",
    "PatternInstance",
    "PeriodicRun",
    "MinerConfig",
    "MiningResult",
    "build_blocks",
    "mine",
    "segment_block",
    "PatternRegistry",
    "PatternStats",
    "SWS_LABEL",
    "SwsConfig",
    "SwsReport",
    "coverage_grid",
    "detect_sws",
]
