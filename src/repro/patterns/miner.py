"""Pattern mining: blocks, periodic segmentation, pattern instances.

The paper defines patterns (Definition 7) as sequences of query templates
and instances (Definition 8) as gap-free same-user occurrences, but leaves
the concrete mining procedure to the framework.  We implement it as:

1. **Blocking** — split each user's time-ordered stream at gaps larger
   than ``block_gap`` seconds ("short time between them", Section 4.1.1).
2. **Periodic segmentation** — scan each block left to right; at each
   position find the period ``p ≤ max_period`` whose unit repeats the
   most *queries* from here (ties prefer the shortest period, so ``AAAA``
   is one pattern of length 1 repeated 4×, not length 2 repeated 2×).
   Each cycle of the winning unit is one :class:`PatternInstance`; the
   whole segment is one :class:`PeriodicRun`.

The segmentation is greedy and deterministic.  Frequency (Definition 9)
counts instances, i.e. cycles — this matches Table 7, where the top
pattern's frequency (3.35 M) roughly equals its query coverage (8.69 % of
38.5 M), implying one-query instances for single-template patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .models import Block, ParsedQuery, PatternInstance, PeriodicRun


@dataclass(frozen=True)
class MinerConfig:
    """Tuning knobs of the miner.

    :param block_gap: seconds; a larger gap between consecutive queries of
        one user starts a new block.
    :param max_period: longest pattern unit considered by the periodic
        segmentation.  The paper's reported patterns have 1–3 templates;
        5 leaves headroom.
    """

    block_gap: float = 300.0
    max_period: int = 5

    def __post_init__(self) -> None:
        if self.block_gap <= 0:
            raise ValueError(f"block_gap must be > 0, got {self.block_gap}")
        if self.max_period < 1:
            raise ValueError(f"max_period must be >= 1, got {self.max_period}")


def build_blocks(
    queries: Iterable[ParsedQuery], config: MinerConfig = MinerConfig()
) -> List[Block]:
    """Group parsed queries into same-user, small-gap blocks.

    Input order must be log order (the pipeline guarantees it); within the
    stream each user's records are picked out preserving that order, so
    Definition 8's "no intervening query from the same user" holds for
    every consecutive slice of a block.

    This runs once per query of the whole log, so the loops read the
    record fields directly instead of through the ``ParsedQuery.user`` /
    ``.timestamp`` property chain (two extra calls per record, ~15% of
    the mining stage before the rewrite).  The inlined ``user`` default
    mirrors :meth:`~repro.log.models.LogRecord.user_key`.
    """
    per_user: dict = {}
    get_bucket = per_user.get
    for query in queries:
        user = query.record.user
        if user is None:
            user = "<anonymous>"
        bucket = get_bucket(user)
        if bucket is None:
            bucket = per_user[user] = []
        bucket.append(query)

    gap = config.block_gap
    blocks: List[Block] = []
    append = blocks.append
    for user, stream in per_user.items():  # dicts preserve first-seen order
        start = 0
        previous = stream[0].record.timestamp
        for index in range(1, len(stream)):
            timestamp = stream[index].record.timestamp
            if timestamp - previous > gap:
                append(Block(user=user, queries=tuple(stream[start:index])))
                start = index
            previous = timestamp
        append(Block(user=user, queries=tuple(stream[start:])))
    return blocks


def _best_period(
    template_ids: Sequence[int], start: int, max_period: int
) -> Tuple[int, int]:
    """At ``start``, return (period, repeats) maximising covered queries.

    Ties are broken toward the smaller period.  A (p, 1) result means no
    repetition was found for any period — the caller emits a single
    length-``p``′ instance with p′=1.

    This is the miner's innermost kernel, called once per emitted run; it
    works on any equality-comparable id sequence but is tuned for the
    interned-int tuples :func:`segment_block` feeds it: probes compare
    window elements in place instead of building a tuple per probe (the
    pre-interning implementation allocated ``remaining/period`` tuples
    per candidate period).
    """
    ids = template_ids
    length = len(ids)
    remaining = length - start

    # Period 1 — a scalar run-length scan, the most common winner by far.
    first = ids[start]
    position = start + 1
    while position < length and ids[position] == first:
        position += 1
    repeats = position - start
    if repeats >= 2:
        best_period, best_repeats, best_cover = 1, repeats, repeats
        if repeats == remaining:
            return 1, repeats  # the whole tail is one unit; nothing beats it
    else:
        best_period, best_repeats, best_cover = 1, 1, 1

    for period in range(2, min(max_period, remaining // 2) + 1):
        repeats = 1
        position = start + period
        while position + period <= length:
            offset = 0
            while offset < period and ids[position + offset] == ids[start + offset]:
                offset += 1
            if offset < period:
                break
            repeats += 1
            position += period
        cover = period * repeats
        if repeats >= 2 and cover > best_cover:
            best_period, best_repeats, best_cover = period, repeats, cover
            if cover == remaining:
                break  # full coverage; longer periods cannot exceed it
    return best_period, best_repeats


@dataclass
class MiningResult:
    """Everything the segmentation produced.

    :param blocks: the same-user small-gap blocks.
    :param runs: all periodic runs (repeats ≥ 2) — the stifle detectors'
        input — plus the singleton segments (repeats = 1), which CTH
        detection and coverage accounting still need.

    The per-cycle :attr:`instances` view is *derived*: every instance is
    one cycle of one run, so the list is materialised lazily on first
    access and cached.  The pipeline's hot path never asks for it — the
    registry aggregates whole runs and the detectors walk blocks — so a
    cleaning run without SWS detection skips building one
    :class:`PatternInstance` per cycle of the entire log.
    """

    blocks: List[Block] = field(default_factory=list)
    runs: List[PeriodicRun] = field(default_factory=list)
    _instances: Optional[List[PatternInstance]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def instance_count(self) -> int:
        """Number of pattern instances (one per cycle), without
        materialising :attr:`instances`."""
        if self._instances is not None:
            return len(self._instances)
        return sum(run.repeats for run in self.runs)

    @property
    def instances(self) -> List[PatternInstance]:
        """All pattern instances, one per cycle (built lazily, cached)."""
        instances = self._instances
        if instances is None:
            instances = []
            append = instances.append
            for run in self.runs:
                # Inlined run.cycles(): one instance per cycle without
                # the intermediate list of slices.  Most runs have
                # period 1, where each cycle is a plain 1-tuple.
                unit = run.unit
                unit_ids = run.unit_ids
                queries = run.queries
                period = len(unit)
                if period == 1:
                    for query in queries:
                        append(PatternInstance(unit, (query,), unit_ids))
                else:
                    for index in range(0, len(queries), period):
                        append(
                            PatternInstance(
                                unit,
                                queries[index : index + period],
                                unit_ids,
                            )
                        )
            self._instances = instances
        return instances


def segment_block(block: Block, config: MinerConfig = MinerConfig()) -> List[PeriodicRun]:
    """Greedy periodic segmentation of one block (see module docstring).

    The scan runs on the block's interned int ids (block-local dense ids
    when the queries were never interned — equality is identical either
    way), and each run's string ``unit`` is rebuilt from its first cycle
    only, so no whole-block string tuple is materialised.  ``unit_ids``
    is filled only from *globally* interned ids: block-local ids from
    different blocks must never meet in a registry key.
    """
    ids = block.interned_ids()
    global_ids = ids is not None
    if not global_ids:
        ids = block.local_ids()
    length = len(ids)
    queries = block.queries
    max_period = config.max_period
    runs: List[PeriodicRun] = []
    append = runs.append
    position = 0
    while position < length:
        period, repeats = _best_period(ids, position, max_period)
        if repeats == 1:
            period = 1  # no repetition: emit the single query as its own unit
        stop = position + period * repeats
        run_queries = queries[position:stop]
        if period == 1:
            unit = (run_queries[0].template_id,)
        else:
            unit = tuple(
                query.template_id for query in run_queries[:period]
            )
        append(
            PeriodicRun(
                unit,
                run_queries,
                repeats,
                ids[position : position + period] if global_ids else None,
            )
        )
        position = stop
    return runs


def mine(
    queries: Iterable[ParsedQuery], config: MinerConfig = MinerConfig()
) -> MiningResult:
    """Run the full mining stage over a parsed query stream.

    The result's per-cycle instance list is *not* built here — it
    derives from the runs on first access (see :class:`MiningResult`),
    so callers that aggregate runs directly never pay for it.
    """
    result = MiningResult()
    result.blocks = build_blocks(queries, config)
    extend_runs = result.runs.extend
    for block in result.blocks:
        extend_runs(segment_block(block, config))
    return result
