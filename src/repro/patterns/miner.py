"""Pattern mining: blocks, periodic segmentation, pattern instances.

The paper defines patterns (Definition 7) as sequences of query templates
and instances (Definition 8) as gap-free same-user occurrences, but leaves
the concrete mining procedure to the framework.  We implement it as:

1. **Blocking** — split each user's time-ordered stream at gaps larger
   than ``block_gap`` seconds ("short time between them", Section 4.1.1).
2. **Periodic segmentation** — scan each block left to right; at each
   position find the period ``p ≤ max_period`` whose unit repeats the
   most *queries* from here (ties prefer the shortest period, so ``AAAA``
   is one pattern of length 1 repeated 4×, not length 2 repeated 2×).
   Each cycle of the winning unit is one :class:`PatternInstance`; the
   whole segment is one :class:`PeriodicRun`.

The segmentation is greedy and deterministic.  Frequency (Definition 9)
counts instances, i.e. cycles — this matches Table 7, where the top
pattern's frequency (3.35 M) roughly equals its query coverage (8.69 % of
38.5 M), implying one-query instances for single-template patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from .models import Block, ParsedQuery, PatternInstance, PeriodicRun


@dataclass(frozen=True)
class MinerConfig:
    """Tuning knobs of the miner.

    :param block_gap: seconds; a larger gap between consecutive queries of
        one user starts a new block.
    :param max_period: longest pattern unit considered by the periodic
        segmentation.  The paper's reported patterns have 1–3 templates;
        5 leaves headroom.
    """

    block_gap: float = 300.0
    max_period: int = 5

    def __post_init__(self) -> None:
        if self.block_gap <= 0:
            raise ValueError(f"block_gap must be > 0, got {self.block_gap}")
        if self.max_period < 1:
            raise ValueError(f"max_period must be >= 1, got {self.max_period}")


def build_blocks(
    queries: Iterable[ParsedQuery], config: MinerConfig = MinerConfig()
) -> List[Block]:
    """Group parsed queries into same-user, small-gap blocks.

    Input order must be log order (the pipeline guarantees it); within the
    stream each user's records are picked out preserving that order, so
    Definition 8's "no intervening query from the same user" holds for
    every consecutive slice of a block.
    """
    per_user: dict = {}
    order: List[str] = []
    for query in queries:
        key = query.user
        if key not in per_user:
            per_user[key] = []
            order.append(key)
        per_user[key].append(query)

    blocks: List[Block] = []
    for user in order:
        stream = per_user[user]
        start = 0
        for index in range(1, len(stream)):
            gap = stream[index].timestamp - stream[index - 1].timestamp
            if gap > config.block_gap:
                blocks.append(Block(user=user, queries=tuple(stream[start:index])))
                start = index
        blocks.append(Block(user=user, queries=tuple(stream[start:])))
    return blocks


def _best_period(
    template_ids: Sequence[str], start: int, max_period: int
) -> Tuple[int, int]:
    """At ``start``, return (period, repeats) maximising covered queries.

    Ties are broken toward the smaller period.  A (p, 1) result means no
    repetition was found for any period — the caller emits a single
    length-``p``′ instance with p′=1.
    """
    best_period, best_repeats, best_cover = 1, 1, 1
    remaining = len(template_ids) - start
    for period in range(1, min(max_period, remaining // 2) + 1):
        unit = tuple(template_ids[start : start + period])
        repeats = 1
        position = start + period
        while (
            position + period <= len(template_ids)
            and tuple(template_ids[position : position + period]) == unit
        ):
            repeats += 1
            position += period
        cover = period * repeats
        if repeats >= 2 and cover > best_cover:
            best_period, best_repeats, best_cover = period, repeats, cover
    return best_period, best_repeats


@dataclass
class MiningResult:
    """Everything the segmentation produced.

    :param blocks: the same-user small-gap blocks.
    :param instances: all pattern instances (one per cycle).
    :param runs: all periodic runs (repeats ≥ 2) — the stifle detectors'
        input — plus the singleton segments (repeats = 1), which CTH
        detection and coverage accounting still need.
    """

    blocks: List[Block] = field(default_factory=list)
    instances: List[PatternInstance] = field(default_factory=list)
    runs: List[PeriodicRun] = field(default_factory=list)


def segment_block(block: Block, config: MinerConfig = MinerConfig()) -> List[PeriodicRun]:
    """Greedy periodic segmentation of one block (see module docstring)."""
    template_ids = block.template_ids()
    runs: List[PeriodicRun] = []
    position = 0
    while position < len(template_ids):
        period, repeats = _best_period(template_ids, position, config.max_period)
        if repeats == 1:
            period = 1  # no repetition: emit the single query as its own unit
        unit = tuple(template_ids[position : position + period])
        queries = block.slice(position, position + period * repeats)
        runs.append(PeriodicRun(unit=unit, queries=queries, repeats=repeats))
        position += period * repeats
    return runs


def mine(
    queries: Iterable[ParsedQuery], config: MinerConfig = MinerConfig()
) -> MiningResult:
    """Run the full mining stage over a parsed query stream."""
    result = MiningResult()
    result.blocks = build_blocks(queries, config)
    for block in result.blocks:
        for run in segment_block(block, config):
            result.runs.append(run)
            for cycle in run.cycles():
                result.instances.append(
                    PatternInstance(unit=run.unit, queries=cycle)
                )
    return result
