"""Pattern registry: per-pattern statistics (Definitions 9 and 10).

Aggregates the miner's instances into one row per pattern — frequency,
userPopularity, distinct IPs, query coverage, representative skeletons —
and carries the antipattern classification the detectors attach.  This is
the "Patterns" result box of Fig. 1 and the source of Tables 6 and 7 and
of Fig. 2(a, b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .models import ParsedQuery, PatternInstance


@dataclass
class PatternStats:
    """Aggregate statistics of one pattern.

    :param unit: the pattern identity (sequence of template ids).
    :param skeletons: one representative skeleton SQL per unit position.
    :param frequency: Definition 9 — number of instances in the log.
    :param users: distinct user keys that produced instances.
    :param ips: distinct client IPs (when the log has them).
    :param query_count: total queries covered by all instances.
    :param antipattern_types: detector labels attached later ("DW-Stifle",
        "CTH-candidate", …); empty for plain patterns.
    """

    unit: Tuple[str, ...]
    skeletons: Tuple[str, ...]
    frequency: int = 0
    users: Set[str] = field(default_factory=set)
    ips: Set[str] = field(default_factory=set)
    query_count: int = 0
    antipattern_types: Set[str] = field(default_factory=set)

    @property
    def user_popularity(self) -> int:
        """Definition 10 — number of users that submitted instances."""
        return len(self.users)

    @property
    def distinct_ips(self) -> int:
        return len(self.ips)

    @property
    def is_antipattern(self) -> bool:
        return bool(self.antipattern_types)

    def coverage(self, log_size: int) -> float:
        """Fraction of the log covered by this pattern's instances."""
        return self.query_count / log_size if log_size else 0.0


class PatternRegistry:
    """Mapping from pattern unit to its :class:`PatternStats`."""

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, ...], PatternStats] = {}

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self):
        return iter(self._stats.values())

    def __contains__(self, unit: Tuple[str, ...]) -> bool:
        return unit in self._stats

    def get(self, unit: Tuple[str, ...]) -> Optional[PatternStats]:
        return self._stats.get(unit)

    # ------------------------------------------------------------------
    # Building

    def add_instance(self, instance: PatternInstance) -> PatternStats:
        """Count one pattern instance into the registry."""
        stats = self._stats.get(instance.unit)
        if stats is None:
            stats = PatternStats(
                unit=instance.unit,
                skeletons=tuple(
                    query.template.skeleton_sql for query in instance.queries
                ),
            )
            self._stats[instance.unit] = stats
        stats.frequency += 1
        stats.query_count += len(instance.queries)
        stats.users.add(instance.user)
        for query in instance.queries:
            if query.record.ip:
                stats.ips.add(query.record.ip)
        return stats

    @classmethod
    def from_instances(
        cls, instances: Iterable[PatternInstance]
    ) -> "PatternRegistry":
        registry = cls()
        for instance in instances:
            registry.add_instance(instance)
        return registry

    def mark_antipattern(self, unit: Tuple[str, ...], label: str) -> None:
        """Attach an antipattern label to a pattern (detector callback).

        Unknown units are ignored: a detector may label a sub-sequence the
        miner did not materialise as its own pattern.
        """
        stats = self._stats.get(unit)
        if stats is not None:
            stats.antipattern_types.add(label)

    # ------------------------------------------------------------------
    # Queries

    def ranked(self, *, antipatterns: Optional[bool] = None) -> List[PatternStats]:
        """Patterns sorted by descending frequency (rank 1 first).

        :param antipatterns: None = all patterns; True = antipatterns
            only; False = plain patterns only.
        """
        rows = [
            stats
            for stats in self._stats.values()
            if antipatterns is None or stats.is_antipattern == antipatterns
        ]
        rows.sort(key=lambda s: (-s.frequency, s.unit))
        return rows

    def top(self, count: int, **kwargs) -> List[PatternStats]:
        """The ``count`` most frequent patterns (see :meth:`ranked`)."""
        return self.ranked(**kwargs)[:count]

    def total_instances(self) -> int:
        return sum(stats.frequency for stats in self._stats.values())

    def total_queries(self) -> int:
        return sum(stats.query_count for stats in self._stats.values())

    def max_frequency(self) -> int:
        return max((stats.frequency for stats in self._stats.values()), default=0)
