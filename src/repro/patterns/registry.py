"""Pattern registry: per-pattern statistics (Definitions 9 and 10).

Aggregates the miner's instances into one row per pattern — frequency,
userPopularity, distinct IPs, query coverage, representative skeletons —
and carries the antipattern classification the detectors attach.  This is
the "Patterns" result box of Fig. 1 and the source of Tables 6 and 7 and
of Fig. 2(a, b).

Internally the registry keys its rows on the instances' *interned* unit
ids (tuples of run-scoped dense ints) whenever the mining run interned
its queries — one small-int tuple hash per instance instead of hashing
16-char fingerprints, on the hottest aggregation loop of the pipeline.
The public surface is unchanged: every row stores the string ``unit`` it
was created with, lookups accept either representation, and
:meth:`ranked` orders by the string unit, so reports are byte-identical
to the pre-interning implementation.  One registry must only aggregate
instances of a single mining run (interned ids are run-scoped); mixing
runs is only safe for un-interned instances, which fall back to string
keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from .models import ParsedQuery, PatternInstance, PeriodicRun

_record_ip = attrgetter("record.ip")

#: A registry key: the interned unit (fast path) or the string unit.
UnitKey = Union[Tuple[int, ...], Tuple[str, ...]]


@dataclass
class PatternStats:
    """Aggregate statistics of one pattern.

    :param unit: the pattern identity (sequence of template ids).
    :param skeletons: one representative skeleton SQL per unit position.
    :param frequency: Definition 9 — number of instances in the log.
    :param users: distinct user keys that produced instances.
    :param ips: distinct client IPs (when the log has them).
    :param query_count: total queries covered by all instances.
    :param antipattern_types: detector labels attached later ("DW-Stifle",
        "CTH-candidate", …); empty for plain patterns.
    :param unit_ids: ``unit`` as the run-scoped interned ids the registry
        keyed this row on (``None`` when the row came from un-interned
        instances).  Run-scoped — meaningless outside the run.
    """

    unit: Tuple[str, ...]
    skeletons: Tuple[str, ...]
    frequency: int = 0
    users: Set[str] = field(default_factory=set)
    ips: Set[str] = field(default_factory=set)
    query_count: int = 0
    antipattern_types: Set[str] = field(default_factory=set)
    unit_ids: Optional[Tuple[int, ...]] = None

    @property
    def user_popularity(self) -> int:
        """Definition 10 — number of users that submitted instances."""
        return len(self.users)

    @property
    def distinct_ips(self) -> int:
        return len(self.ips)

    @property
    def is_antipattern(self) -> bool:
        return bool(self.antipattern_types)

    def coverage(self, log_size: int) -> float:
        """Fraction of the log covered by this pattern's instances."""
        return self.query_count / log_size if log_size else 0.0


class PatternRegistry:
    """Mapping from pattern unit to its :class:`PatternStats`.

    Rows are keyed on interned unit ids internally (see the module
    docstring); ``_by_unit`` is a string-keyed secondary index over the
    same row objects, so the public lookups accept both representations.
    The ``total_instances`` / ``total_queries`` / ``max_frequency``
    aggregates are maintained incrementally in :meth:`add_instance` —
    report and statistics code calls them repeatedly, and the old
    full-scan implementations were rescanning every row each time.
    """

    def __init__(self) -> None:
        self._stats: Dict[UnitKey, PatternStats] = {}
        self._by_unit: Dict[Tuple[str, ...], PatternStats] = {}
        self._total_instances = 0
        self._total_queries = 0
        self._max_frequency = 0

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self):
        return iter(self._stats.values())

    def __contains__(self, unit: UnitKey) -> bool:
        return unit in self._stats or unit in self._by_unit

    def get(self, unit: UnitKey) -> Optional[PatternStats]:
        """The row for ``unit`` — interned ids or fingerprint strings."""
        stats = self._stats.get(unit)
        if stats is None:
            stats = self._by_unit.get(unit)  # type: ignore[arg-type]
        return stats

    # ------------------------------------------------------------------
    # Building

    def add_instance(self, instance: PatternInstance) -> PatternStats:
        """Count one pattern instance into the registry."""
        key: UnitKey = instance.unit_ids or instance.unit
        stats = self._stats.get(key)
        queries = instance.queries
        if stats is None:
            unit = instance.unit
            stats = PatternStats(
                unit=unit,
                skeletons=tuple(
                    query.template.skeleton_sql for query in queries
                ),
                unit_ids=instance.unit_ids,
            )
            self._stats[key] = stats
            self._by_unit[unit] = stats
        frequency = stats.frequency + 1
        stats.frequency = frequency
        if frequency > self._max_frequency:
            self._max_frequency = frequency
        count = len(queries)
        stats.query_count += count
        self._total_instances += 1
        self._total_queries += count
        # Inlined instance.user / record.user_key() — this loop runs once
        # per instance of the whole log.
        user = queries[0].record.user
        stats.users.add(user if user is not None else "<anonymous>")
        ips = stats.ips
        for query in queries:
            ip = query.record.ip
            if ip:
                ips.add(ip)
        return stats

    def add_run(self, run: PeriodicRun) -> PatternStats:
        """Count one periodic run — all ``run.repeats`` instances at once.

        Every cycle of a run shares the unit, the user and the run's
        query span, so the whole run aggregates in one dictionary probe:
        frequency grows by ``repeats``, coverage by the run length, and
        the ip union runs at C speed over the span.  ``from_runs`` over
        a mining result is therefore row-for-row identical to
        ``from_instances`` over its instances (E23 asserts the
        equivalence) at roughly a tenth of the dictionary traffic.
        """
        key: UnitKey = run.unit_ids or run.unit
        stats = self._stats.get(key)
        queries = run.queries
        if stats is None:
            unit = run.unit
            stats = PatternStats(
                unit=unit,
                skeletons=tuple(
                    query.template.skeleton_sql
                    for query in queries[: len(unit)]
                ),
                unit_ids=run.unit_ids,
            )
            self._stats[key] = stats
            self._by_unit[unit] = stats
        repeats = run.repeats
        frequency = stats.frequency + repeats
        stats.frequency = frequency
        if frequency > self._max_frequency:
            self._max_frequency = frequency
        count = len(queries)
        stats.query_count += count
        self._total_instances += repeats
        self._total_queries += count
        user = queries[0].record.user
        stats.users.add(user if user is not None else "<anonymous>")
        stats.ips.update(filter(None, map(_record_ip, queries)))
        return stats

    @classmethod
    def from_instances(
        cls, instances: Iterable[PatternInstance]
    ) -> "PatternRegistry":
        registry = cls()
        add_instance = registry.add_instance
        for instance in instances:
            add_instance(instance)
        return registry

    @classmethod
    def from_runs(cls, runs: Iterable[PeriodicRun]) -> "PatternRegistry":
        """Aggregate a mining run's periodic runs (see :meth:`add_run`)."""
        registry = cls()
        add_run = registry.add_run
        for run in runs:
            add_run(run)
        return registry

    def mark_antipattern(self, unit: UnitKey, label: str) -> None:
        """Attach an antipattern label to a pattern (detector callback).

        ``unit`` may be interned ids or fingerprint strings.  Unknown
        units are ignored: a detector may label a sub-sequence the miner
        did not materialise as its own pattern.
        """
        stats = self.get(unit)
        if stats is not None:
            stats.antipattern_types.add(label)

    # ------------------------------------------------------------------
    # Queries

    def ranked(self, *, antipatterns: Optional[bool] = None) -> List[PatternStats]:
        """Patterns sorted by descending frequency (rank 1 first).

        :param antipatterns: None = all patterns; True = antipatterns
            only; False = plain patterns only.
        """
        rows = [
            stats
            for stats in self._stats.values()
            if antipatterns is None or stats.is_antipattern == antipatterns
        ]
        rows.sort(key=lambda s: (-s.frequency, s.unit))
        return rows

    def top(self, count: int, **kwargs) -> List[PatternStats]:
        """The ``count`` most frequent patterns (see :meth:`ranked`)."""
        return self.ranked(**kwargs)[:count]

    def total_instances(self) -> int:
        return self._total_instances

    def total_queries(self) -> int:
        return self._total_queries

    def max_frequency(self) -> int:
        return self._max_frequency
