"""Data model of the mining stage: parsed queries, blocks, instances.

The pipeline's *Parsed Query Log* (Fig. 1 / Table 2) is a list of
:class:`ParsedQuery` — each log record joined with its syntax tree, its
query template and the precomputed clause features the antipattern
definitions quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..log.models import LogRecord
from ..skeleton import (
    ClauseTexts,
    QueryTemplate,
    build_clause_texts,
    build_template,
    template_fingerprint,
)
from ..skeleton.features import (
    Predicate,
    count_predicates,
    output_columns,
    single_equality_filter,
)
from ..sqlparser import ast_nodes as ast


@dataclass(frozen=True)
class ParsedQuery:
    """One successfully parsed SELECT statement of the log.

    :param record: the underlying log record.
    :param statement: full parsed statement (may be a Union).
    :param select: the leading SELECT of the statement — the clause-level
        definitions (Defs. 11–15) quantify over this.
    :param template: the query template (Definition 4).
    :param template_id: stable fingerprint of :attr:`template`.
    :param clauses: canonical SC/FC/WC texts, constants preserved.
    :param predicate_count: CP of Definition 11.
    :param equality_filter: the single ``column = constant`` predicate,
        when the WHERE clause consists of exactly that (else ``None``).
    :param outputs: lower-cased output column names (``'*'`` for stars).
    """

    record: LogRecord
    statement: ast.Statement
    select: ast.SelectStatement
    template: QueryTemplate
    template_id: str
    clauses: ClauseTexts
    predicate_count: int
    equality_filter: Optional[Predicate]
    outputs: frozenset

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    @property
    def user(self) -> str:
        return self.record.user_key()

    @classmethod
    def from_statement(
        cls,
        record: LogRecord,
        statement: ast.Statement,
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
    ) -> "ParsedQuery":
        """Build a :class:`ParsedQuery`, computing template and features."""
        select = statement
        while isinstance(select, ast.Union):
            select = select.left
        assert isinstance(select, ast.SelectStatement)
        template = build_template(
            statement,
            fold_variables=fold_variables,
            strict_triple=strict_triple,
        )
        return cls(
            record=record,
            statement=statement,
            select=select,
            template=template,
            template_id=template_fingerprint(template),
            clauses=build_clause_texts(statement),
            predicate_count=count_predicates(select),
            equality_filter=single_equality_filter(select),
            outputs=frozenset(output_columns(select)),
        )


@dataclass(frozen=True)
class Block:
    """A maximal same-user burst of queries.

    Definition 8's axioms — same user, time-ordered, no intervening query
    from that user — are satisfied by construction for any *consecutive*
    slice of a block.  The additional "short time between them" property
    (Section 4.1.1) is enforced by the miner's ``block_gap``: consecutive
    queries more than that many seconds apart start a new block.
    """

    user: str
    queries: Tuple[ParsedQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def template_ids(self) -> Tuple[str, ...]:
        return tuple(query.template_id for query in self.queries)

    def slice(self, start: int, stop: int) -> Tuple[ParsedQuery, ...]:
        return self.queries[start:stop]


@dataclass(frozen=True)
class PatternInstance:
    """One instance (Definition 8) of a pattern: one cycle of its unit.

    :param unit: the pattern identity — the sequence of template ids
        (SQ1, …, SQn) of Definition 7.
    :param queries: the instance's queries, one per unit position.
    """

    unit: Tuple[str, ...]
    queries: Tuple[ParsedQuery, ...]

    @property
    def user(self) -> str:
        return self.queries[0].user

    @property
    def start_time(self) -> float:
        return self.queries[0].timestamp


@dataclass(frozen=True)
class PeriodicRun:
    """A maximal periodic segment of a block: ``repeats`` back-to-back
    cycles of ``unit``.  Stifle instances are exactly such runs (with
    repeats ≥ 2 and the clause conditions of Defs. 12–14); the run object
    keeps the underlying queries together so a solver can rewrite the
    whole run into a single statement."""

    unit: Tuple[str, ...]
    queries: Tuple[ParsedQuery, ...]
    repeats: int

    @property
    def user(self) -> str:
        return self.queries[0].user

    def cycles(self) -> List[Tuple[ParsedQuery, ...]]:
        """The run's queries grouped per cycle."""
        period = len(self.unit)
        return [
            self.queries[i : i + period]
            for i in range(0, len(self.queries), period)
        ]
