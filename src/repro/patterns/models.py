"""Data model of the mining stage: parsed queries, blocks, instances.

The pipeline's *Parsed Query Log* (Fig. 1 / Table 2) is a list of
:class:`ParsedQuery` — each log record joined with its syntax tree, its
query template and the precomputed clause features the antipattern
definitions quantify over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import List, Optional, Tuple

from ..log.models import LogRecord
from ..skeleton import (
    ClauseTexts,
    QueryTemplate,
    TemplateInterner,
    build_clause_texts,
    build_template,
    template_fingerprint,
)
from ..skeleton.features import (
    Predicate,
    count_predicates,
    null_comparison_predicates,
    output_columns,
    single_equality_filter,
)
from ..sqlparser import ast_nodes as ast


@dataclass(frozen=True)
class ParsedQuery:
    """One successfully parsed SELECT statement of the log.

    :param record: the underlying log record.
    :param statement: full parsed statement (may be a Union).
    :param select: the leading SELECT of the statement — the clause-level
        definitions (Defs. 11–15) quantify over this.
    :param template: the query template (Definition 4).
    :param template_id: stable fingerprint of :attr:`template`.
    :param clauses: canonical SC/FC/WC texts, constants preserved.
    :param predicate_count: CP of Definition 11.
    :param equality_filter: the single ``column = constant`` predicate,
        when the WHERE clause consists of exactly that (else ``None``).
    :param outputs: lower-cased output column names (``'*'`` for stars).
    :param interned_id: run-scoped dense int for :attr:`template_id`,
        assigned by the executor's
        :class:`~repro.skeleton.interner.TemplateInterner` (``-1`` when
        the query was built outside a pipeline run).  Excluded from
        equality: it is per-run bookkeeping, not parse semantics.
    """

    record: LogRecord
    statement: ast.Statement
    select: ast.SelectStatement
    template: QueryTemplate
    template_id: str
    clauses: ClauseTexts
    predicate_count: int
    equality_filter: Optional[Predicate]
    outputs: frozenset
    interned_id: int = field(default=-1, compare=False)

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    @property
    def user(self) -> str:
        return self.record.user_key()

    def null_predicate_count(self) -> int:
        """Number of ``= NULL`` / ``<> NULL`` predicates (the SNC shape).

        Memoised into ``__dict__`` (like :class:`Block`'s id tuples) —
        the SNC detector asks for every query of every block.  The lazy
        subclass answers from its interned entry without building the
        AST; this eager default derives it from :attr:`select`.
        """
        count = self.__dict__.get("_null_predicates")
        if count is None:
            count = len(null_comparison_predicates(self.select))
            self.__dict__["_null_predicates"] = count
        return count

    @classmethod
    def from_statement(
        cls,
        record: LogRecord,
        statement: ast.Statement,
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
        interner: Optional[TemplateInterner] = None,
    ) -> "ParsedQuery":
        """Build a :class:`ParsedQuery`, computing template and features.

        With an ``interner`` the fingerprint is interned inline and the
        query carries its run-scoped :attr:`interned_id`.
        """
        select = statement
        while isinstance(select, ast.Union):
            select = select.left
        assert isinstance(select, ast.SelectStatement)
        template = build_template(
            statement,
            fold_variables=fold_variables,
            strict_triple=strict_triple,
        )
        template_id = template_fingerprint(template)
        return cls(
            record=record,
            statement=statement,
            select=select,
            template=template,
            template_id=template_id,
            clauses=build_clause_texts(statement),
            predicate_count=count_predicates(select),
            equality_filter=single_equality_filter(select),
            outputs=frozenset(output_columns(select)),
            interned_id=-1 if interner is None else interner.intern(template_id),
        )


@dataclass(frozen=True)
class Block:
    """A maximal same-user burst of queries.

    Definition 8's axioms — same user, time-ordered, no intervening query
    from that user — are satisfied by construction for any *consecutive*
    slice of a block.  The additional "short time between them" property
    (Section 4.1.1) is enforced by the miner's ``block_gap``: consecutive
    queries more than that many seconds apart start a new block.
    """

    user: str
    queries: Tuple[ParsedQuery, ...]

    def __len__(self) -> int:
        return len(self.queries)

    # The id tuples below are memoised straight into ``__dict__`` — the
    # one mutation a frozen dataclass allows — because the miner, the
    # detectors and clean_block's re-segmentation all ask for the same
    # block's ids.  ``__dict__`` entries pickle along with the block (the
    # parallel executor's requirement) and never enter the generated
    # ``__eq__``/``__repr__``, which only consult the declared fields.

    def template_ids(self) -> Tuple[str, ...]:
        """The queries' template fingerprints, in order (cached)."""
        ids = self.__dict__.get("_template_ids")
        if ids is None:
            # map(attrgetter) keeps the extraction loop in C; blocks
            # cover the whole log, so this runs once per parsed query.
            ids = tuple(map(_template_id_of, self.queries))
            self.__dict__["_template_ids"] = ids
        return ids

    def interned_ids(self) -> Optional[Tuple[int, ...]]:
        """The queries' run-scoped interned template ids (cached), or
        ``None`` when any query was built outside a pipeline run — such
        ids would not share one interner, so they cannot be trusted as
        global template identity (use :meth:`local_ids` then)."""
        cached = self.__dict__.get("_interned_ids", -1)
        if cached == -1:
            ids = tuple(map(_interned_id_of, self.queries))
            cached = ids if (not ids or min(ids) >= 0) else None
            self.__dict__["_interned_ids"] = cached
        return cached

    def local_ids(self) -> Tuple[int, ...]:
        """Block-local dense encoding of :meth:`template_ids` (cached).

        Equality within this block matches fingerprint equality exactly,
        so segmentation kernels can always run on ints; the ids carry no
        meaning outside the block.
        """
        ids = self.__dict__.get("_local_ids")
        if ids is None:
            local: dict = {}
            setdefault = local.setdefault
            ids = tuple(
                setdefault(template_id, len(local))
                for template_id in self.template_ids()
            )
            self.__dict__["_local_ids"] = ids
        return ids

    def slice(self, start: int, stop: int) -> Tuple[ParsedQuery, ...]:
        return self.queries[start:stop]


_template_id_of = attrgetter("template_id")
_interned_id_of = attrgetter("interned_id")


@dataclass(frozen=True)
class PatternInstance:
    """One instance (Definition 8) of a pattern: one cycle of its unit.

    :param unit: the pattern identity — the sequence of template ids
        (SQ1, …, SQn) of Definition 7.
    :param queries: the instance's queries, one per unit position.
    :param unit_ids: ``unit`` as run-scoped interned ints (``None`` when
        the queries were not interned).  Excluded from equality: ids are
        not comparable across runs.
    """

    unit: Tuple[str, ...]
    queries: Tuple[ParsedQuery, ...]
    unit_ids: Optional[Tuple[int, ...]] = field(default=None, compare=False)

    @property
    def user(self) -> str:
        return self.queries[0].user

    @property
    def start_time(self) -> float:
        return self.queries[0].timestamp


@dataclass(frozen=True)
class PeriodicRun:
    """A maximal periodic segment of a block: ``repeats`` back-to-back
    cycles of ``unit``.  Stifle instances are exactly such runs (with
    repeats ≥ 2 and the clause conditions of Defs. 12–14); the run object
    keeps the underlying queries together so a solver can rewrite the
    whole run into a single statement."""

    unit: Tuple[str, ...]
    queries: Tuple[ParsedQuery, ...]
    repeats: int
    #: ``unit`` as run-scoped interned ints (``None`` when the queries
    #: were not interned); excluded from equality like everywhere else.
    unit_ids: Optional[Tuple[int, ...]] = field(default=None, compare=False)

    @property
    def user(self) -> str:
        return self.queries[0].user

    def cycles(self) -> List[Tuple[ParsedQuery, ...]]:
        """The run's queries grouped per cycle."""
        period = len(self.unit)
        return [
            self.queries[i : i + period]
            for i in range(0, len(self.queries), period)
        ]
