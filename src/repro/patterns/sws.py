"""Sliding-window-search (SWS) pattern detection (Section 6.5).

SWS patterns are *frequent* patterns with *low user popularity* whose
instances walk disjoint filter windows across the data space — "machine
downloads" of a database that caps result sizes.  The paper does not class
them as antipatterns (no performance harm) but flags them because they
bias user-interest analyses and recommendation training sets.

Detection has two layers:

* the threshold classification of Table 8 — frequency ≥ ``min_frequency``
  (given as a share of the log) and userPopularity ≤ ``max_popularity``;
* an optional *shape check*: the instances' filter constants must be
  (mostly) non-repeating, the signature of a window sliding over the data
  rather than a user re-examining the same objects.  The check inspects
  the numeric constants of each instance's WHERE clauses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..sqlparser import ast_nodes as ast
from .models import ParsedQuery, PatternInstance
from .registry import PatternRegistry, PatternStats

SWS_LABEL = "SWS"


def _instance_constants(instance: PatternInstance) -> Tuple[str, ...]:
    """All literal constants of an instance's WHERE clauses, in order."""
    constants: List[str] = []
    for query in instance.queries:
        where = query.select.where
        if where is None:
            continue
        for node in where.walk():
            if isinstance(node, ast.Literal):
                constants.append(f"{node.kind}:{node.value}")
    return tuple(constants)


@dataclass(frozen=True)
class SwsConfig:
    """Thresholds of the SWS classification.

    :param min_frequency_share: minimal pattern frequency as a fraction of
        the total instance count (Table 8 uses 10 %, 1 %, 0.1 %, 0.01 %).
    :param max_popularity: maximal userPopularity (Table 8 uses 1–16).
    :param check_disjoint_windows: also require the sliding-window shape
        (mostly fresh constants across instances).
    :param min_fresh_share: fraction of instances that must carry a
        constant tuple not seen in earlier instances of the same pattern.
    :param skip_antipatterns: never classify a pattern already labelled an
        antipattern as SWS (the paper treats SWS and antipatterns as
        disjoint phenomena: SWS "does not have a negative performance
        effect", Section 6.5).
    """

    min_frequency_share: float = 0.001
    max_popularity: int = 2
    check_disjoint_windows: bool = True
    min_fresh_share: float = 0.8
    skip_antipatterns: bool = True


@dataclass
class SwsReport:
    """Result of one SWS scan."""

    patterns: List[PatternStats]
    covered_queries: int
    total_queries: int

    @property
    def coverage(self) -> float:
        """Share of the (parsed) log covered by SWS patterns — the cell
        value of Table 8."""
        return self.covered_queries / self.total_queries if self.total_queries else 0.0


def detect_sws(
    registry: PatternRegistry,
    instances: Iterable[PatternInstance],
    config: SwsConfig = SwsConfig(),
    *,
    mark: bool = True,
) -> SwsReport:
    """Classify SWS patterns and (optionally) label them in the registry.

    :param instances: the miner's instances — needed for the shape check;
        pass an empty iterable when ``check_disjoint_windows`` is False.
    """
    total_instances = registry.total_instances()
    total_queries = registry.total_queries()
    min_frequency = max(1.0, config.min_frequency_share * total_instances)

    # Candidates are keyed the way the registry keys its rows: interned
    # unit ids when the mining run interned its queries (int-tuple
    # hashing on the per-instance loop below), string units otherwise.
    candidates: Dict[Tuple, PatternStats] = {}
    for stats in registry:
        if config.skip_antipatterns and stats.is_antipattern:
            continue
        if stats.frequency >= min_frequency and (
            0 < stats.user_popularity <= config.max_popularity
        ):
            key = stats.unit_ids if stats.unit_ids is not None else stats.unit
            candidates[key] = stats

    if config.check_disjoint_windows and candidates:
        seen: Dict[Tuple, Set[Tuple[str, ...]]] = {}
        fresh: Dict[Tuple, int] = {}
        counted: Dict[Tuple, int] = {}
        for instance in instances:
            key = instance.unit_ids or instance.unit
            if key not in candidates:
                continue
            constants = _instance_constants(instance)
            counted[key] = counted.get(key, 0) + 1
            bucket = seen.setdefault(key, set())
            if constants not in bucket:
                fresh[key] = fresh.get(key, 0) + 1
                bucket.add(constants)
        for unit in list(candidates):
            total = counted.get(unit, 0)
            if total == 0:
                # No instance reached us (caller passed a subset); keep the
                # candidate on threshold evidence alone.
                continue
            fresh_share = fresh.get(unit, 0) / total
            if fresh_share < config.min_fresh_share:
                del candidates[unit]

    selected = sorted(candidates.values(), key=lambda s: -s.frequency)
    if mark:
        for stats in selected:
            stats.antipattern_types.add(SWS_LABEL)
    return SwsReport(
        patterns=selected,
        covered_queries=sum(stats.query_count for stats in selected),
        total_queries=total_queries,
    )


def coverage_grid(
    registry: PatternRegistry,
    instances: Sequence[PatternInstance],
    frequency_shares: Sequence[float] = (0.10, 0.01, 0.001, 0.0001),
    popularities: Sequence[int] = (1, 2, 4, 8, 16),
    *,
    check_disjoint_windows: bool = False,
) -> List[List[float]]:
    """Reproduce Table 8: SWS coverage for a grid of thresholds.

    Rows follow ``popularities``, columns follow ``frequency_shares``;
    cells are coverage fractions of the parsed log.  The shape check is
    off by default because Table 8 varies only the two thresholds.
    """
    grid: List[List[float]] = []
    for popularity in popularities:
        row: List[float] = []
        for share in frequency_shares:
            config = SwsConfig(
                min_frequency_share=share,
                max_popularity=popularity,
                check_disjoint_windows=check_disjoint_windows,
            )
            report = detect_sws(registry, instances, config, mark=False)
            row.append(report.coverage)
        grid.append(row)
    return grid
