"""Error policies and the quarantine channel — fault tolerance primitives.

A SkyServer-scale log is never clean: records carry NaN timestamps from
clock glitches, truncated or garbage SQL, and pathological statements
that exhaust the parser.  Every execution path of the pipeline degrades
according to one :data:`ERROR_POLICIES` value carried on
``PipelineConfig.error_policy``:

* ``"strict"`` — the historical all-or-nothing behaviour.  Structurally
  invalid records (non-finite timestamps, non-string statements) raise
  :class:`RecordFailure` on first contact; parse failures keep their
  classic counted-and-excluded treatment (Section 5.3).
* ``"lenient"`` — invalid records are dropped and counted; nothing is
  retained about them beyond the ledger counters.
* ``"quarantine"`` — invalid records and failed parses are routed into
  a :class:`QuarantineChannel` exposed on every ``PipelineResult`` and
  serialised by ``export_report``, so a degraded run stays auditable:
  clean output + an exact, reasoned list of what was set aside.

The module is standalone (imports nothing from :mod:`repro.pipeline` or
:mod:`repro.obs`) so that IO, executors and the CLI can all share it.
"""

from __future__ import annotations

import base64
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .log.models import LogRecord

#: Error policies understood by the pipeline, in increasing tolerance.
ERROR_POLICIES = ("strict", "lenient", "quarantine")

# ----------------------------------------------------------------------
# Failure reasons (the quarantine taxonomy)

#: timestamp is NaN / infinite / not a number — unusable for ordering.
INVALID_TIMESTAMP = "invalid_timestamp"
#: statement is not a string (truncated or corrupted log line).
INVALID_STATEMENT = "invalid_statement"
#: the SQL front end rejected the statement (Section 5.3's misparses).
PARSE_ERROR = "parse_error"
#: statement exceeds the tree-walkers' supported nesting depth
#: (``RecursionError`` while parsing / extracting features).
NESTING_DEPTH = "nesting_depth"
#: raw input line could not even be turned into a ``LogRecord``.
UNREADABLE_RECORD = "unreadable_record"
#: a parallel shard failed terminally; its records were set aside whole.
SHARD_FAILURE = "shard_failure"


def validate_error_policy(policy: str) -> str:
    """Validate and return ``policy``; raise ``ValueError`` otherwise."""
    if policy not in ERROR_POLICIES:
        raise ValueError(
            f"error_policy must be one of {ERROR_POLICIES}, got {policy!r}"
        )
    return policy


def record_fault(record: "LogRecord") -> Optional[str]:
    """Structural fault class of ``record``, or ``None`` when sound.

    This is the validate stage's rule, shared by every executor so the
    per-record verdict — and therefore every ledger counter derived from
    it — is identical across batch / streaming / parallel.
    """
    timestamp = record.timestamp
    if not isinstance(timestamp, (int, float)) or not math.isfinite(timestamp):
        return INVALID_TIMESTAMP
    if not isinstance(record.sql, str):
        return INVALID_STATEMENT
    return None


class RecordFailure(Exception):
    """A record failed under the ``strict`` policy.

    Carries the offending record so callers can report *which* input
    broke the run, not just that something did.
    """

    def __init__(
        self,
        record: Optional["LogRecord"],
        reason: str,
        stage: str,
        detail: str = "",
    ) -> None:
        super().__init__(record, reason, stage, detail)
        self.record = record
        self.reason = reason
        self.stage = stage
        self.detail = detail

    def __str__(self) -> str:
        where = f"{self.stage} stage" if self.stage else "pipeline"
        text = f"{self.reason} in {where}"
        if self.record is not None:
            text += f" (record seq={self.record.seq})"
        if self.detail:
            text += f": {self.detail}"
        return text


class ShardFailure(Exception):
    """A parallel shard failed terminally under the ``strict`` policy
    (worker crash, timeout or stage exception, after all retries)."""

    def __init__(self, shard: int, attempts: int, detail: str) -> None:
        super().__init__(shard, attempts, detail)
        self.shard = shard
        self.attempts = attempts
        self.detail = detail

    def __str__(self) -> str:
        return (
            f"shard {self.shard} failed after {self.attempts} attempt(s): "
            f"{self.detail}"
        )


@dataclass(frozen=True)
class QuarantinedRecord:
    """One record (or raw input line) set aside by the quarantine policy.

    :param record: the offending :class:`~repro.log.models.LogRecord`,
        when one could be constructed; ``None`` for raw IO rejects.
    :param reason: one of the module's reason constants.
    :param stage: pipeline stage that rejected it (``io`` / ``validate``
        / ``parse`` / ``shard``).
    :param detail: human-readable specifics (parser message, traceback
        summary, raw line excerpt).
    """

    record: Optional["LogRecord"]
    reason: str
    stage: str
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict rendering for JSON serialisation."""
        data: Dict[str, object] = {
            "reason": self.reason,
            "stage": self.stage,
        }
        if self.detail:
            data["detail"] = self.detail
        if self.record is not None:
            data["record"] = {
                "seq": self.record.seq,
                "timestamp": repr(self.record.timestamp),
                "user": self.record.user,
                "sql": self.record.sql
                if isinstance(self.record.sql, str)
                else repr(self.record.sql),
            }
        return data

    # ------------------------------------------------------------------
    # Lossless round-trip (checkpoints)
    #
    # ``as_dict`` is the human-facing report shape and intentionally
    # lossy (repr'd timestamps, dropped ip/session/rows).  Checkpoints
    # need the *exact* entry back, including records whose whole problem
    # is a non-JSON value: a NaN timestamp survives via ``allow_nan``
    # (we control both ends of the serialisation), a bytes statement is
    # tagged and base64-encoded, anything else unrepresentable falls
    # back to its repr — at which point the entry is no longer exact,
    # which :meth:`from_state` cannot detect; such values do not occur
    # in practice (log IO only produces str/bytes/number fields).

    def to_state(self) -> Dict[str, object]:
        """JSON-ready rendering that :meth:`from_state` inverts."""
        record_state = None
        if self.record is not None:
            record = self.record
            record_state = {
                "seq": _encode_value(record.seq),
                "sql": _encode_value(record.sql),
                "timestamp": _encode_value(record.timestamp),
                "user": _encode_value(record.user),
                "ip": _encode_value(record.ip),
                "session": _encode_value(record.session),
                "rows": _encode_value(record.rows),
            }
        return {
            "record": record_state,
            "reason": self.reason,
            "stage": self.stage,
            "detail": self.detail,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuarantinedRecord":
        """Inverse of :meth:`to_state`."""
        from .log.models import LogRecord

        record = None
        record_state = state["record"]
        if record_state is not None:
            record = LogRecord(
                **{
                    name: _decode_value(value)
                    for name, value in record_state.items()  # type: ignore[union-attr]
                }
            )
        return cls(
            record=record,
            reason=state["reason"],  # type: ignore[arg-type]
            stage=state["stage"],  # type: ignore[arg-type]
            detail=state["detail"],  # type: ignore[arg-type]
        )


def _encode_value(value: object) -> object:
    """JSON-encode one record field, tagging the non-JSON types."""
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return {"__repr__": repr(value)}


def _decode_value(value: object) -> object:
    if isinstance(value, dict):
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__repr__" in value:
            return value["__repr__"]
    return value


@dataclass
class QuarantineChannel:
    """Ordered collection of everything a run set aside.

    Plain data throughout, so a channel pickles across multiprocessing
    workers (each worker fills its own; the parent folds them with
    :meth:`merge`) and serialises to JSON via :meth:`as_dict`.
    """

    entries: List[QuarantinedRecord] = field(default_factory=list)

    def add(
        self,
        record: Optional["LogRecord"],
        reason: str,
        stage: str,
        detail: str = "",
    ) -> None:
        """Quarantine one record."""
        self.entries.append(QuarantinedRecord(record, reason, stage, detail))

    def add_raw(self, raw: str, reason: str, stage: str, detail: str = "") -> None:
        """Quarantine an input line that never became a record."""
        excerpt = raw if len(raw) <= 200 else raw[:200] + "…"
        self.entries.append(
            QuarantinedRecord(None, reason, stage, detail or excerpt)
        )

    def merge(self, other: "QuarantineChannel") -> None:
        """Fold another channel's entries into this one (sharded runs)."""
        self.entries.extend(other.entries)

    # ------------------------------------------------------------------
    # Views

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[QuarantinedRecord]:
        return iter(self.entries)

    def records(self) -> List["LogRecord"]:
        """The quarantined records (raw IO rejects excluded)."""
        return [e.record for e in self.entries if e.record is not None]

    def seqs(self) -> List[int]:
        """Sorted seq numbers of the quarantined records."""
        return sorted(e.record.seq for e in self.entries if e.record is not None)

    def by_reason(self) -> Dict[str, int]:
        """Entry counts per failure reason."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        """Deterministic plain-dict rendering (``quarantine.json``)."""
        return {
            "count": len(self.entries),
            "by_reason": dict(sorted(self.by_reason().items())),
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def to_state(self) -> List[Dict[str, object]]:
        """Lossless JSON-ready rendering (checkpoints); see
        :meth:`QuarantinedRecord.to_state`."""
        return [entry.to_state() for entry in self.entries]

    @classmethod
    def from_state(cls, state: List[Dict[str, object]]) -> "QuarantineChannel":
        """Inverse of :meth:`to_state`."""
        return cls(
            entries=[QuarantinedRecord.from_state(entry) for entry in state]
        )
