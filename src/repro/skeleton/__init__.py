"""Skeletonization and query-template extraction (paper Section 4.1.2)."""

from .normalizer import skeletonize, skeletonize_statement
from .template import (
    ClauseTexts,
    QueryTemplate,
    build_clause_texts,
    build_template,
    normalize_case,
)
from .fingerprint import pattern_fingerprint, template_fingerprint
from .interner import TemplateInterner
from . import features

__all__ = [
    "skeletonize",
    "skeletonize_statement",
    "ClauseTexts",
    "QueryTemplate",
    "build_clause_texts",
    "build_template",
    "normalize_case",
    "pattern_fingerprint",
    "template_fingerprint",
    "TemplateInterner",
    "features",
]
