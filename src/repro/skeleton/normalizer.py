"""Skeletonization: replace constants with typed placeholders.

Section 4.1.2 of the paper: the *skeleton query* (SQ) is obtained from a
syntax tree by replacing all parameters in the leaf nodes with placeholders.
Two queries are similar iff their skeletons are equal (Definition 6).

We replace

* numeric literals with ``<num>``,
* string literals with ``<str>``,
* ``NULL`` literals with ``<null>`` (so the SNC antipattern's defining
  ``= NULL`` shape survives skeletonization and stays detectable),
* optionally T-SQL ``@variables`` with ``<var>`` — SkyServer's own web
  templates parametrise with variables, and whether two template
  instantiations that differ only in variable *names* are "the same
  skeleton" is a dial (default: variables are kept verbatim, matching the
  paper's Table 7 which shows ``@ra``/``@dec`` in the skeletons).
"""

from __future__ import annotations

from ..sqlparser import ast_nodes as ast
from ..sqlparser.visitor import transform


def skeletonize(
    node: ast.Node, *, fold_variables: bool = False
) -> ast.Node:
    """Return the skeleton tree of ``node`` (constants → placeholders)."""

    def rewrite(current: ast.Node):
        if isinstance(current, ast.Literal):
            return ast.Placeholder(kind=current.kind)
        if fold_variables and isinstance(current, ast.Variable):
            return ast.Placeholder(kind="var")
        return None

    return transform(node, rewrite)


def skeletonize_statement(
    statement: ast.Statement, *, fold_variables: bool = False
) -> ast.Statement:
    """Typed convenience wrapper for whole statements."""
    result = skeletonize(statement, fold_variables=fold_variables)
    assert isinstance(result, ast.Statement)
    return result
