"""The parse fast path's template cache.

SkyServer-style logs are dominated by machine-generated statements that
repeat a small set of templates with different constants (the premise of
the paper's Section 3).  The full parse path re-derives the same
skeleton, template and clause features thousands of times; this module
short-circuits that with a two-level bounded LRU keyed by the lexer's
:func:`~repro.sqlparser.lexer.fingerprint_statement`:

* **L1 (exact text)** — statement text → prototype
  :class:`~repro.patterns.models.ParsedQuery` *or* a cached parse
  failure.  A hit costs one dict probe plus a ``dataclasses.replace`` to
  swap in the new log record.  Failures live only here: parser error
  messages carry line/column positions that depend on the exact
  whitespace, so they are never shared across texts.
* **L2 (fingerprint key)** — canonical-token-stream key → an interned
  :class:`_Entry` holding the prototype and precomputed *splice
  templates* of its clause texts.  A hit costs one scanner pass plus a
  literal-substitution rebuild of the AST; the template, template id,
  predicate count and output set are shared (interned) from the
  prototype, because they are functions of the token structure alone.

Correctness rests on one invariant and one escape hatch:

* Two statements with the same fingerprint key tokenize identically up
  to number/string literal *values*, and the recursive-descent parser's
  decisions never look at literal values — so their parses are
  isomorphic, differing only in :class:`~repro.sqlparser.ast_nodes.Literal`
  values at corresponding positions.
* The parser is not a pure token-stream echo: it folds unary minus into
  number literals, consumes ``CAST`` type sizes into the type name, and
  accepts string-literal aliases.  Instead of enumerating those cases,
  :func:`_build_entry` *verifies* at entry-build time that the
  prototype's source-order literal vector equals the scanner's constant
  vector and that the splice templates reproduce the prototype's clause
  texts exactly.  Any mismatch marks the key **unsafe**: every statement
  with that key permanently takes the full parse path.  Ambiguity can
  therefore only ever cost speed, never correctness.
"""

from __future__ import annotations

import dataclasses
import pickle
import re
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

from ..patterns.models import ParsedQuery
from ..sqlparser import ast_nodes as ast
from ..sqlparser.lexer import StatementFingerprint, fingerprint_statement
from .features import single_equality_filter
from .template import ClauseTexts, _clause_strings, _leading_select, normalize_case

#: Default bound of each cache level (distinct texts / distinct keys).
DEFAULT_PARSE_CACHE_SIZE = 4096

# ----------------------------------------------------------------------
# Source-order literal traversal
#
# The scanner's constant vector is in *token* order.  For almost every
# node class, dataclass field order equals source order; the two
# exceptions are overridden here (TOP precedes the select list, a simple
# CASE operand precedes its WHEN arms).  Non-node fields are harmless to
# visit, so overrides only need the fields that can contain nodes.

_SOURCE_ORDER_OVERRIDES = {
    ast.SelectStatement: (
        "top",
        "items",
        "from_sources",
        "where",
        "group_by",
        "having",
        "order_by",
    ),
    ast.CaseExpression: ("operand", "whens", "else_result"),
}

_FIELD_ORDER_CACHE: Dict[type, Tuple[str, ...]] = {}


def _source_fields(cls: type) -> Tuple[str, ...]:
    order = _FIELD_ORDER_CACHE.get(cls)
    if order is None:
        order = _SOURCE_ORDER_OVERRIDES.get(cls)
        if order is None:
            order = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_ORDER_CACHE[cls] = order
    return order


def _collect_value(value: object, out: List[Tuple[str, str]]) -> None:
    """Append the subtree's number/string literals in source order."""
    if isinstance(value, ast.Literal):
        if value.kind == "number" or value.kind == "string":
            out.append((value.kind, value.value))
    elif isinstance(value, ast.Node):
        for name in _source_fields(type(value)):
            _collect_value(getattr(value, name), out)
    elif type(value) is tuple:
        for item in value:
            if isinstance(item, ast.Node):
                _collect_value(item, out)


def _substitute_value(
    value: object, values: Tuple[Tuple[str, str], ...], state: List[int]
) -> object:
    """Rebuild ``value`` with the i-th literal replaced by ``values[i]``.

    Subtrees without substituted literals are returned unchanged, so the
    rebuilt statement structurally shares every literal-free branch with
    the prototype.
    """
    if isinstance(value, ast.Literal):
        kind = value.kind
        if kind == "number" or kind == "string":
            index = state[0]
            state[0] = index + 1
            new_kind, new_text = values[index]
            if new_text != value.value or new_kind != kind:
                return ast.Literal(new_text, new_kind)
        return value
    if isinstance(value, ast.Node):
        changes = None
        for name in _source_fields(type(value)):
            old = getattr(value, name)
            new = _substitute_value(old, values, state)
            if new is not old:
                if changes is None:
                    changes = {}
                changes[name] = new
        if changes is None:
            return value
        return dataclasses.replace(value, **changes)
    if type(value) is tuple and value:
        items = [_substitute_value(item, values, state) for item in value]
        for new, old in zip(items, value):
            if new is not old:
                return tuple(items)
        return value
    return value


# ----------------------------------------------------------------------
# Clause-text splice templates
#
# Clause texts (SC/FC/WC with constants preserved) are reproduced on a
# hit without any formatting pass: at entry-build time the prototype is
# re-rendered once with marker literals, the rendered strings are split
# on the markers, and a hit just interleaves the statics with the
# member's rendered constants.

_MARKER = re.compile("\x00(\\d+)\x01")

#: (static text parts, constant indices between them)
_Splice = Tuple[Tuple[str, ...], Tuple[int, ...]]


def _make_splice(text: str) -> _Splice:
    parts = _MARKER.split(text)
    return tuple(parts[0::2]), tuple(int(slot) for slot in parts[1::2])


def _render_splice(splice: _Splice, rendered: List[str]) -> str:
    statics, slots = splice
    if not slots:
        return statics[0]
    pieces = [statics[0]]
    for position, slot in enumerate(slots):
        pieces.append(rendered[slot])
        pieces.append(statics[position + 1])
    return "".join(pieces)


def _render_constant(kind: str, value: str) -> str:
    """Render a constant exactly as the SQL formatter would."""
    if kind == "number":
        return value
    return "'" + value.replace("'", "''") + "'"


class _Entry:
    """One interned fingerprint-key class: prototype + splice templates."""

    __slots__ = ("proto", "constants", "splices")

    def __init__(
        self,
        proto: ParsedQuery,
        constants: Tuple[Tuple[str, str], ...],
        splices: Tuple[_Splice, _Splice, _Splice],
    ) -> None:
        self.proto = proto
        self.constants = constants
        self.splices = splices

    def __getstate__(self):
        return (self.proto, self.constants, self.splices)

    def __setstate__(self, state):
        self.proto, self.constants, self.splices = state


class _UnsafeMarker:
    """Permanent full-parse marker for an ambiguous fingerprint key."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unsafe fingerprint key>"

    def __reduce__(self):
        return (_unsafe_marker, ())


def _unsafe_marker() -> "_UnsafeMarker":
    return _UNSAFE


_UNSAFE = _UnsafeMarker()


def _build_entry(
    proto: ParsedQuery, fingerprint: StatementFingerprint
) -> Optional[_Entry]:
    """Intern ``proto`` for its fingerprint key, or ``None`` if unsafe.

    The safety checks compare what the scanner *predicted* against what
    the parser actually *built*; any divergence (unary-minus edge cases,
    CAST type sizes, string aliases, formatter surprises) disqualifies
    the whole key class rather than risking a wrong instantiation.
    """
    statement = proto.statement
    literals: List[Tuple[str, str]] = []
    _collect_value(statement, literals)
    if tuple(literals) != fingerprint.constants:
        return None
    markers = tuple(
        ("number", "\x00%d\x01" % index) for index in range(len(literals))
    )
    state = [0]
    sentinel_statement = _substitute_value(statement, markers, state)
    if state[0] != len(literals):
        return None
    canonical = normalize_case(sentinel_statement)  # type: ignore[arg-type]
    select = _leading_select(canonical)  # type: ignore[arg-type]
    sc, fc, wc, _, _ = _clause_strings(select)
    splices = (_make_splice(sc), _make_splice(fc), _make_splice(wc))
    # End-to-end self-check: splicing the prototype's own constants must
    # reproduce its true clause texts byte for byte.
    rendered = [_render_constant(kind, value) for kind, value in literals]
    clauses = proto.clauses
    if (
        _render_splice(splices[0], rendered) != clauses.sc
        or _render_splice(splices[1], rendered) != clauses.fc
        or _render_splice(splices[2], rendered) != clauses.wc
    ):
        return None
    return _Entry(proto, fingerprint.constants, splices)


def _instantiate(
    entry: _Entry, fingerprint: StatementFingerprint, record
) -> ParsedQuery:
    """Materialise the key class's parse for ``record``'s constants."""
    proto = entry.proto
    constants = fingerprint.constants
    if constants == entry.constants:
        return dataclasses.replace(proto, record=record)
    state = [0]
    statement = _substitute_value(proto.statement, constants, state)
    select = statement
    while isinstance(select, ast.Union):
        select = select.left
    rendered = [_render_constant(kind, value) for kind, value in constants]
    clauses = ClauseTexts(
        sc=_render_splice(entry.splices[0], rendered),
        fc=_render_splice(entry.splices[1], rendered),
        wc=_render_splice(entry.splices[2], rendered),
    )
    equality = (
        single_equality_filter(select)
        if proto.equality_filter is not None
        else None
    )
    return ParsedQuery(
        record=record,
        statement=statement,  # type: ignore[arg-type]
        select=select,  # type: ignore[arg-type]
        template=proto.template,
        template_id=proto.template_id,
        clauses=clauses,
        predicate_count=proto.predicate_count,
        equality_filter=equality,
        outputs=proto.outputs,
        interned_id=proto.interned_id,
    )


#: What the parse loop caches for one statement text: a prototype
#: ParsedQuery on success, or the (error, reason) pair of a failure.
CacheResult = Union[ParsedQuery, Tuple[BaseException, str]]


class TemplateCache:
    """Bounded two-level LRU for the parse fast path.

    One instance serves one executor run (batch), one cleaner instance
    (streaming) or one worker shard (parallel) — instances are picklable
    so prewarmed caches can cross process boundaries, but they are never
    shared concurrently.

    :param max_entries: LRU bound applied to each level independently.
    """

    def __init__(self, max_entries: int = DEFAULT_PARSE_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._exact: "OrderedDict[str, CacheResult]" = OrderedDict()
        self._by_key: "OrderedDict[str, object]" = OrderedDict()
        #: (sql, fingerprint) remembered from the last miss so that the
        #: store() that follows does not rescan the text.
        self._pending: Optional[Tuple[str, Optional[StatementFingerprint]]] = None

    def __len__(self) -> int:
        return len(self._exact)

    @property
    def key_entries(self) -> int:
        """Number of interned fingerprint-key entries (L2)."""
        return len(self._by_key)

    def fetch(self, record) -> Optional[CacheResult]:
        """Return the cached parse outcome for ``record``, or ``None``.

        A returned :class:`~repro.patterns.models.ParsedQuery` is already
        bound to ``record``; a returned tuple is the shared parse
        failure of this exact statement text.  ``None`` means miss — the
        caller must full-parse and :meth:`store` the outcome.
        """
        sql = record.sql
        exact = self._exact
        cached = exact.get(sql)
        if cached is not None:
            exact.move_to_end(sql)
            self.hits += 1
            if type(cached) is tuple:
                return cached
            if cached.record is record:
                return cached
            return dataclasses.replace(cached, record=record)
        fingerprint = fingerprint_statement(sql)
        if fingerprint is not None:
            entry = self._by_key.get(fingerprint.key)
            if type(entry) is _Entry:
                self._by_key.move_to_end(fingerprint.key)
                result = _instantiate(entry, fingerprint, record)
                self.hits += 1
                # Promote into L1 so an exact repeat skips the scanner.
                self._remember_exact(sql, result)
                return result
        self.misses += 1
        self._pending = (sql, fingerprint)
        return None

    def store(self, sql: str, result: CacheResult) -> None:
        """Admit a full-parse outcome produced after a :meth:`fetch` miss."""
        pending = self._pending
        self._pending = None
        if pending is not None and pending[0] == sql:
            fingerprint = pending[1]
        else:
            fingerprint = fingerprint_statement(sql)
        self._remember_exact(sql, result)
        if fingerprint is None or type(result) is tuple:
            # No usable key, or a failure: failures stay L1-only because
            # their messages carry text-specific line/column positions.
            return
        by_key = self._by_key
        if fingerprint.key in by_key:
            return
        entry = _build_entry(result, fingerprint)
        by_key[fingerprint.key] = _UNSAFE if entry is None else entry
        if len(by_key) > self.max_entries:
            by_key.popitem(last=False)
            self.evictions += 1

    def _remember_exact(self, sql: str, result: CacheResult) -> None:
        exact = self._exact
        exact[sql] = result
        exact.move_to_end(sql)
        if len(exact) > self.max_entries:
            exact.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Pre-seeding (warm worker pools)

    def export_seed(self) -> bytes:
        """Snapshot the cache's interned entries as a portable seed.

        The seed is a pickled copy of this cache with its counters
        zeroed and its pending-miss state cleared — ship it to worker
        processes (:func:`repro.pipeline.parallel.set_worker_seed`) so
        their first shard already hits on every template this cache has
        interned.  The caller owns the correctness contract documented
        on :func:`~repro.pipeline.framework.parse_log`: a seed must only
        ever warm caches serving the same ``(fold_variables,
        strict_triple)`` parse knobs it was built under.
        """
        clone = TemplateCache(self.max_entries)
        clone._exact = OrderedDict(self._exact)
        clone._by_key = OrderedDict(self._by_key)
        return pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_seed(
        cls, seed: bytes, max_entries: Optional[int] = None
    ) -> "TemplateCache":
        """Rebuild a cache from an :meth:`export_seed` blob.

        ``max_entries`` overrides the seed's bound; a smaller bound
        evicts the seed's least-recently-admitted entries immediately
        (without charging the eviction counters — the new cache starts
        with all counters at zero).
        """
        cache = pickle.loads(seed)
        if not isinstance(cache, cls):
            raise TypeError(
                f"seed does not contain a {cls.__name__} "
                f"(got {type(cache).__name__})"
            )
        cache.hits = 0
        cache.misses = 0
        cache.evictions = 0
        cache._pending = None
        if max_entries is not None and max_entries >= 1:
            cache.max_entries = max_entries
            while len(cache._exact) > max_entries:
                cache._exact.popitem(last=False)
            while len(cache._by_key) > max_entries:
                cache._by_key.popitem(last=False)
        return cache
