"""The parse fast path's template cache.

SkyServer-style logs are dominated by machine-generated statements that
repeat a small set of templates with different constants (the premise of
the paper's Section 3).  The full parse path re-derives the same
skeleton, template and clause features thousands of times; this module
short-circuits that with a two-level bounded LRU keyed by the lexer's
:func:`~repro.sqlparser.lexer.fingerprint_statement`:

* **L1 (exact text)** — statement text → prototype
  :class:`~repro.patterns.models.ParsedQuery` *or* a cached parse
  failure.  A hit costs one dict probe plus a ``dataclasses.replace`` to
  swap in the new log record.  Failures live only here: parser error
  messages carry line/column positions that depend on the exact
  whitespace, so they are never shared across texts.
* **L2 (fingerprint key)** — canonical-token-stream key → an interned
  :class:`_Entry` holding the prototype and precomputed *splice
  templates* of its clause texts.  A hit costs one scanner pass plus a
  literal-substitution rebuild of the AST; the template, template id,
  predicate count and output set are shared (interned) from the
  prototype, because they are functions of the token structure alone.
* **Raw-template memo (L1.5)** — constant-stripped raw text → a
  *witness-verified* L2 entry.  Workloads like SkyServer's collapse to
  a few dozen raw templates, so once a template's first member has paid
  for a full fingerprint scan, later members skip the scanner entirely:
  a single cheap regex pass strips the literals and one dict probe
  binds them to the interned entry.  Admission is per raw key and only
  happens when the regex strip provably reproduced the scanner — the
  witness's literal spans must equal the scanner's token spans
  position for position (see :func:`_raw_scan`); anything else marks
  the raw key unsafe and members keep taking the scanner path.

In **lazy mode** (``TemplateCache(lazy=True)`` — parse engine v2) an L2
hit skips even the AST rebuild: it emits a :class:`LazyParsedQuery`
carrying only the interned skeleton and the member's constant vector,
and the AST / clause texts / equality filter materialise on first
access.  Mining, registry and detection run on the shared skeleton
fields, so a typical run never builds most members' ASTs at all.

Correctness rests on one invariant and one escape hatch:

* Two statements with the same fingerprint key tokenize identically up
  to number/string literal *values*, and the recursive-descent parser's
  decisions never look at literal values — so their parses are
  isomorphic, differing only in :class:`~repro.sqlparser.ast_nodes.Literal`
  values at corresponding positions.
* The parser is not a pure token-stream echo: it folds unary minus into
  number literals, consumes ``CAST`` type sizes into the type name, and
  accepts string-literal aliases.  Instead of enumerating those cases,
  :func:`_build_entry` *verifies* at entry-build time that the
  prototype's source-order literal vector equals the scanner's constant
  vector and that the splice templates reproduce the prototype's clause
  texts exactly.  Any mismatch marks the key **unsafe**: every statement
  with that key permanently takes the full parse path.  Ambiguity can
  therefore only ever cost speed, never correctness.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import pickle
import re
import struct
import warnings
import zlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..log.models import LogRecord
from ..patterns.models import ParsedQuery
from ..sqlparser import ast_nodes as ast
from ..sqlparser.errors import SqlError
from ..sqlparser.formatter import _Formatter, _quote_identifier
from ..sqlparser.parser import Parser
from ..sqlparser.scanner import (
    _FP_NUMBER,
    _FP_STRING,
    _FP_UNSAFE,
    Scan,
    StatementFingerprint,
    scan,
)
from .features import (
    Predicate,
    count_predicates,
    null_comparison_predicates,
    output_columns,
    single_equality_filter,
)
from .fingerprint import template_fingerprint
from .template import (
    ClauseTexts,
    QueryTemplate,
    _clause_strings,
    _leading_select,
    build_template_canonical,
    normalize_case,
)

#: Default bound of each cache level (distinct texts / distinct keys).
DEFAULT_PARSE_CACHE_SIZE = 4096

#: Magic prefix + format version of the persistent template-dictionary
#: sidecar (:meth:`TemplateCache.save_dict`).  Bump the version on any
#: payload change: :meth:`TemplateCache.load_dict` rejects mismatches.
_DICT_MAGIC = b"RTD1"
TEMPLATE_DICT_VERSION = 1

# ----------------------------------------------------------------------
# Source-order literal traversal
#
# The scanner's constant vector is in *token* order.  For almost every
# node class, dataclass field order equals source order; the two
# exceptions are overridden here (TOP precedes the select list, a simple
# CASE operand precedes its WHEN arms).  Non-node fields are harmless to
# visit, so overrides only need the fields that can contain nodes.

_SOURCE_ORDER_OVERRIDES = {
    ast.SelectStatement: (
        "top",
        "items",
        "from_sources",
        "where",
        "group_by",
        "having",
        "order_by",
    ),
    ast.CaseExpression: ("operand", "whens", "else_result"),
}

_FIELD_ORDER_CACHE: Dict[type, Tuple[str, ...]] = {}


def _source_fields(cls: type) -> Tuple[str, ...]:
    order = _FIELD_ORDER_CACHE.get(cls)
    if order is None:
        order = _SOURCE_ORDER_OVERRIDES.get(cls)
        if order is None:
            order = tuple(f.name for f in dataclasses.fields(cls))
        _FIELD_ORDER_CACHE[cls] = order
    return order


def _collect_value(value: object, out: List[Tuple[str, str]]) -> None:
    """Append the subtree's number/string literals in source order."""
    if isinstance(value, ast.Literal):
        if value.kind == "number" or value.kind == "string":
            out.append((value.kind, value.value))
    elif isinstance(value, ast.Node):
        for name in _source_fields(type(value)):
            _collect_value(getattr(value, name), out)
    elif type(value) is tuple:
        for item in value:
            if isinstance(item, ast.Node):
                _collect_value(item, out)


def _substitute_value(
    value: object, values: Tuple[Tuple[str, str], ...], state: List[int]
) -> object:
    """Rebuild ``value`` with the i-th literal replaced by ``values[i]``.

    Subtrees without substituted literals are returned unchanged, so the
    rebuilt statement structurally shares every literal-free branch with
    the prototype.
    """
    if isinstance(value, ast.Literal):
        kind = value.kind
        if kind == "number" or kind == "string":
            index = state[0]
            state[0] = index + 1
            new_kind, new_text = values[index]
            if new_text != value.value or new_kind != kind:
                return ast.Literal(new_text, new_kind)
        return value
    if isinstance(value, ast.Node):
        changes = None
        for name in _source_fields(type(value)):
            old = getattr(value, name)
            new = _substitute_value(old, values, state)
            if new is not old:
                if changes is None:
                    changes = {}
                changes[name] = new
        if changes is None:
            return value
        return dataclasses.replace(value, **changes)
    if type(value) is tuple and value:
        items = [_substitute_value(item, values, state) for item in value]
        for new, old in zip(items, value):
            if new is not old:
                return tuple(items)
        return value
    return value


# ----------------------------------------------------------------------
# Clause-text splice templates
#
# Clause texts (SC/FC/WC with constants preserved) are reproduced on a
# hit without any formatting pass: at entry-build time the prototype is
# re-rendered once with marker literals, the rendered strings are split
# on the markers, and a hit just interleaves the statics with the
# member's rendered constants.

_MARKER = re.compile("\x00(\\d+)\x01")

#: (static text parts, constant indices between them)
_Splice = Tuple[Tuple[str, ...], Tuple[int, ...]]


def _make_splice(text: str) -> _Splice:
    parts = _MARKER.split(text)
    return tuple(parts[0::2]), tuple(int(slot) for slot in parts[1::2])


def _render_splice(splice: _Splice, rendered: List[str]) -> str:
    statics, slots = splice
    if not slots:
        return statics[0]
    pieces = [statics[0]]
    for position, slot in enumerate(slots):
        pieces.append(rendered[slot])
        pieces.append(statics[position + 1])
    return "".join(pieces)


def _render_constant(kind: str, value: str) -> str:
    """Render a constant exactly as the SQL formatter would."""
    if kind == "number":
        return value
    return "'" + value.replace("'", "''") + "'"


# ----------------------------------------------------------------------
# Marker-formatter fusion (parse engine v3 cold path)
#
# The cold path needs three renderings of the same statement: the clause
# texts (constants preserved), the template (constants replaced by typed
# placeholders) and the splice sentinel (constants replaced by indexed
# markers).  All three differ only at constant leaves, and the
# formatter's parenthesisation is purely type-driven — Literal,
# Placeholder and Variable all render as primaries (precedence 10,
# never parenthesised) — so ONE pass with indexed markers at the leaves
# replaces the skeletonize+format pass and the substitute+format pass at
# once: the template is the marker string with markers swapped for
# placeholders, the splices fall out of a split on the markers, and the
# clause texts are one splice-render with the statement's own constants.
#
# Two further fusions ride on the same pass:
#
# * :class:`_CanonFormatter` folds :func:`normalize_case` into the
#   render — it lower-cases exactly the identifier fields that function
#   rewrites, at the point they are emitted — so the cold path never
#   materialises the canonical tree at all.
# * The formatter records each constant's ``(kind, value)`` in render
#   order.  Requiring that sequence to equal the scanner's constant
#   vector is the entry-safety check in its strongest form: it ties
#   render order to token order *by value* (the splice slots depend on
#   that correspondence), and any parser divergence from the token
#   stream — a folded ``- -5``, a CAST size, a consumed alias — breaks
#   the equality and marks the key unsafe, exactly as the legacy
#   source-order traversal check did.
#
# NULL literals and (under ``fold_variables``) variables render
# differently in the template (``<null>`` / ``<var>``) than in the
# clause texts (``NULL`` / ``@name``), so they get a second marker
# family carrying both spellings.  Marker injectivity is guaranteed by
# the caller: the fused path runs only when a fingerprint exists, and
# the scanner refuses control characters wherever they appear.

_EXTRA_MARKER = re.compile("\x00x(\\d+)\x01")

_TEMPLATE_PLACEHOLDER = {"number": "<num>", "string": "<str>"}


class _CanonFormatter(_Formatter):
    """Render a raw parse tree as :class:`_Formatter` renders its
    :func:`normalize_case` image — without building the canonical tree.

    Overrides exactly the emission points of the identifier fields that
    ``normalize_case`` lower-cases (column/table/function/variable names,
    schemas, aliases); everything else — keywords, operators, CAST type
    names, literals — is untouched, matching the rewrite's behaviour.
    """

    def select_item(self, item: ast.SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            return f"{text} AS {_quote_identifier(item.alias.lower())}"
        return text

    def source(self, node: ast.TableSource) -> str:
        if isinstance(node, ast.TableName):
            name = _quote_identifier(node.name.lower())
            if node.schema:
                name = f"{node.schema.lower()}.{name}"
            if node.alias:
                return f"{name} AS {_quote_identifier(node.alias.lower())}"
            return name
        if isinstance(node, ast.FunctionTable):
            text = self.expression(node.call)
            if node.alias:
                return f"{text} AS {_quote_identifier(node.alias.lower())}"
            return text
        if isinstance(node, ast.DerivedTable):
            text = f"({self.select(node.select)})"
            if node.alias:
                return f"{text} AS {_quote_identifier(node.alias.lower())}"
            return text
        if isinstance(node, ast.Join):
            return self.join(node)
        raise TypeError(f"cannot format {type(node).__name__}")

    def _expr_ColumnRef(self, node: ast.ColumnRef) -> str:
        name = _quote_identifier(node.name.lower())
        if node.table:
            return f"{node.table.lower()}.{name}"
        return name

    def _expr_Star(self, node: ast.Star) -> str:
        return f"{node.table.lower()}.*" if node.table else "*"

    def _expr_FunctionCall(self, node: ast.FunctionCall) -> str:
        name = node.name.lower()
        if node.schema is not None:
            name = f"{node.schema.lower()}.{name}"
        inner = ", ".join(self.expression(arg) for arg in node.args)
        if node.distinct:
            inner = f"DISTINCT {inner}"
        return f"{name}({inner})"

    def _expr_Variable(self, node: ast.Variable) -> str:
        return f"@{node.name.lower()}"


class _MarkerFormatter(_CanonFormatter):
    """One case-normalising pass serving template, splices and clauses.

    Number/string literals render as indexed constant markers
    (``\\x00i\\x01`` — the splice alphabet) with their ``(kind, value)``
    recorded in render order; NULL literals and folded variables render
    as indexed *extra* markers (``\\x00xi\\x01``) whose template/source
    spellings are recorded side-band.  Everything else renders exactly
    as :class:`_CanonFormatter` would.
    """

    def __init__(self, fold_variables: bool) -> None:
        #: (kind, value) of the i-th constant marker, in render order.
        self.consts: List[Tuple[str, str]] = []
        #: (template spelling, source spelling) of the i-th extra marker.
        self.extras: List[Tuple[str, str]] = []
        self._fold_variables = fold_variables

    def _expr_Literal(self, node: ast.Literal) -> str:
        kind = node.kind
        if kind == "number" or kind == "string":
            marker = "\x00%d\x01" % len(self.consts)
            self.consts.append((kind, node.value))
            return marker
        if kind == "null":
            marker = "\x00x%d\x01" % len(self.extras)
            self.extras.append(("<null>", "NULL"))
            return marker
        return _Formatter._expr_Literal(self, node)

    def _expr_Variable(self, node: ast.Variable) -> str:
        if self._fold_variables:
            marker = "\x00x%d\x01" % len(self.extras)
            self.extras.append(("<var>", "@" + node.name.lower()))
            return marker
        return f"@{node.name.lower()}"

    def template_text(self, text: str) -> str:
        """The template spelling: markers become typed placeholders."""
        if "\x00" not in text:
            return text
        consts = self.consts
        text = _MARKER.sub(
            lambda m: _TEMPLATE_PLACEHOLDER[consts[int(m.group(1))][0]], text
        )
        if self.extras:
            extras = self.extras
            text = _EXTRA_MARKER.sub(
                lambda m: extras[int(m.group(1))][0], text
            )
        return text

    def splice_text(self, text: str) -> str:
        """The splice source: extras become real text, constants stay."""
        if self.extras and "\x00" in text:
            extras = self.extras
            return _EXTRA_MARKER.sub(
                lambda m: extras[int(m.group(1))][1], text
            )
        return text


def _collect_literal_nodes(value: object, out: List[ast.Literal]) -> None:
    """Append the subtree's number/string literal *nodes* in source order.

    Same traversal as :func:`_collect_value`, but keeping the node
    objects so positions can be matched by identity.
    """
    if isinstance(value, ast.Literal):
        if value.kind == "number" or value.kind == "string":
            out.append(value)
    elif isinstance(value, ast.Node):
        for name in _source_fields(type(value)):
            _collect_literal_nodes(getattr(value, name), out)
    elif type(value) is tuple:
        for item in value:
            if isinstance(item, ast.Node):
                _collect_literal_nodes(item, out)


class _LazyStats:
    """Shared mutable materialisation counter of one cache.

    Lazy queries outlive their ``fetch`` call, so the count of on-demand
    AST builds cannot live on the cache's hot counters alone — each lazy
    query carries a reference to this object and bumps it whenever its
    statement is materialised, wherever in the pipeline that happens.
    """

    __slots__ = ("materialised",)

    def __init__(self) -> None:
        self.materialised = 0


#: Predicate-binding descriptors precomputed per entry (see
#: :func:`_equality_binding`).
_EQ_SHARED = "shared"
_EQ_INDEXED = "indexed"
_EQ_MATERIALISE = "materialise"


class LazyParsedQuery(ParsedQuery):
    """A skeleton-only :class:`ParsedQuery` bound to an interned entry.

    Emitted by the cache on an L2 hit in lazy mode: only the fields the
    post-parse stages actually touch (record, template, template id,
    predicate count, outputs, interned id) are populated eagerly — the
    AST (``statement`` / ``select``), the clause texts and the equality
    filter materialise on first access via :meth:`__getattr__`:

    * ``clauses`` renders from the entry's splice templates — no AST;
    * ``equality_filter`` rebinds the prototype's predicate to this
      query's constant — no AST;
    * ``statement`` / ``select`` run the full literal substitution over
      the prototype AST and bump the cache's ``materialised`` counter.

    Instances compare equal (both directions) and hash identically to
    the eager :class:`ParsedQuery` they stand in for; comparing forces
    materialisation.  They are built by :meth:`_Entry.bind` via
    ``object.__new__`` — never through the dataclass ``__init__`` — so a
    bind is one dict copy, cheaper even than ``dataclasses.replace``.
    """

    __eq_fields__ = (
        "record",
        "statement",
        "select",
        "template",
        "template_id",
        "clauses",
        "predicate_count",
        "equality_filter",
        "outputs",
    )

    def __getattr__(self, name: str):
        if name == "statement" or name == "select":
            self._materialise()
            return self.__dict__[name]
        if name == "clauses":
            return self._bind_clauses()
        if name == "equality_filter":
            return self._bind_equality_filter()
        raise AttributeError(name)

    # ------------------------------------------------------------------
    # On-demand binds (cached straight into ``__dict__`` — the one
    # mutation a frozen dataclass allows, exactly like Block's memos)

    def _materialise(self) -> None:
        d = self.__dict__
        entry: _Entry = d["_entry"]
        constants = d["_constants"]
        proto = entry.proto
        if constants == entry.constants:
            statement = proto.statement
            select = proto.select
        else:
            state = [0]
            statement = _substitute_value(proto.statement, constants, state)
            select = statement
            while isinstance(select, ast.Union):
                select = select.left
        d["statement"] = statement
        d["select"] = select
        d["_stats"].materialised += 1

    def _bind_clauses(self) -> ClauseTexts:
        d = self.__dict__
        entry: _Entry = d["_entry"]
        constants = d["_constants"]
        if constants == entry.constants:
            clauses = entry.proto.clauses
        else:
            rendered = [_render_constant(k, v) for k, v in constants]
            splices = entry.splices
            clauses = ClauseTexts(
                sc=_render_splice(splices[0], rendered),
                fc=_render_splice(splices[1], rendered),
                wc=_render_splice(splices[2], rendered),
            )
        d["clauses"] = clauses
        return clauses

    def _bind_equality_filter(self) -> Optional[Predicate]:
        d = self.__dict__
        entry: _Entry = d["_entry"]
        binding = entry.eq
        proto_pred = entry.proto.equality_filter
        if binding is None:
            result: Optional[Predicate] = None
        elif binding[0] == _EQ_SHARED:
            result = proto_pred
        elif binding[0] == _EQ_INDEXED:
            index, on_left = binding[1], binding[2]
            constants = d["_constants"]
            kind, text = constants[index]
            if constants[index] == entry.constants[index]:
                result = proto_pred
            else:
                literal = ast.Literal(text, kind)
                if on_left:
                    node = dataclasses.replace(proto_pred.node, left=literal)
                else:
                    node = dataclasses.replace(proto_pred.node, right=literal)
                result = Predicate(
                    theta=proto_pred.theta,
                    column=proto_pred.column,
                    value=literal,
                    node=node,
                    compares_null=proto_pred.compares_null,
                )
        else:  # _EQ_MATERIALISE — paranoia fallback: build the AST
            result = single_equality_filter(self.select)
        d["equality_filter"] = result
        return result

    def null_predicate_count(self) -> int:
        # Constant-independent (NULL is a keyword literal, never a
        # number/string constant), so the entry's precompute is exact.
        return self.__dict__["_entry"].nulls

    # ------------------------------------------------------------------
    # Equality across the lazy/eager divide.  The generated dataclass
    # __eq__ requires identical classes; here any ParsedQuery with equal
    # parse semantics must compare equal (Python tries the subclass's
    # reflected operator first, so eager == lazy routes here too).

    def __eq__(self, other: object):
        if isinstance(other, ParsedQuery):
            for name in self.__eq_fields__:
                if getattr(self, name) != getattr(other, name):
                    return False
            return True
        return NotImplemented

    def __ne__(self, other: object):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self):
        return hash(tuple(getattr(self, name) for name in self.__eq_fields__))


def rebind_query(
    query: ParsedQuery, record, interned_id: int
) -> ParsedQuery:
    """Bind a cached query to a new record / interned id.

    The lazy path's replacement for ``dataclasses.replace``: a
    cache-built :class:`LazyParsedQuery` is cloned by copying its
    ``__dict__`` (unmaterialised fields stay unmaterialised — neither
    depends on the record); anything else takes the classic dataclass
    copy.
    """
    if type(query) is LazyParsedQuery and "_entry" in query.__dict__:
        state = query.__dict__
        if state["record"] is record and state["interned_id"] == interned_id:
            return query
        clone = object.__new__(LazyParsedQuery)
        state = dict(state)
        state["record"] = record
        state["interned_id"] = interned_id
        object.__setattr__(clone, "__dict__", state)
        return clone
    if query.record is record:
        if query.interned_id == interned_id:
            return query
        return dataclasses.replace(query, interned_id=interned_id)
    if query.interned_id == interned_id:
        return dataclasses.replace(query, record=record)
    return dataclasses.replace(query, record=record, interned_id=interned_id)


class _Entry:
    """One interned fingerprint-key class: prototype + splice templates.

    Beyond the prototype itself the entry precomputes everything a lazy
    bind needs without touching the AST: the shared eager-field dict
    (:attr:`shared`), the equality-filter binding descriptor
    (:attr:`eq`) and the NULL-comparison predicate count
    (:attr:`nulls`).
    """

    __slots__ = ("proto", "constants", "splices", "eq", "nulls", "shared")

    def __init__(
        self,
        proto: ParsedQuery,
        constants: Tuple[Tuple[str, str], ...],
        splices: Tuple[_Splice, _Splice, _Splice],
        eq: Optional[tuple],
        nulls: int,
    ) -> None:
        self.proto = proto
        self.constants = constants
        self.splices = splices
        self.eq = eq
        self.nulls = nulls
        self.shared = {
            "template": proto.template,
            "template_id": proto.template_id,
            "predicate_count": proto.predicate_count,
            "outputs": proto.outputs,
            "interned_id": proto.interned_id,
        }

    def bind(self, record, constants, stats: _LazyStats) -> LazyParsedQuery:
        """One lazy bind: a dict copy, no AST, no splice render."""
        query = object.__new__(LazyParsedQuery)
        state = self.shared.copy()
        state["record"] = record
        state["_entry"] = self
        state["_constants"] = constants
        state["_stats"] = stats
        object.__setattr__(query, "__dict__", state)
        return query

    def __getstate__(self):
        return (self.proto, self.constants, self.splices, self.eq, self.nulls)

    def __setstate__(self, state):
        proto, constants, splices, eq, nulls = state
        self.__init__(proto, constants, splices, eq, nulls)


class _UnsafeMarker:
    """Permanent full-parse marker for an ambiguous fingerprint key."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unsafe fingerprint key>"

    def __reduce__(self):
        return (_unsafe_marker, ())


def _unsafe_marker() -> "_UnsafeMarker":
    return _UNSAFE


_UNSAFE = _UnsafeMarker()


def _equality_binding(proto: ParsedQuery) -> Optional[tuple]:
    """Describe how a member's equality filter derives from the proto's.

    The filter's *shape* is a function of the fingerprint key alone
    (substitution never changes which nodes are literals), so per member
    only the constant value can differ:

    * ``None`` — the prototype has no single-equality filter, so no
      member of the key class does either;
    * ``(_EQ_SHARED,)`` — the filter's value is not a substituted
      literal kind (e.g. ``= NULL``): the prototype's predicate is
      every member's predicate;
    * ``(_EQ_INDEXED, i, on_left)`` — the value is the ``i``-th
      source-order constant; a member rebinds just that literal;
    * ``(_EQ_MATERIALISE,)`` — identity lookup failed (should not
      happen); members fall back to building the AST.
    """
    pred = proto.equality_filter
    if pred is None:
        return None
    value = pred.value
    if value is None or value.kind not in ("number", "string"):
        return (_EQ_SHARED,)
    if not isinstance(pred.node, ast.Comparison):
        return (_EQ_MATERIALISE,)
    nodes: List[ast.Literal] = []
    _collect_literal_nodes(proto.statement, nodes)
    for index, node in enumerate(nodes):
        if node is value:
            return (_EQ_INDEXED, index, pred.node.left is value)
    return (_EQ_MATERIALISE,)


def _build_entry(
    proto: ParsedQuery, fingerprint: StatementFingerprint
) -> Optional[_Entry]:
    """Intern ``proto`` for its fingerprint key, or ``None`` if unsafe.

    The safety checks compare what the scanner *predicted* against what
    the parser actually *built*; any divergence (unary-minus edge cases,
    CAST type sizes, string aliases, formatter surprises) disqualifies
    the whole key class rather than risking a wrong instantiation.
    """
    return _build_entry_canonical(
        proto, fingerprint, normalize_case(proto.statement)
    )


def _build_entry_canonical(
    proto: ParsedQuery,
    fingerprint: StatementFingerprint,
    canonical: ast.Node,
) -> Optional[_Entry]:
    """:func:`_build_entry` given the already-normalised statement.

    Substituting markers into the canonical tree commutes with case
    normalisation (:func:`normalize_case` never rewrites literal nodes
    and preserves structure), so the one-shot build path shares a single
    normalisation pass between the template, the clause texts and this
    sentinel — and the splice self-check below independently verifies
    the result either way.
    """
    literals: List[Tuple[str, str]] = []
    _collect_value(proto.statement, literals)
    if tuple(literals) != fingerprint.constants:
        return None
    markers = tuple(
        ("number", "\x00%d\x01" % index) for index in range(len(literals))
    )
    state = [0]
    sentinel_statement = _substitute_value(canonical, markers, state)
    if state[0] != len(literals):
        return None
    select = _leading_select(sentinel_statement)  # type: ignore[arg-type]
    sc, fc, wc, _, _ = _clause_strings(select)
    splices = (_make_splice(sc), _make_splice(fc), _make_splice(wc))
    # End-to-end self-check: splicing the prototype's own constants must
    # reproduce its true clause texts byte for byte.
    rendered = [_render_constant(kind, value) for kind, value in literals]
    clauses = proto.clauses
    if (
        _render_splice(splices[0], rendered) != clauses.sc
        or _render_splice(splices[1], rendered) != clauses.fc
        or _render_splice(splices[2], rendered) != clauses.wc
    ):
        return None
    return _Entry(
        proto,
        fingerprint.constants,
        splices,
        _equality_binding(proto),
        len(null_comparison_predicates(proto.select)),
    )


def _entry_from_markers(
    proto: ParsedQuery,
    fingerprint: StatementFingerprint,
    splices: Tuple[_Splice, _Splice, _Splice],
    marker: _MarkerFormatter,
) -> Optional[_Entry]:
    """:func:`_build_entry_canonical` from an existing marker rendering.

    The fused cold path already rendered the statement once with indexed
    markers at the constant leaves, so the splices are given; admission
    reduces to the safety check.  The marker formatter recorded each
    constant's ``(kind, value)`` at the moment it was emitted, so one
    sequence equality against the scanner's constant vector verifies
    everything the legacy checks did: that the parser built exactly the
    literals the scanner predicted (folded ``- -5``, CAST sizes and
    consumed aliases all break it) *and* that render order — which the
    splice slots encode — is token order, value for value.  Two
    identical constants transposed would pass, and splice identical
    bytes either way.
    """
    if tuple(marker.consts) != fingerprint.constants:
        return None
    return _Entry(
        proto,
        fingerprint.constants,
        splices,
        _equality_binding(proto),
        len(null_comparison_predicates(proto.select)),
    )


def _instantiate(
    entry: _Entry, constants: Tuple[Tuple[str, str], ...], record
) -> ParsedQuery:
    """Materialise the key class's parse for ``record``'s constants."""
    proto = entry.proto
    if constants == entry.constants:
        return dataclasses.replace(proto, record=record)
    state = [0]
    statement = _substitute_value(proto.statement, constants, state)
    select = statement
    while isinstance(select, ast.Union):
        select = select.left
    rendered = [_render_constant(kind, value) for kind, value in constants]
    clauses = ClauseTexts(
        sc=_render_splice(entry.splices[0], rendered),
        fc=_render_splice(entry.splices[1], rendered),
        wc=_render_splice(entry.splices[2], rendered),
    )
    equality = (
        single_equality_filter(select)
        if proto.equality_filter is not None
        else None
    )
    return ParsedQuery(
        record=record,
        statement=statement,  # type: ignore[arg-type]
        select=select,  # type: ignore[arg-type]
        template=proto.template,
        template_id=proto.template_id,
        clauses=clauses,
        predicate_count=proto.predicate_count,
        equality_filter=equality,
        outputs=proto.outputs,
        interned_id=proto.interned_id,
    )


# ----------------------------------------------------------------------
# Raw-template memo (L1.5): skip the scanner for known raw templates
#
# One regex strips number/string literals straight out of the raw text.
# It deliberately knows nothing about comments, delimited identifiers or
# variables — instead, admission into the memo requires that the spans
# it stripped from a witness text equal the fingerprint scanner's
# literal-token spans *positionally*.  Raw-key equality preserves every
# non-literal byte, so when the witness aligns, every other member of
# the raw key tokenizes the same way and the strip is a faithful stand-
# in for the scan.  A literal the regex sees but the scanner does not
# (inside a comment or a bracketed identifier), or vice versa (a folded
# ``- -5``, an ``a.5`` member access), shifts or changes the spans and
# the raw key is marked unsafe: its members simply keep paying for the
# full scanner pass.  The guards mirror the scanner's punt conditions —
# no literal is stripped where the hand lexer would merge it into a
# word (``abc1``) or reject it (``1abc``).
_RAW_LITERAL = re.compile(
    r"'(?:[^']|'')*'"
    r"|(?<![0-9A-Za-z_\#\$])(?:[0-9]+(?:\.(?!\.)[0-9]*)?|\.[0-9]+)"
    r"(?:[eE][+-]?[0-9]+)?(?![A-Za-z0-9_\#\$])"
)

#: ``(raw_key, spans, constants)`` for one statement text, or ``None``
#: when the text contains control characters the scanner refuses.
RawTemplate = Tuple[str, Tuple[Tuple[int, int], ...], List[Tuple[str, str]]]


def _raw_scan(text: str) -> Optional[RawTemplate]:
    """Strip literals out of ``text`` in one regex pass.

    The raw key is the text with each stripped literal replaced by its
    typed placeholder byte (injective: the scanner's control-character
    refusal, mirrored here, keeps placeholders out of the input).  The
    constants come back already in the scanner's ``(kind, value)``
    format — same unquoting, same ``''`` collapse — so a verified raw
    key can feed :meth:`_Entry.bind` and :func:`_instantiate` directly.
    """
    if _FP_UNSAFE.search(text):
        return None
    spans: List[Tuple[int, int]] = []
    constants: List[Tuple[str, str]] = []
    parts: List[str] = []
    append = parts.append
    last = 0
    for m in _RAW_LITERAL.finditer(text):
        start, end = m.span()
        token = text[start:end]
        if token[0] == "'":
            constants.append(("string", token[1:-1].replace("''", "'")))
            append(text[last:start])
            append(_FP_STRING)
        else:
            constants.append(("number", token))
            append(text[last:start])
            append(_FP_NUMBER)
        spans.append((start, end))
        last = end
    if not spans:
        return (text, (), constants)
    append(text[last:])
    return ("".join(parts), tuple(spans), constants)


#: What the parse loop caches for one statement text: a prototype
#: ParsedQuery on success, or the (error, reason) pair of a failure.
CacheResult = Union[ParsedQuery, Tuple[BaseException, str]]


class TemplateCache:
    """Bounded two-level LRU for the parse fast path.

    One instance serves one executor run (batch), one cleaner instance
    (streaming) or one worker shard (parallel) — instances are picklable
    so prewarmed caches can cross process boundaries, but they are never
    shared concurrently.

    :param max_entries: LRU bound applied to each level independently.
    :param lazy: emit :class:`LazyParsedQuery` on L2 hits instead of
        materialising the AST eagerly (the parse engine v2 fast path).
        Byte-identical output either way — laziness only changes *when*
        the AST is built, and :attr:`materialised` counts those deferred
        builds.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_PARSE_CACHE_SIZE,
        lazy: bool = False,
    ) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer, got {max_entries!r}"
            )
        self.max_entries = max_entries
        self.lazy = lazy
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lazy_stats = _LazyStats()
        self._exact: "OrderedDict[str, CacheResult]" = OrderedDict()
        self._by_key: "OrderedDict[str, object]" = OrderedDict()
        #: raw template key → (entry, fold indexes) once witness-verified,
        #: or _UNSAFE when the regex strip provably disagrees with the
        #: scanner for this raw key.
        self._by_raw: "OrderedDict[str, object]" = OrderedDict()
        #: (sql, fingerprint, raw, scan) remembered from the last miss so
        #: that the build()/store() that follows does not rescan the text
        #: (the scan carries the token stream the parser consumes).
        self._pending: Optional[
            Tuple[
                str,
                Optional[StatementFingerprint],
                Optional[RawTemplate],
                Optional[Scan],
            ]
        ] = None

    @property
    def materialised(self) -> int:
        """On-demand AST builds performed by lazy queries of this cache.

        A snapshot: lazy queries keep the counter reference, so touching
        a query's ``statement`` after a run still bumps it.
        """
        return self._lazy_stats.materialised

    def set_lazy(self, lazy: bool) -> None:
        """Switch the emission mode of subsequent fetches.

        Turning laziness *off* also drops lazy values promoted into L1,
        so an eager run served by a reused (worker-persistent) cache
        never emits a lazy query.
        """
        lazy = bool(lazy)
        if lazy == self.lazy:
            return
        self.lazy = lazy
        if not lazy:
            exact = self._exact
            for sql in [
                sql
                for sql, value in exact.items()
                if type(value) is LazyParsedQuery
            ]:
                del exact[sql]

    def __len__(self) -> int:
        return len(self._exact)

    @property
    def key_entries(self) -> int:
        """Number of interned fingerprint-key entries (L2)."""
        return len(self._by_key)

    def fetch(self, record) -> Optional[CacheResult]:
        """Return the cached parse outcome for ``record``, or ``None``.

        A returned :class:`~repro.patterns.models.ParsedQuery` is already
        bound to ``record``; a returned tuple is the shared parse
        failure of this exact statement text.  ``None`` means miss — the
        caller must full-parse and :meth:`store` the outcome.
        """
        sql = record.sql
        exact = self._exact
        cached = exact.get(sql)
        if cached is not None:
            exact.move_to_end(sql)
            self.hits += 1
            if type(cached) is tuple:
                return cached
            if cached.record is record:
                return cached
            if type(cached) is LazyParsedQuery:
                return rebind_query(cached, record, cached.interned_id)
            return dataclasses.replace(cached, record=record)
        raw = _raw_scan(sql)
        if raw is not None:
            memo = self._by_raw.get(raw[0])
            if type(memo) is tuple:
                # Verified raw template: the regex strip stands in for
                # the scanner.  No L1 promotion — this path is already
                # one probe, and distinct-text workloads would only
                # churn the exact level.
                self._by_raw.move_to_end(raw[0])
                entry, folds = memo
                constants = raw[2]
                for index in folds:
                    constants[index] = ("number", "-" + constants[index][1])
                self.hits += 1
                if self.lazy:
                    return entry.bind(record, tuple(constants), self._lazy_stats)
                return _instantiate(entry, tuple(constants), record)
        scanned = scan(sql)
        fingerprint = scanned.fingerprint
        if fingerprint is not None:
            entry = self._by_key.get(fingerprint.key)
            if type(entry) is _Entry:
                self._by_key.move_to_end(fingerprint.key)
                if self.lazy:
                    result: CacheResult = entry.bind(
                        record, fingerprint.constants, self._lazy_stats
                    )
                else:
                    result = _instantiate(entry, fingerprint.constants, record)
                self.hits += 1
                self._admit_raw(raw, fingerprint, entry)
                # Promote into L1 so an exact repeat skips the scanner.
                self._remember_exact(sql, result)
                return result
        self.misses += 1
        self._pending = (sql, fingerprint, raw, scanned)
        return None

    def store(self, sql: str, result: CacheResult) -> None:
        """Admit a full-parse outcome produced after a :meth:`fetch` miss."""
        pending = self._pending
        self._pending = None
        if pending is not None and pending[0] == sql:
            fingerprint, raw = pending[1], pending[2]
        else:
            fingerprint = scan(sql).fingerprint
            raw = _raw_scan(sql)
        self._remember_exact(sql, result)
        if fingerprint is None or type(result) is tuple:
            # No usable key, or a failure: failures stay L1-only because
            # their messages carry text-specific line/column positions.
            return
        by_key = self._by_key
        entry = by_key.get(fingerprint.key)
        if entry is None:
            entry = _build_entry(result, fingerprint)
            entry = _UNSAFE if entry is None else entry
            by_key[fingerprint.key] = entry
            if len(by_key) > self.max_entries:
                by_key.popitem(last=False)
                self.evictions += 1
        self._admit_raw(raw, fingerprint, entry)

    def build(
        self,
        record,
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
        interner=None,
    ) -> ParsedQuery:
        """Full-parse ``record`` after a :meth:`fetch` miss — in one shot.

        Parse engine v3's cold path.  The scanner pass the miss already
        paid for feeds the parser directly (no second tokenization), and
        one case-normalising marker rendering of the raw parse tree
        (:class:`_MarkerFormatter`) yields the template, the clause
        texts and the interned splice :class:`_Entry` together — the
        legacy parse-then-re-derive path case-normalised the tree three
        times and formatted it four.  On success the prototype is
        admitted into L1/L2/raw exactly as a fetch-miss followed by
        :meth:`store` would admit it.

        Failures (:class:`~repro.sqlparser.errors.SqlError` subclasses,
        ``RecursionError``) propagate to the caller; the pending scan
        state is kept so the caller's :meth:`store` of the failure tuple
        does not rescan the text.
        """
        sql = record.sql
        pending = self._pending
        if pending is not None and pending[0] == sql and pending[3] is not None:
            fingerprint, raw, scanned = pending[1], pending[2], pending[3]
        else:
            scanned = scan(sql)
            fingerprint = scanned.fingerprint
            raw = _raw_scan(sql)
            self._pending = (sql, fingerprint, raw, scanned)
        if scanned.error is not None:
            raise scanned.error
        statement = Parser(scanned.tokens).parse_statement()
        self._pending = None
        select = statement
        while isinstance(select, ast.Union):
            select = select.left
        assert isinstance(select, ast.SelectStatement)
        marker = None
        if fingerprint is not None and not isinstance(statement, ast.Union):
            # Fused derivation: one marker-rendering of the raw parse
            # tree yields the template (markers → placeholders), the
            # splices (split on the markers) and the clause texts (one
            # splice-render with the statement's own constants) — and
            # the case-normalising formatter makes the canonical tree
            # itself unnecessary.  The fingerprint's existence
            # guarantees the text is free of the marker alphabet's
            # control characters.  Unions fall back: their template
            # folds a full statement rendering into the suffix, which
            # isn't worth a marker variant for how rarely they appear.
            marker = _MarkerFormatter(fold_variables)
            msc, mfc, mwc, mprefix, msuffix = _clause_strings(
                select, marker
            )
            template = QueryTemplate(
                ssc=marker.template_text(msc),
                sfc=marker.template_text(mfc),
                swc=marker.template_text(mwc),
                rest_prefix=(
                    "" if strict_triple else marker.template_text(mprefix)
                ),
                rest_suffix=(
                    "" if strict_triple else marker.template_text(msuffix)
                ),
            )
            splices = (
                _make_splice(marker.splice_text(msc)),
                _make_splice(marker.splice_text(mfc)),
                _make_splice(marker.splice_text(mwc)),
            )
            rendered = [
                _render_constant(kind, value) for kind, value in marker.consts
            ]
            sc = _render_splice(splices[0], rendered)
            fc = _render_splice(splices[1], rendered)
            wc = _render_splice(splices[2], rendered)
        else:
            canonical = normalize_case(statement)
            canonical_select = _leading_select(canonical)  # type: ignore[arg-type]
            sc, fc, wc, _, _ = _clause_strings(canonical_select)
            template = build_template_canonical(
                canonical,  # type: ignore[arg-type]
                fold_variables=fold_variables,
                strict_triple=strict_triple,
            )
        template_id = template_fingerprint(template)
        proto = ParsedQuery(
            record=record,
            statement=statement,
            select=select,
            template=template,
            template_id=template_id,
            clauses=ClauseTexts(sc=sc, fc=fc, wc=wc),
            predicate_count=count_predicates(select),
            equality_filter=single_equality_filter(select),
            outputs=frozenset(output_columns(select)),
            interned_id=(
                -1 if interner is None else interner.intern(template_id)
            ),
        )
        self._remember_exact(sql, proto)
        if fingerprint is not None:
            by_key = self._by_key
            entry = by_key.get(fingerprint.key)
            if entry is None:
                if marker is not None:
                    entry = _entry_from_markers(
                        proto, fingerprint, splices, marker
                    )
                else:
                    entry = _build_entry_canonical(
                        proto, fingerprint, canonical
                    )
                entry = _UNSAFE if entry is None else entry
                by_key[fingerprint.key] = entry
                if len(by_key) > self.max_entries:
                    by_key.popitem(last=False)
                    self.evictions += 1
            self._admit_raw(raw, fingerprint, entry)
        return proto

    def _admit_raw(
        self,
        raw: Optional[RawTemplate],
        fingerprint: StatementFingerprint,
        entry: object,
    ) -> None:
        """Witness-verify ``raw`` against the scanner and memoise it.

        Admission requires the regex strip and the scanner to have seen
        exactly the same literals at exactly the same source positions;
        the only tolerated difference is a unary minus the scanner
        folded into a number's *value* (its span stays the literal
        alone), which is recorded as a fold index and replayed on every
        later bind.  Any other disagreement — or an unsafe L2 entry —
        pins the raw key to the full scanner path.
        """
        if raw is None:
            return
        raw_key, spans, constants = raw
        by_raw = self._by_raw
        if raw_key in by_raw:
            return
        memo: object = _UNSAFE
        if type(entry) is _Entry and spans == fingerprint.spans:
            folds: List[int] = []
            for index, (pair, scanned) in enumerate(
                zip(constants, fingerprint.constants)
            ):
                if pair == scanned:
                    continue
                if (
                    pair[0] == "number"
                    and scanned[0] == "number"
                    and scanned[1] == "-" + pair[1]
                ):
                    folds.append(index)
                    continue
                folds = None  # type: ignore[assignment]
                break
            if folds is not None:
                memo = (entry, tuple(folds))
        by_raw[raw_key] = memo
        if len(by_raw) > self.max_entries:
            by_raw.popitem(last=False)

    def _remember_exact(self, sql: str, result: CacheResult) -> None:
        exact = self._exact
        exact[sql] = result
        exact.move_to_end(sql)
        if len(exact) > self.max_entries:
            exact.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Persistent template dictionary (warm-start re-runs)
    #
    # The interned template dictionary is a durable artifact of the log:
    # it is persisted as *witness texts* — one raw prototype SQL string
    # per interned L2 entry — not as pickled entries.  Loading re-parses
    # every witness through this cache's own cold path under the current
    # run's knobs, which IS the witness verification: nothing from the
    # sidecar is trusted beyond the SQL text, so a stale, corrupt or
    # even adversarial dictionary can only cost speed, never output.

    def dict_witnesses(self) -> List[str]:
        """One witness statement text per interned L2 entry."""
        return [
            entry.proto.record.sql
            for entry in self._by_key.values()
            if type(entry) is _Entry
        ]

    def save_dict(
        self,
        path,
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
    ) -> int:
        """Persist the template dictionary to ``path``; return its size.

        The sidecar is keyed by the cache knobs it was built under plus
        a format version; :meth:`load_dict` rejects any mismatch.  The
        write is atomic (tmp file + ``os.replace``), so a crash — even a
        SIGKILL — mid-save leaves any prior dictionary intact.
        """
        witnesses = self.dict_witnesses()
        payload = {
            "version": TEMPLATE_DICT_VERSION,
            "fold_variables": bool(fold_variables),
            "strict_triple": bool(strict_triple),
            "witnesses": witnesses,
        }
        body = zlib.compress(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
        )
        blob = _DICT_MAGIC + struct.pack("<I", zlib.crc32(body)) + body
        target = os.fspath(path)
        tmp = target + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return len(witnesses)

    @staticmethod
    def load_dict(
        path,
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
    ) -> Optional[List[str]]:
        """Load witness texts saved by :meth:`save_dict`, or ``None``.

        ``None`` means "start cold".  A missing file is silent (a first
        run is normal); a knob or version mismatch is rejected cleanly
        with a warning; a truncated or corrupt sidecar falls back with a
        warning.  Never raises.
        """
        target = os.fspath(path)
        try:
            with open(target, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            warnings.warn(
                f"template dict {target!r} unreadable ({exc}); starting cold"
            )
            return None
        if len(blob) < 8 or blob[:4] != _DICT_MAGIC:
            warnings.warn(
                f"template dict {target!r} is not a template dictionary "
                "(bad magic); starting cold"
            )
            return None
        (crc,) = struct.unpack("<I", blob[4:8])
        body = blob[8:]
        if zlib.crc32(body) != crc:
            warnings.warn(
                f"template dict {target!r} is truncated or corrupt "
                "(checksum mismatch); starting cold"
            )
            return None
        try:
            payload = json.loads(zlib.decompress(body).decode("utf-8"))
        except (zlib.error, UnicodeDecodeError, ValueError):
            warnings.warn(
                f"template dict {target!r} is corrupt (undecodable "
                "payload); starting cold"
            )
            return None
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != TEMPLATE_DICT_VERSION:
            warnings.warn(
                f"template dict {target!r} has format version {version!r}, "
                f"expected {TEMPLATE_DICT_VERSION}; starting cold"
            )
            return None
        if payload.get("fold_variables") != bool(fold_variables) or payload.get(
            "strict_triple"
        ) != bool(strict_triple):
            warnings.warn(
                f"template dict {target!r} was built under different parse "
                "knobs (fold_variables/strict_triple); starting cold"
            )
            return None
        witnesses = payload.get("witnesses")
        if not isinstance(witnesses, list) or any(
            not isinstance(sql, str) for sql in witnesses
        ):
            warnings.warn(
                f"template dict {target!r} carries a malformed witness "
                "list; starting cold"
            )
            return None
        return witnesses

    def preload(
        self,
        witnesses: Iterable[str],
        *,
        fold_variables: bool = False,
        strict_triple: bool = False,
    ) -> int:
        """Warm L1/L2/raw by re-parsing ``witnesses`` through the cold path.

        Returns the number of witnesses admitted.  Unparsable witnesses
        (a dictionary from another corpus, say) are skipped.  Counter
        neutral: hit/miss/eviction totals are restored afterwards, so
        the pipeline's conservation laws only ever see real traffic.

        Parse engine v4 batches the pass instead of replaying the
        per-witness fetch/build protocol.  Each witness goes straight
        into the single-lex :meth:`build` — the fetch probe ladder
        (L1 → raw memo → L2) exists to *avoid* a cold build, but a
        dictionary is one witness per template, so every probe would
        miss anyway; an exact-text membership check covers the only
        realistic duplicate.  Shared setup is hoisted once per batch:
        the counter snapshot, the bound build method, and a gc
        suspension — a preload is pure bulk allocation into long-lived
        caches, and generational collection passes over the growing
        heap are wasted work until the batch completes.  Admissions are
        byte-identical to the per-witness flow: :meth:`build` performs
        the same scan, raw strip, parse and L1/L2/raw admissions a
        fetch-miss-then-build would.
        """
        hits, misses, evictions = self.hits, self.misses, self.evictions
        build = self.build
        exact = self._exact
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        loaded = 0
        try:
            for index, sql in enumerate(witnesses):
                if sql in exact:
                    exact.move_to_end(sql)
                    loaded += 1
                    continue
                try:
                    build(
                        LogRecord(seq=-1 - index, sql=sql, timestamp=0.0),
                        fold_variables=fold_variables,
                        strict_triple=strict_triple,
                    )
                except (SqlError, RecursionError):
                    continue
                loaded += 1
        finally:
            if gc_was_enabled:
                gc.enable()
            self._pending = None
            self.hits, self.misses, self.evictions = hits, misses, evictions
        return loaded

    # ------------------------------------------------------------------
    # Pre-seeding (warm worker pools)

    def export_seed(self) -> bytes:
        """Snapshot the cache's interned entries as a portable seed.

        The seed is a pickled copy of this cache with its counters
        zeroed and its pending-miss state cleared — ship it to worker
        processes (:func:`repro.pipeline.parallel.set_worker_seed`) so
        their first shard already hits on every template this cache has
        interned.  The caller owns the correctness contract documented
        on :func:`~repro.pipeline.framework.parse_log`: a seed must only
        ever warm caches serving the same ``(fold_variables,
        strict_triple)`` parse knobs it was built under.
        """
        clone = TemplateCache(self.max_entries, lazy=self.lazy)
        # Lazy L1 values hold this cache's materialisation counter; a
        # seeded cache must count its own, so they stay behind (the
        # interned L2 entry regenerates them on the first key hit).
        clone._exact = OrderedDict(
            (sql, value)
            for sql, value in self._exact.items()
            if type(value) is not LazyParsedQuery
        )
        clone._by_key = OrderedDict(self._by_key)
        clone._by_raw = OrderedDict(self._by_raw)
        return pickle.dumps(clone, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_seed(
        cls, seed: bytes, max_entries: Optional[int] = None
    ) -> "TemplateCache":
        """Rebuild a cache from an :meth:`export_seed` blob.

        ``max_entries`` overrides the seed's bound; a smaller bound
        evicts the seed's least-recently-admitted entries immediately
        (without charging the eviction counters — the new cache starts
        with all counters at zero).
        """
        cache = pickle.loads(seed)
        if not isinstance(cache, cls):
            raise TypeError(
                f"seed does not contain a {cls.__name__} "
                f"(got {type(cache).__name__})"
            )
        cache.hits = 0
        cache.misses = 0
        cache.evictions = 0
        cache._lazy_stats = _LazyStats()
        cache._pending = None
        if max_entries is not None and max_entries >= 1:
            cache.max_entries = max_entries
            while len(cache._exact) > max_entries:
                cache._exact.popitem(last=False)
            while len(cache._by_key) > max_entries:
                cache._by_key.popitem(last=False)
            while len(cache._by_raw) > max_entries:
                cache._by_raw.popitem(last=False)
        return cache
