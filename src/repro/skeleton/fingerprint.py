"""Stable fingerprints for templates and patterns.

The pattern registry keys millions of queries; hashing the canonical
skeleton strings with a cryptographic digest gives short, stable,
collision-safe identifiers that survive across runs and can be written to
the statistics output (the paper's framework exposes template / pattern
identifiers in its parsed-log table, cf. Table 2)."""

from __future__ import annotations

import hashlib
from typing import Iterable

from .template import QueryTemplate


def template_fingerprint(template: QueryTemplate) -> str:
    """Hex digest identifying one query template."""
    payload = "\x1f".join(
        (template.ssc, template.sfc, template.swc, template.rest)
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def pattern_fingerprint(templates: Iterable[QueryTemplate]) -> str:
    """Hex digest identifying a pattern = a *sequence* of templates."""
    payload = "\x1e".join(template_fingerprint(t) for t in templates)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]
