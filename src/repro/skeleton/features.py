"""Predicate census and clause features for antipattern detection.

The antipattern definitions quantify over *predicates*:

* Definition 11 (Stifle): ``CP = 1``, ``θ = 'equality'`` and the filter
  column is a key attribute — this module computes CP (count of
  predicates), the θ of each predicate and its filter column.
* Definition 15 (CTH): the SELECT columns of the first query must feed the
  single equality predicate of each follow-up — this module extracts the
  output columns of a query and the (column, constant) equality filters.
* Definition 16 (SNC): a predicate comparing against NULL with = / <>.

All extraction is purely syntactic; key-attribute classification needs a
schema and therefore takes a ``key_columns`` set provided by the caller
(usually from :class:`repro.engine.catalog.Catalog`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set

from ..sqlparser import ast_nodes as ast

#: θ values (Definition 11's comparison-operator classification).
THETA_EQUALITY = "equality"
THETA_INEQUALITY = "inequality"
THETA_RANGE = "range"
THETA_IN = "in"
THETA_LIKE = "like"
THETA_IS_NULL = "is_null"
THETA_EXISTS = "exists"
THETA_OTHER = "other"

_COMPARISON_THETA = {
    "=": THETA_EQUALITY,
    "<>": THETA_INEQUALITY,
    "<": THETA_RANGE,
    "<=": THETA_RANGE,
    ">": THETA_RANGE,
    ">=": THETA_RANGE,
}


@dataclass(frozen=True)
class Predicate:
    """One leaf predicate of a WHERE clause.

    :param theta: the operator class (one of the THETA_* constants).
    :param column: the filtered column, when the predicate has the shape
        ``column θ constant`` (or symmetric); None otherwise.
    :param value: the constant side, when it is a literal; None otherwise.
    :param node: the original AST node.
    :param compares_null: True when the predicate compares against a NULL
        literal using = or <> — the SNC trigger.
    """

    theta: str
    column: Optional[ast.ColumnRef]
    value: Optional[ast.Literal]
    node: ast.Expression
    compares_null: bool = False


def _is_constant(node: ast.Expression) -> bool:
    return isinstance(node, ast.Literal)


def _classify_comparison(node: ast.Comparison) -> Predicate:
    theta = _COMPARISON_THETA.get(node.op, THETA_OTHER)
    column: Optional[ast.ColumnRef] = None
    value: Optional[ast.Literal] = None
    left, right = node.left, node.right
    if isinstance(left, ast.ColumnRef) and _is_constant(right):
        column, value = left, right  # type: ignore[assignment]
    elif isinstance(right, ast.ColumnRef) and _is_constant(left):
        column, value = right, left  # type: ignore[assignment]
    compares_null = (
        isinstance(right, ast.Literal)
        and right.kind == "null"
        or isinstance(left, ast.Literal)
        and left.kind == "null"
    ) and theta in (THETA_EQUALITY, THETA_INEQUALITY)
    return Predicate(
        theta=theta,
        column=column,
        value=value,
        node=node,
        compares_null=compares_null,
    )


def iter_predicates(where: Optional[ast.Expression]) -> Iterator[Predicate]:
    """Yield the leaf predicates of a WHERE expression.

    AND/OR/NOT connectives are traversed; every other node is a leaf.
    Join conditions expressed in the WHERE clause (``a.x = b.x``) yield
    predicates with ``column=None`` (neither side is a constant), so they
    never satisfy the Stifle's equality-on-constant requirement — but they
    still count toward CP, matching the paper's "count of predicates".
    """
    if where is None:
        return
    stack: List[ast.Expression] = [where]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.And, ast.Or)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, ast.Not):
            stack.append(node.operand)
        elif isinstance(node, ast.Comparison):
            yield _classify_comparison(node)
        elif isinstance(node, ast.InList):
            column = node.expr if isinstance(node.expr, ast.ColumnRef) else None
            yield Predicate(THETA_IN, column, None, node)
        elif isinstance(node, ast.InSubquery):
            column = node.expr if isinstance(node.expr, ast.ColumnRef) else None
            yield Predicate(THETA_IN, column, None, node)
        elif isinstance(node, ast.Between):
            column = node.expr if isinstance(node.expr, ast.ColumnRef) else None
            yield Predicate(THETA_RANGE, column, None, node)
        elif isinstance(node, ast.IsNull):
            column = node.expr if isinstance(node.expr, ast.ColumnRef) else None
            yield Predicate(THETA_IS_NULL, column, None, node)
        elif isinstance(node, ast.Like):
            column = node.expr if isinstance(node.expr, ast.ColumnRef) else None
            yield Predicate(THETA_LIKE, column, None, node)
        elif isinstance(node, ast.Exists):
            yield Predicate(THETA_EXISTS, None, None, node)
        else:
            yield Predicate(THETA_OTHER, None, None, node)


def count_predicates(statement: ast.SelectStatement) -> int:
    """CP of Definition 11: number of leaf predicates in the WHERE clause."""
    return sum(1 for _ in iter_predicates(statement.where))


def predicates_of(statement: ast.SelectStatement) -> List[Predicate]:
    """All leaf predicates of the statement's WHERE clause."""
    return list(iter_predicates(statement.where))


def single_equality_filter(
    statement: ast.SelectStatement,
) -> Optional[Predicate]:
    """Return the predicate iff the statement filters by exactly one
    equality comparison of a column against a constant — the Stifle /
    CTH-follow-up shape (CP=1, θ='equality')."""
    predicates = predicates_of(statement)
    if len(predicates) != 1:
        return None
    predicate = predicates[0]
    if predicate.theta != THETA_EQUALITY or predicate.column is None:
        return None
    if predicate.value is None:
        return None
    return predicate


def output_columns(statement: ast.SelectStatement) -> Set[str]:
    """Lower-cased names exposed by the SELECT list (aliases win).

    Star projections contribute the pseudo-name ``'*'`` — a follow-up
    query can pick up *any* column from a star-projecting first query,
    which the CTH detector treats as a wildcard match.
    """
    names: Set[str] = set()
    for item in statement.items:
        if isinstance(item.expr, ast.Star):
            names.add("*")
            continue
        name = item.output_name()
        if name:
            names.add(name.lower())
    return names


def filter_columns(statement: ast.SelectStatement) -> List[str]:
    """Lower-cased filter-column names of all column-vs-constant predicates."""
    return [
        predicate.column.name.lower()
        for predicate in predicates_of(statement)
        if predicate.column is not None
    ]


def referenced_tables(statement: ast.SelectStatement) -> Set[str]:
    """Lower-cased base-table names referenced in the FROM clause."""
    tables: Set[str] = set()

    def visit(source: ast.TableSource) -> None:
        if isinstance(source, ast.TableName):
            tables.add(source.name.lower())
        elif isinstance(source, ast.FunctionTable):
            tables.add(source.call.name.lower())
        elif isinstance(source, ast.DerivedTable):
            for inner in source.select.from_sources:
                visit(inner)
        elif isinstance(source, ast.Join):
            visit(source.left)
            visit(source.right)

    for source in statement.from_sources:
        visit(source)
    return tables


def null_comparison_predicates(
    statement: ast.SelectStatement,
) -> List[Predicate]:
    """Predicates using ``= NULL`` / ``<> NULL`` — the SNC shape."""
    return [p for p in predicates_of(statement) if p.compares_null]


def is_key_filter(
    predicate: Predicate, key_columns: Optional[Sequence[str]]
) -> bool:
    """Definition 11, third axiom: the filter column is a key attribute.

    ``key_columns`` is the schema's set of key-attribute names (lower-
    cased).  When no schema is available (``None``), the axiom is waived —
    the paper notes the axiom could be omitted at the cost of false
    positives, and benchmark E15 quantifies exactly that trade-off.
    """
    if predicate.column is None:
        return False
    if key_columns is None:
        return True
    return predicate.column.name.lower() in {k.lower() for k in key_columns}
