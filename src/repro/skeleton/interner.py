"""Run-scoped interning of template fingerprints into dense ints.

The post-parse stages — blocking, periodic segmentation, registry
aggregation, detector unit checks — only ever need template *identity*,
never the fingerprint text.  Comparing and hashing 16-char hex digests
for every probe is measurable waste at SkyServer scale; dictionary
encoding them into small ints is the standard fix (Ettu interns queries
into skeleton classes before clustering, and Xie et al.'s query-log
compression work rests on exactly this template dictionary).

A :class:`TemplateInterner` lives for one executor run: one per batch
run, one per streaming cleaner instance, one per parallel worker shard
(folded into a run-level interner by the parent, mirroring how the
parse-stage :class:`~repro.skeleton.cache.TemplateCache` travels).  Ids
are dense — the n-th distinct fingerprint gets id ``n-1`` — so consumers
may use them as list indices, and *stable within the run*: interning is
append-only, an id never changes or disappears.

Ids are **not** comparable across interners.  Two runs over the same log
assign the same ids only because interning follows a deterministic
stream order; anything that outlives a run (registry rows, reports,
golden files) must store the fingerprint strings, which is why
:class:`~repro.patterns.registry.PatternRegistry` resolves ids back to
strings at its public surface.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["TemplateInterner"]


class TemplateInterner:
    """Bijective fingerprint ↔ dense-int dictionary for one run."""

    __slots__ = ("_ids", "_fingerprints")

    def __init__(self, fingerprints: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._fingerprints: List[str] = []
        for fingerprint in fingerprints:
            self.intern(fingerprint)

    # ------------------------------------------------------------------
    # Core dictionary operations

    def intern(self, fingerprint: str) -> int:
        """The id of ``fingerprint``, assigning the next dense id on
        first sight.  Idempotent: re-interning returns the same id."""
        ids = self._ids
        interned = ids.get(fingerprint)
        if interned is None:
            interned = ids[fingerprint] = len(ids)
            self._fingerprints.append(fingerprint)
        return interned

    def id_of(self, fingerprint: str) -> Optional[int]:
        """The id of ``fingerprint`` if already interned, else ``None``
        (never assigns)."""
        return self._ids.get(fingerprint)

    def fingerprint(self, interned_id: int) -> str:
        """Reverse lookup: the fingerprint string behind ``interned_id``.

        :raises IndexError: for an id this interner never assigned.
        """
        if interned_id < 0:
            raise IndexError(f"{interned_id} is not an interned id")
        return self._fingerprints[interned_id]

    def resolve_unit(self, unit_ids: Iterable[int]) -> Tuple[str, ...]:
        """Map a unit of interned ids back to its fingerprint tuple."""
        fingerprints = self._fingerprints
        return tuple(fingerprints[interned] for interned in unit_ids)

    def fingerprints(self) -> Tuple[str, ...]:
        """Snapshot of every interned fingerprint, in id order."""
        return tuple(self._fingerprints)

    # ------------------------------------------------------------------
    # Shard folding

    def merge(self, other: "TemplateInterner") -> Dict[int, int]:
        """Fold another interner's dictionary into this one.

        Returns the remap ``other_id -> self_id`` for every id of
        ``other`` — shard-local ids are meaningless in the parent, so a
        parent folding :class:`~repro.pipeline.parallel.ShardReport`
        interners uses the remap to translate any shard-local encoded
        data it wants to keep.  Fingerprints already known keep their
        existing id here (interning is append-only).
        """
        intern = self.intern
        return {
            other_id: intern(fingerprint)
            for other_id, fingerprint in enumerate(other._fingerprints)
        }

    # ------------------------------------------------------------------
    # Protocols

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemplateInterner):
            return NotImplemented
        return self._fingerprints == other._fingerprints

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TemplateInterner({len(self._ids)} fingerprints)"

    # __slots__ classes have no __dict__, so pickling (ShardReport
    # crosses a process boundary) round-trips the id-ordered fingerprint
    # list — the forward dict is derived state.
    def __getstate__(self) -> List[str]:
        return self._fingerprints

    def __setstate__(self, state: List[str]) -> None:
        self._fingerprints = list(state)
        self._ids = {
            fingerprint: interned
            for interned, fingerprint in enumerate(self._fingerprints)
        }
