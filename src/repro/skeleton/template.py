"""Query templates: the paper's (SFC, SWC, SSC) triples.

Definition 4: *a query template is a triple consisting of skeleton subtrees
(SFC, SWC, SSC)* — the skeletons of the FROM, WHERE and SELECT clauses.
Definition 5 makes two skeletons equal iff all three components are equal.

We additionally canonicalise identifier case (SQL identifiers are
case-insensitive; the SkyServer log mixes ``PhotoPrimary``/``photoprimary``)
and carry the skeletons of the remaining clauses (GROUP BY/HAVING/ORDER
BY/TOP/DISTINCT) in a ``rest`` component so that two queries that agree on
the triple but differ in, say, ORDER BY are still distinguished.  Dropping
``rest`` from the identity reproduces the paper's definition verbatim; the
ablation benchmark E14 measures the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sqlparser import ast_nodes as ast
from ..sqlparser.formatter import _Formatter, format_sql
from ..sqlparser.visitor import transform
from .normalizer import skeletonize_statement


def normalize_case(node: ast.Node) -> ast.Node:
    """Lower-case every identifier in the tree (names, aliases, schemas)."""

    def rewrite(current: ast.Node):
        if isinstance(current, ast.ColumnRef):
            return ast.ColumnRef(
                name=current.name.lower(),
                table=current.table.lower() if current.table else None,
            )
        if isinstance(current, ast.Star) and current.table:
            return ast.Star(table=current.table.lower())
        if isinstance(current, ast.FunctionCall):
            return ast.FunctionCall(
                name=current.name.lower(),
                args=current.args,
                schema=current.schema.lower() if current.schema else None,
                distinct=current.distinct,
            )
        if isinstance(current, ast.Variable):
            return ast.Variable(name=current.name.lower())
        if isinstance(current, ast.TableName):
            return ast.TableName(
                name=current.name.lower(),
                schema=current.schema.lower() if current.schema else None,
                alias=current.alias.lower() if current.alias else None,
            )
        if isinstance(current, ast.FunctionTable):
            return ast.FunctionTable(
                call=current.call,
                alias=current.alias.lower() if current.alias else None,
            )
        if isinstance(current, ast.DerivedTable):
            return ast.DerivedTable(
                select=current.select,
                alias=current.alias.lower() if current.alias else None,
            )
        if isinstance(current, ast.SelectItem) and current.alias:
            return ast.SelectItem(
                expr=current.expr, alias=current.alias.lower()
            )
        return None

    return transform(node, rewrite)


@dataclass(frozen=True)
class QueryTemplate:
    """The canonical template of one query.

    :param ssc: skeleton of the SELECT clause (Definition 2's SSC).
    :param sfc: skeleton of the FROM clause (SFC).
    :param swc: skeleton of the WHERE clause (SWC), empty string if absent.
    :param rest_prefix: canonical text of the clauses rendered between
        SELECT and the item list (DISTINCT, TOP) — ``""`` under the
        strict paper-faithful identity.
    :param rest_suffix: canonical text of the trailing clauses (GROUP
        BY/HAVING/ORDER BY, plus the union shape) — ``""`` under the
        strict identity.
    """

    ssc: str
    sfc: str
    swc: str
    rest_prefix: str = ""
    rest_suffix: str = ""

    @property
    def rest(self) -> str:
        """The combined non-triple identity component."""
        return f"{self.rest_prefix} {self.rest_suffix}".strip()

    @property
    def skeleton_sql(self) -> str:
        """Re-assembled human-readable skeleton statement."""
        head = "SELECT"
        if self.rest_prefix:
            head += f" {self.rest_prefix}"
        parts = [f"{head} {self.ssc}".rstrip()]
        if self.sfc:
            parts.append(f"FROM {self.sfc}")
        if self.swc:
            parts.append(f"WHERE {self.swc}")
        if self.rest_suffix:
            parts.append(self.rest_suffix)
        return " ".join(parts)

    def triple(self) -> Tuple[str, str, str]:
        """The (SFC, SWC, SSC) identity of Definition 4."""
        return (self.sfc, self.swc, self.ssc)


@dataclass(frozen=True)
class ClauseTexts:
    """Canonical *non-skeleton* clause renderings of one query.

    Definitions 12–14 compare the actual clauses (SC, FC, WC — constants
    included) across the queries of a pattern, e.g. the DW-Stifle needs
    ``WC1 ≠ WC2``.  These strings are the case-normalised canonical
    renderings used for those comparisons.
    """

    sc: str
    fc: str
    wc: str


def _clause_strings(
    statement: ast.SelectStatement,
    formatter: Optional[_Formatter] = None,
) -> Tuple[str, str, str, str, str]:
    if formatter is None:
        formatter = _Formatter()
    # Clauses are rendered in *source* order (TOP before the item list)
    # so that a stateful formatter — the cache's marker formatter, which
    # numbers constants as it meets them — sees constants in the same
    # order as the scanner.  The default formatter is stateless, so the
    # ordering is free for every other caller.
    prefix_parts = []
    if statement.distinct:
        prefix_parts.append("DISTINCT")
    if statement.top is not None:
        top = f"TOP {formatter.expression(statement.top.count)}"
        if statement.top.percent:
            top += " PERCENT"
        prefix_parts.append(top)
    ssc = ", ".join(formatter.select_item(item) for item in statement.items)
    sfc = ", ".join(formatter.source(source) for source in statement.from_sources)
    swc = formatter.expression(statement.where) if statement.where is not None else ""
    suffix_parts = []
    if statement.group_by:
        suffix_parts.append(
            "GROUP BY " + ", ".join(formatter.expression(e) for e in statement.group_by)
        )
    if statement.having is not None:
        suffix_parts.append("HAVING " + formatter.expression(statement.having))
    if statement.order_by:
        suffix_parts.append(
            "ORDER BY "
            + ", ".join(formatter.order_item(item) for item in statement.order_by)
        )
    return ssc, sfc, swc, " ".join(prefix_parts), " ".join(suffix_parts)


def _leading_select(statement: ast.Statement) -> ast.SelectStatement:
    while isinstance(statement, ast.Union):
        statement = statement.left
    assert isinstance(statement, ast.SelectStatement)
    return statement


def build_template(
    statement: ast.Statement,
    *,
    fold_variables: bool = False,
    strict_triple: bool = False,
) -> QueryTemplate:
    """Compute the :class:`QueryTemplate` of a parsed statement.

    :param fold_variables: also fold ``@variables`` into placeholders.
    :param strict_triple: use the paper-verbatim identity (drop the
        ``rest`` component) — used by the E14 ablation.
    """
    return build_template_canonical(
        normalize_case(statement),
        fold_variables=fold_variables,
        strict_triple=strict_triple,
    )


def build_template_canonical(
    canonical: ast.Statement,
    *,
    fold_variables: bool = False,
    strict_triple: bool = False,
) -> QueryTemplate:
    """:func:`build_template` for an already case-normalised tree.

    The cache's one-shot entry build (parse engine v3) normalises a
    statement once and derives the template, the clause texts and the
    splice sentinel all from that single canonical tree; this variant
    lets it skip the redundant second normalisation pass.
    """
    skeleton = skeletonize_statement(
        canonical, fold_variables=fold_variables  # type: ignore[arg-type]
    )
    select = _leading_select(skeleton)
    ssc, sfc, swc, prefix, suffix = _clause_strings(select)
    if isinstance(skeleton, ast.Union):
        # Fold the full union shape into the suffix so differently-shaped
        # unions never collapse into one template.
        suffix = (suffix + " || " + format_sql(skeleton)).strip()
    if strict_triple:
        prefix = suffix = ""
    return QueryTemplate(
        ssc=ssc, sfc=sfc, swc=swc, rest_prefix=prefix, rest_suffix=suffix
    )


def build_clause_texts(statement: ast.Statement) -> ClauseTexts:
    """Compute the canonical SC/FC/WC texts (constants preserved)."""
    canonical = normalize_case(statement)
    select = _leading_select(canonical)  # type: ignore[arg-type]
    sc, fc, wc, _, _ = _clause_strings(select)
    return ClauseTexts(sc=sc, fc=fc, wc=wc)
